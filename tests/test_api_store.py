"""Tests for the CausalStore facade (the paper's API, driven step by step)."""

import pytest

from repro.api import CausalStore
from repro.cluster.config import ClusterConfig


PROTOCOLS = ("contrarian", "cure", "cc-lo")


class TestBasicOperations:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_put_then_get_returns_new_version(self, protocol):
        store = CausalStore(protocol=protocol)
        written = store.put("user:1")
        read = store.get("user:1")
        assert read == written.values["user:1"]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_get_of_preloaded_key_returns_initial_version(self, protocol):
        store = CausalStore(protocol=protocol)
        assert store.get("0:0") == 0

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_rot_returns_one_value_per_key(self, protocol):
        store = CausalStore(protocol=protocol)
        store.put("a")
        store.put("b")
        result = store.rot(["a", "b", "c"])
        assert set(result.values) == {"a", "b", "c"}

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_latencies_are_positive_and_bounded(self, protocol):
        store = CausalStore(protocol=protocol)
        result = store.rot(["a", "b"])
        assert 0.0 < result.latency_ms < 50.0

    def test_history_is_recorded_in_order(self):
        store = CausalStore()
        store.put("x")
        store.rot(["x"])
        kinds = [entry.kind for entry in store.history]
        assert kinds == ["put", "rot"]

    def test_unknown_dc_rejected(self):
        store = CausalStore()
        with pytest.raises(Exception):
            store.put("x", dc=7)


class TestCausality:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_read_your_writes(self, protocol):
        store = CausalStore(protocol=protocol)
        first = store.put("k").values["k"]
        second = store.put("k").values["k"]
        assert second > first
        assert store.get("k") == second

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_photo_album_scenario_is_causally_consistent(self, protocol):
        """Alice changes the ACL then adds a photo; no one may observe the new
        photo list together with the old ACL."""
        store = CausalStore(protocol=protocol)
        acl_v1 = store.put("album:acl").values["album:acl"]
        store.put("album:photos")
        acl_v2 = store.put("album:acl").values["album:acl"]
        photos_v2 = store.put("album:photos").values["album:photos"]
        snapshot = store.rot(["album:acl", "album:photos"]).values
        if snapshot["album:photos"] == photos_v2:
            assert snapshot["album:acl"] == acl_v2
        assert acl_v2 > acl_v1
        assert store.check().ok

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_checker_validates_full_history(self, protocol):
        store = CausalStore(protocol=protocol)
        for index in range(5):
            store.put(f"key-{index % 2}")
            store.rot(["key-0", "key-1"])
        report = store.check()
        assert report.ok
        assert report.puts == 5
        assert report.rots >= 5


class TestMultiDc:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_remote_update_becomes_visible_eventually(self, protocol):
        """Eventual visibility: a PUT in DC0 is eventually readable from DC1."""
        store = CausalStore(protocol=protocol, num_dcs=2, num_partitions=4)
        written = store.put("shared", dc=0).values["shared"]
        store.advance(0.2)  # let replication and stabilization run
        observed = store.get("shared", dc=1)
        assert observed == written

    def test_clients_exist_per_dc(self):
        store = CausalStore(num_dcs=2)
        assert store.get("0:1", dc=0) == 0
        assert store.get("0:1", dc=1) == 0


class TestConfiguration:
    def test_custom_config_is_used(self):
        config = ClusterConfig.test_scale(num_partitions=2, clients_per_dc=1)
        store = CausalStore(protocol="contrarian", config=config)
        assert store.cluster.config.num_partitions == 2
        assert store.get("0:0") == 0

    def test_cluster_is_inspectable(self):
        store = CausalStore()
        store.put("x")
        servers = list(store.cluster.topology.all_servers())
        assert sum(server.store.puts_applied for server in servers) == 1
