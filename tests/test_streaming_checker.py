"""Streaming GSS-windowed checker tests: equivalence, windows, streaming.

The core contract is **byte-identical reports**: on any history whose causal
references stay inside the retirement horizon, the streaming checker must
produce exactly the monolithic checker's :class:`CheckerReport` — same
violation strings in the same order — at every window size, serially or on
the worker pool.  The rest pins the windowing machinery (seal gate, force
seal, retirement), the observation buffer, the wire round-trip of
observation chunks, and the end-to-end TCP capture path.
"""

import pytest

from repro.causal.checker import (CausalConsistencyChecker, RecordedPut,
                                  RecordedRead, RecordedRot)
from repro.causal.streaming import (ObservationBuffer, StreamingChecker,
                                    iter_session_order)
from repro.causal.synth import SynthParameters, materialize
from repro.cluster.config import ClusterConfig
from repro.errors import ConfigurationError, SimulationError
from repro.harness.runner import run_experiment

PROTOCOLS = ("contrarian", "cure", "cc-lo")


def put(key, ts, client="writer", seq=1, deps=(), origin=0):
    return RecordedPut(key=key, timestamp=ts, origin_dc=origin,
                       client=client, sequence=seq,
                       dependencies=tuple(deps))


def rot(rot_id, reads, client="reader", seq=1):
    return RecordedRot(rot_id=rot_id, client=client, sequence=seq,
                       reads=tuple(RecordedRead(key=k, timestamp=t,
                                                origin_dc=o)
                                   for k, t, o in reads))


def monolithic_report(puts, rots):
    checker = CausalConsistencyChecker()
    for p in puts:
        checker.record_put(p)
    for r in rots:
        checker.record_rot(r)
    return checker.check()


def streaming_report(puts, rots, **kwargs):
    checker = StreamingChecker(**kwargs)
    checker.record_history(puts, rots)
    return checker.finish()


def assert_reports_identical(mono, stream):
    assert mono.puts == stream.puts
    assert mono.rots == stream.rots
    assert mono.snapshot_violations == stream.snapshot_violations
    assert mono.session_violations == stream.session_violations


def snapshot_violation_history():
    """x@2 depends on y@1; a ROT pairing x@2 with initial y@0 is stale."""
    puts = [put("y", 1, client="w", seq=1),
            put("x", 2, client="w", seq=2, deps=[("y", 1, 0)])]
    rots = [rot("r1", [("x", 2, 0), ("y", 0, 0)], client="rd", seq=1)]
    return puts, rots


def session_violation_history():
    """A client observes x@4 then reads its ancestor x@3."""
    puts = [put("x", 3, client="w", seq=1),
            put("x", 4, client="w", seq=2, deps=[("x", 3, 0)])]
    rots = [rot("r1", [("x", 4, 0)], client="rd", seq=1),
            rot("r2", [("x", 3, 0)], client="rd", seq=2)]
    return puts, rots


class TestEquivalenceOnProtocolHistories:
    """Identical reports on real recorded histories from all protocols."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_two_dc_history_reports_are_identical(self, protocol):
        config = ClusterConfig.test_scale(num_dcs=2, clients_per_dc=4,
                                          duration_seconds=0.3,
                                          warmup_seconds=0.05)
        outcome = run_experiment(protocol, config, enable_checker=True)
        puts, rots = outcome.cluster.checker.recorded_history()
        assert puts and rots
        mono = outcome.checker_report
        for window_ops in (16, 512):
            stream = streaming_report(puts, rots, window_ops=window_ops)
            assert_reports_identical(mono, stream)

    def test_synthetic_history_reports_are_identical(self):
        puts, rots = materialize(4000, SynthParameters(seed=99))
        mono = monolithic_report(puts, rots)
        assert mono.ok
        for window_ops in (1, 7, 256, 4096):
            stream = streaming_report(puts, rots, window_ops=window_ops)
            assert_reports_identical(mono, stream)

    def test_single_op_ingestion_matches_batch(self):
        puts, rots = materialize(1200, SynthParameters(seed=3))
        mono = monolithic_report(puts, rots)
        checker = StreamingChecker(window_ops=64)
        for kind, op in iter_session_order(puts, rots):
            if kind == "put":
                checker.record_put(op)
            else:
                checker.record_rot(op)
        assert_reports_identical(mono, checker.finish())


class TestInjectedViolations:
    """Violations are caught wherever they fall relative to windows."""

    @pytest.mark.parametrize("make_history", [snapshot_violation_history,
                                              session_violation_history])
    def test_violation_inside_one_window(self, make_history):
        puts, rots = make_history()
        mono = monolithic_report(puts, rots)
        assert not mono.ok
        stream = streaming_report(puts, rots, window_ops=4096)
        assert_reports_identical(mono, stream)

    @pytest.mark.parametrize("make_history", [snapshot_violation_history,
                                              session_violation_history])
    @pytest.mark.parametrize("window_ops", [1, 2, 3])
    def test_violation_across_and_at_window_boundaries(self, make_history,
                                                       window_ops):
        # Three total ops with window sizes 1..3 put the offending ROT in
        # its own window, across a boundary, and flush at the boundary.
        puts, rots = make_history()
        mono = monolithic_report(puts, rots)
        assert not mono.ok
        stream = streaming_report(puts, rots, window_ops=window_ops)
        assert_reports_identical(mono, stream)

    def test_violations_surface_in_monolithic_order_across_windows(self):
        base_puts, base_rots = materialize(600, SynthParameters(seed=41))
        vp, vr = snapshot_violation_history()
        sp, sr = session_violation_history()
        puts = base_puts + vp + sp
        rots = base_rots + vr + sr
        mono = monolithic_report(puts, rots)
        assert len(mono.snapshot_violations) == 1
        assert len(mono.session_violations) == 1
        for window_ops in (8, 128):
            stream = streaming_report(puts, rots, window_ops=window_ops)
            assert_reports_identical(mono, stream)


class TestWindowMechanics:
    def test_single_source_windows_seal_by_op_count(self):
        puts, rots = materialize(1000, SynthParameters(seed=5))
        checker = StreamingChecker(window_ops=100)
        checker.record_history(puts, rots)
        assert checker.windows_sealed == 10
        assert checker.force_seals == 0

    def test_lagging_source_defers_the_seal_gate(self):
        checker = StreamingChecker(window_ops=2)
        # Source "b" has announced origin-0 progress only up to ts 1, so a
        # window whose high-water is ts 3 cannot seal yet.
        checker.record_history([put("z", 1, client="other", seq=1)], [],
                               source="b")
        checker.record_history(
            [put("x", 2, client="w", seq=1),
             put("x", 3, client="w", seq=2, deps=[("x", 2, 0)])],
            [], source="a")
        sealed_before = checker.windows_sealed
        # Once "b" catches up past ts 3, the frozen window seals.
        checker.record_history([put("y", 4, client="other", seq=2)], [],
                               source="b")
        assert checker.windows_sealed > sealed_before

    def test_stalled_source_triggers_the_force_seal_backstop(self):
        checker = StreamingChecker(window_ops=2, force_seal_factor=2)
        checker.record_history([put("z", 1, client="other", seq=1)], [],
                               source="stalled")
        puts = [put("x", ts, client="w", seq=ts,
                    deps=[("x", ts - 1, 0)] if ts > 2 else [])
                for ts in range(2, 12)]
        checker.record_history(puts, [], source="fast")
        assert checker.force_seals > 0
        assert checker.windows_sealed > 0

    def test_retirement_bounds_the_live_set(self):
        puts, rots = materialize(4000, SynthParameters(seed=13))
        checker = StreamingChecker(window_ops=64, retire_lag=1)
        for start in range(0, len(puts), 200):
            checker.record_history(puts[start:start + 200], ())
        checker.record_history((), rots)
        checker.finish()
        assert checker.versions_retired > 0
        assert checker.peak_live_versions < checker.recorded_puts

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(SimulationError):
            StreamingChecker(window_ops=0)
        with pytest.raises(SimulationError):
            StreamingChecker(retire_lag=0)
        with pytest.raises(SimulationError):
            StreamingChecker(force_seal_factor=0)


class TestParallelWindows:
    def test_pool_mode_matches_serial_reports(self):
        puts, rots = materialize(1500, SynthParameters(seed=21))
        serial = streaming_report(puts, rots, window_ops=64)
        pooled = streaming_report(puts, rots, window_ops=64, max_workers=2)
        assert_reports_identical(serial, pooled)

    def test_pool_mode_catches_injected_violations(self):
        base_puts, base_rots = materialize(300, SynthParameters(seed=8))
        vp, vr = snapshot_violation_history()
        puts, rots = base_puts + vp, base_rots + vr
        mono = monolithic_report(puts, rots)
        assert not mono.ok
        stream = streaming_report(puts, rots, window_ops=32, max_workers=2)
        assert_reports_identical(mono, stream)


class TestReentrantFinish:
    def test_midrun_check_then_more_operations(self):
        puts, rots = materialize(2000, SynthParameters(seed=17))
        mono = monolithic_report(puts, rots)
        checker = StreamingChecker(window_ops=64)
        half_p, half_r = len(puts) // 2, len(rots) // 2
        checker.record_history(puts[:half_p], rots[:half_r])
        mid = checker.finish()
        assert mid.puts == half_p and mid.rots == half_r
        checker.record_history(puts[half_p:], rots[half_r:])
        assert_reports_identical(mono, checker.finish())

    def test_finish_is_idempotent(self):
        puts, rots = materialize(500, SynthParameters(seed=2))
        checker = StreamingChecker(window_ops=32)
        checker.record_history(puts, rots)
        first = checker.finish()
        second = checker.finish()
        assert_reports_identical(first, second)


class TestConvergence:
    def test_divergent_cross_dc_finals_are_flagged(self):
        # Two concurrent writes to k from different DCs; each client's last
        # read returns a different one and neither precedes the other.
        puts = [put("k", 5, client="w0", seq=1, origin=0),
                put("k", 6, client="w1", seq=1, origin=1)]
        rots = [rot("r1", [("k", 5, 0)], client="ca", seq=1),
                rot("r2", [("k", 6, 1)], client="cb", seq=1)]
        checker = StreamingChecker(check_convergence=True)
        checker.record_history(puts, rots)
        report = checker.finish()
        assert len(report.convergence_violations) == 1
        assert "divergent final reads" in report.convergence_violations[0]
        assert not report.ok

    def test_causally_ordered_finals_are_not_divergence(self):
        puts = [put("k", 5, client="w0", seq=1, origin=0),
                put("k", 6, client="w1", seq=1, origin=1,
                    deps=[("k", 5, 0)])]
        rots = [rot("r1", [("k", 5, 0)], client="ca", seq=1),
                rot("r2", [("k", 6, 1)], client="cb", seq=1)]
        checker = StreamingChecker(check_convergence=True)
        checker.record_history(puts, rots)
        assert checker.finish().convergence_violations == []

    def test_convergence_is_off_by_default(self):
        puts = [put("k", 5, client="w0", seq=1, origin=0),
                put("k", 6, client="w1", seq=1, origin=1)]
        rots = [rot("r1", [("k", 5, 0)], client="ca", seq=1),
                rot("r2", [("k", 6, 1)], client="cb", seq=1)]
        report = streaming_report(puts, rots)
        assert report.convergence_violations == []
        assert report.ok


class TestObservationBuffer:
    def test_record_drain_cycle(self):
        buffer = ObservationBuffer()
        p = put("a", 1)
        r = rot("r1", [("a", 1, 0)])
        buffer.record_put(p)
        buffer.record_rot(r)
        assert buffer.pending == 2
        puts, rots = buffer.drain()
        assert puts == (p,) and rots == (r,)
        assert buffer.pending == 0
        assert buffer.drain() == ((), ())
        assert buffer.recorded_history() == ((), ())


class TestObservationWire:
    def test_observation_chunk_round_trips(self):
        from repro.runtime.process import ObservationChunk
        from repro.wire.batch import decode_record_batch, encode_record_batch
        from repro.wire.codec import decode, encode

        puts, rots = materialize(200, SynthParameters(seed=7))
        chunk = ObservationChunk(
            worker_id=3, sequence=1, put_count=len(puts),
            rot_count=len(rots), puts_blob=encode_record_batch(puts),
            rots_blob=encode_record_batch(rots))
        decoded = decode(encode(chunk))
        assert decoded.worker_id == 3
        assert decode_record_batch(decoded.puts_blob) == puts
        assert decode_record_batch(decoded.rots_blob) == rots

    def test_record_batch_rejects_corrupt_blobs(self):
        from repro.errors import WireFormatError
        from repro.wire.batch import decode_record_batch, encode_record_batch

        assert encode_record_batch([]) == b""
        assert decode_record_batch(b"") == []
        with pytest.raises(WireFormatError):
            decode_record_batch(b"\x01")
        blob = encode_record_batch([put("a", 1)])
        with pytest.raises(WireFormatError):
            decode_record_batch(blob + b"junk")


class TestRuntimeSelection:
    def test_streaming_checker_requires_realtime_backend(self):
        from repro.api import CausalStore
        with pytest.raises(ConfigurationError):
            CausalStore(backend="sim", checker="streaming")
        with pytest.raises(ConfigurationError):
            CausalStore(backend="realtime", checker="bogus")

    def test_experiment_rejects_unknown_checker(self):
        from repro.runtime.experiment import run_realtime_experiment
        with pytest.raises(ConfigurationError):
            run_realtime_experiment("cure", checker="bogus")


@pytest.mark.slow
class TestStreamingOverTcp:
    def test_workers_stream_chunks_and_the_run_is_clean(self):
        from repro.runtime.experiment import run_realtime_experiment
        from repro.workload.parameters import WorkloadParameters
        config = ClusterConfig.test_scale(num_partitions=2, num_dcs=2,
                                          clients_per_dc=2,
                                          warmup_seconds=0.05)
        outcome = run_realtime_experiment(
            "contrarian", config, WorkloadParameters(rot_size=2),
            duration_seconds=0.5, transport="tcp",
            check_consistency=True, checker="streaming")
        cluster = outcome.cluster
        assert cluster.chunks_ingested > 0
        assert isinstance(cluster.checker, StreamingChecker)
        report = outcome.checker_report
        assert report.ok
        assert report.puts > 0 and report.rots > 0

    def test_inproc_realtime_run_with_streaming_checker(self):
        from repro.runtime.experiment import run_realtime_experiment
        outcome = run_realtime_experiment(
            "cure", ClusterConfig.test_scale(), duration_seconds=0.4,
            transport="inproc", check_consistency=True, checker="streaming")
        assert isinstance(outcome.cluster.checker, StreamingChecker)
        assert outcome.checker_report.ok
        assert outcome.checker_report.rots > 0
