"""Isolated tests of the sans-I/O protocol kernels.

Each kernel is driven with hand-crafted message sequences — no simulator, no
event loop, no cluster — and the emitted effects are asserted directly.
This is the payoff of the kernel/driver split: the protocol logic (including
the CC-LO readers check and the HLC snapshot-advance edge cases) is testable
as a pure state machine.
"""

import sys

import pytest

from repro.clocks.timesource import FixedClock
from repro.cluster.partitioning import HashPartitioner
from repro.core.cclo.kernel import CcloClientKernel, CcloKernel
from repro.core.common.kernel import (
    ClientAddr,
    Complete,
    Send,
    ServerAddr,
    SetTimer,
)
from repro.core.common.messages import (
    CcloPutReply,
    CcloPutRequest,
    OneRoundReadRequest,
    ReadersCheckReply,
    ReadersCheckRequest,
    ReplicateUpdate,
    RotCoordinatorRequest,
    RotProxyRead,
    RotValueReply,
    VectorPutReply,
    VectorPutRequest,
)
from repro.core.vector.clockbox import ClockBox
from repro.core.vector.kernel import VectorClientKernel, VectorServerKernel
from repro.errors import ProtocolError
from repro.storage.version import Version

import random


class TestSansIoImport:
    def test_kernel_modules_do_not_import_the_simulator(self):
        """Acceptance criterion: kernels import with no repro.sim dependency."""
        saved = {name: module for name, module in sys.modules.items()
                 if name.startswith("repro")}
        for name in saved:
            del sys.modules[name]
        try:
            import repro.core.vector.kernel  # noqa: F401
            import repro.core.cclo.kernel  # noqa: F401
            import repro.core.common.kernel  # noqa: F401
            sim_modules = [name for name in sys.modules
                           if name.startswith("repro.sim")]
            assert sim_modules == []
        finally:
            # Restore the originally imported modules so every other test
            # keeps its class identities (isinstance checks!).
            for name in [n for n in sys.modules if n.startswith("repro")]:
                del sys.modules[name]
            sys.modules.update(saved)


def vector_kernel(mode="hlc", num_dcs=2, clock=None, partitions=4):
    time_source = clock or FixedClock(0.0)
    return VectorServerKernel(
        node_id="server-dc0-p0", dc_id=0, partition_index=0,
        num_dcs=num_dcs, num_partitions=partitions,
        partitioner=HashPartitioner(partitions),
        clock=ClockBox(mode, time_source, offset_us=0.0),
        stabilization_interval=0.005, heartbeat_interval=0.010)


def key_on(partition, index=0):
    return HashPartitioner.structured_key(partition, index)


class TestVectorServerKernel:
    def test_put_emits_reply_then_replication(self):
        kernel = vector_kernel()
        request = VectorPutRequest(key=key_on(0), value_size=8,
                                   client_vector=(0, 0), client_id="c", sequence=1)
        effects = kernel.on_message(ClientAddr("c"), request, now=0.0)
        assert [type(e) for e in effects] == [Send, Send]
        reply, replicate = effects
        assert reply.dest == ClientAddr("c")
        assert isinstance(reply.message, VectorPutReply)
        assert replicate.dest == ServerAddr(1, 0)
        assert isinstance(replicate.message, ReplicateUpdate)
        installed = kernel.store.latest_visible(key_on(0))
        assert installed.timestamp == reply.message.timestamp
        assert installed.dependency_vector[0] == installed.timestamp

    def test_snapshot_local_entry_honours_client_timestamp(self):
        """HLC snapshot-advance edge: a client ahead of the coordinator's
        clock pushes the snapshot's local entry to its own timestamp."""
        kernel = vector_kernel()
        ahead = 10_000_000
        request = RotCoordinatorRequest(rot_id="c#1", keys=(key_on(0),),
                                        client_local_ts=ahead,
                                        client_gss=(0, 0), client_id="c",
                                        two_round=False)
        effects = kernel.on_message(ClientAddr("c"), request, now=0.0)
        (reply,) = effects
        assert isinstance(reply.message, RotValueReply)
        assert reply.message.snapshot[0] == ahead

    def test_hlc_read_at_future_snapshot_never_blocks_and_advances_clock(self):
        """HLC snapshot-advance edge: serving a snapshot ahead of the local
        HLC must not block, and must move the clock so later PUTs order
        after the snapshot."""
        kernel = vector_kernel()
        future_ts = 5_000_000
        read = RotProxyRead(rot_id="c#1", keys=(key_on(0),),
                            snapshot=(future_ts, 0), client_id="c")
        effects = kernel.on_message(ServerAddr(0, 1), read, now=0.0)
        assert [type(e) for e in effects] == [Send]  # no SetTimer: nonblocking
        assert kernel.counters.blocked_reads == 0
        assert kernel.clock.read() >= future_ts
        put = VectorPutRequest(key=key_on(0), value_size=8,
                               client_vector=(0, 0), client_id="c", sequence=2)
        (reply, _replicate) = kernel.on_message(ClientAddr("c"), put, now=0.0)
        assert reply.message.timestamp > future_ts

    def test_physical_read_at_future_snapshot_emits_blocking_timer(self):
        clock = FixedClock(0.0)
        kernel = vector_kernel(mode="physical", clock=clock)
        read = RotProxyRead(rot_id="c#1", keys=(key_on(0),),
                            snapshot=(5_000, 0), client_id="c")
        effects = kernel.on_message(ServerAddr(0, 1), read, now=0.0)
        (timer,) = effects
        assert isinstance(timer, SetTimer) and timer.tag == "rot-block"
        assert timer.delay == pytest.approx(0.005)
        assert kernel.counters.blocked_reads == 1
        # Once the clock has caught up, firing the timer serves the read.
        clock.advance(0.005)
        served = kernel.on_timer(timer.tag, timer.payload, now=0.005)
        assert [type(e) for e in served] == [Send]
        assert served[0].dest == ClientAddr("c")

    def test_stabilization_timer_broadcasts_to_local_peers(self):
        kernel = vector_kernel(num_dcs=1, partitions=3)
        tags = [spec.tag for spec in kernel.periodic_timers()]
        assert tags == ["stabilization"]  # no heartbeats with a single DC
        effects = kernel.on_timer("stabilization", None, now=0.0)
        assert [e.dest for e in effects] == [ServerAddr(0, 1), ServerAddr(0, 2)]

    def test_unknown_message_rejected(self):
        kernel = vector_kernel()
        with pytest.raises(ProtocolError):
            kernel.on_message(ClientAddr("c"), object(), now=0.0)

    def test_unknown_timer_rejected(self):
        kernel = vector_kernel()
        with pytest.raises(ProtocolError):
            kernel.on_timer("sundial", None, now=0.0)


def cclo_kernel(num_dcs=1, partitions=4):
    return CcloKernel(node_id="server-dc0-p0", dc_id=0, partition_index=0,
                      num_dcs=num_dcs, num_partitions=partitions,
                      partitioner=HashPartitioner(partitions),
                      gc_window_seconds=0.5, one_id_per_client=True)


def visible_version(key, timestamp):
    return Version(key=key, value=None, timestamp=timestamp, origin_dc=0,
                   size_bytes=8, visible=True)


class TestCcloKernel:
    def test_readers_check_collects_old_readers_across_partitions(self):
        """The full readers-check exchange, driven message by message."""
        kernel = cclo_kernel(num_dcs=2)
        local_key, remote_key = key_on(0), key_on(1)
        kernel.store.install(visible_version(local_key, 1))
        kernel.store.install(visible_version(remote_key, 1))

        # A ROT reads the local key: it becomes that key's current reader.
        read = OneRoundReadRequest(rot_id="c1#1", keys=(local_key,),
                                   client_id="c1")
        (reply,) = kernel.on_message(ClientAddr("c1"), read, now=0.0)
        assert reply.message.results[0].timestamp == 1
        assert kernel.readers.current_reader_count(local_key) == 1

        # A PUT depending on both keys: the remote dependency's partition
        # must be asked for old readers before the version becomes visible.
        put = CcloPutRequest(key=local_key, value_size=8,
                             dependencies=((local_key, 1, 0), (remote_key, 1, 0)),
                             dependency_partitions=(0, 1),
                             client_id="c2", sequence=1)
        effects = kernel.on_message(ClientAddr("c2"), put, now=0.1)
        (check,) = effects
        assert check.dest == ServerAddr(0, 1)
        assert isinstance(check.message, ReadersCheckRequest)
        assert not kernel.store.latest(local_key,
                                       lambda v: v.timestamp > 1).visible

        # The dependency partition answers with an old reader; the check
        # finalizes: version visible, client acked, replica updated, and the
        # old reader inherited onto the written key.
        answer = ReadersCheckReply(check_id=check.message.check_id,
                                   old_readers=(("c9#7", 42),))
        effects = kernel.on_message(ServerAddr(0, 1), answer, now=0.2)
        dests = [e.dest for e in effects]
        assert ClientAddr("c2") in dests and ServerAddr(1, 0) in dests
        assert any(isinstance(e.message, CcloPutReply) for e in effects)
        new_version = kernel.store.latest_visible(local_key)
        assert new_version.timestamp > 1 and new_version.visible
        assert "c9#7" in new_version.old_readers
        assert kernel.counters.readers_checks == 1
        # Old-reader inheritance: c9#7 is now an old reader of the key too.
        assert ("c9#7", 42) in kernel.readers.old_readers_of(local_key, now=0.3)

    def test_barred_reader_falls_back_to_older_version(self):
        kernel = cclo_kernel()
        key = key_on(0)
        kernel.store.install(visible_version(key, 1))
        newer = Version(key=key, value=None, timestamp=2, origin_dc=0,
                        size_bytes=8, visible=True,
                        old_readers={"c1#1": 10})
        kernel.store.install(newer)
        read = OneRoundReadRequest(rot_id="c1#1", keys=(key,), client_id="c1")
        (reply,) = kernel.on_message(ClientAddr("c1"), read, now=0.0)
        # The barred ROT gets the *older* version (latency-optimal: it never
        # blocks or retries) and is recorded as an old reader.
        assert reply.message.results[0].timestamp == 1
        assert ("c1#1" in dict(kernel.readers.old_readers_of(key, now=0.1)))

    def test_local_only_dependencies_complete_synchronously(self):
        kernel = cclo_kernel(num_dcs=1)
        key = key_on(0)
        kernel.store.install(visible_version(key, 1))
        put = CcloPutRequest(key=key, value_size=8,
                             dependencies=((key, 1, 0),),
                             dependency_partitions=(0,),
                             client_id="c", sequence=1)
        effects = kernel.on_message(ClientAddr("c"), put, now=0.0)
        # Single DC, dependency on the writing partition itself: the check
        # needs no network round and the PUT acks immediately.
        assert [type(e) for e in effects] == [Send]
        assert isinstance(effects[0].message, CcloPutReply)

    def test_gc_timer_purges_expired_reader_records(self):
        kernel = cclo_kernel()
        key = key_on(0)
        kernel.readers.record_old_reader(key, "c1#1", "c1", 5, now=0.0)
        assert kernel.periodic_timers()[0].tag == "cclo-gc"
        kernel.on_timer("cclo-gc", None, now=10.0)
        assert kernel.readers.total_tracked_entries() == 0

    def test_unknown_message_rejected(self):
        with pytest.raises(ProtocolError):
            cclo_kernel().on_message(ClientAddr("c"), object(), now=0.0)


class TestClientKernels:
    def _vector_client(self, two_round=False):
        return VectorClientKernel(client_id="client-dc0-0", dc_id=0, num_dcs=2,
                                  partitioner=HashPartitioner(4),
                                  rng=random.Random(7), two_round=two_round)

    def test_put_reply_completes_with_pre_put_dependencies(self):
        kernel = self._vector_client()
        op = _Op("put", (key_on(0),))
        (send,) = kernel.start_operation(op, sequence=1, now=0.0)
        assert send.dest == ServerAddr(0, 0)
        assert isinstance(send.message, VectorPutRequest)
        (done,) = kernel.on_message(
            VectorPutReply(key=key_on(0), timestamp=9, gss=(3, 4)), now=0.1)
        assert isinstance(done, Complete) and done.op == "put"
        # The first PUT has no prior causal context...
        assert done.result.dependencies == ()
        # ...but the kernel folded the reply into its context for the next op.
        assert kernel.local_ts_seen == 9
        assert kernel.gss_seen == (3, 4)
        assert kernel.checker_dependencies() == ((key_on(0), 9, 0),)

    def test_rot_completes_after_every_partition_replied(self):
        kernel = self._vector_client()
        op = _Op("rot", (key_on(0), key_on(1)))
        (send,) = kernel.start_operation(op, sequence=2, now=0.0)
        assert isinstance(send.message, RotCoordinatorRequest)
        snapshot = (5, 5)
        from repro.core.common.messages import ReadResult
        first = RotValueReply(rot_id=send.message.rot_id,
                              results=(ReadResult(key_on(0), 4, 0, 8),),
                              snapshot=snapshot, gss=(2, 2))
        assert kernel.on_message(first, now=0.1) == []  # still one outstanding
        second = RotValueReply(rot_id=send.message.rot_id,
                               results=(ReadResult(key_on(1), 3, 1, 8),),
                               snapshot=snapshot, gss=(2, 2))
        (done,) = kernel.on_message(second, now=0.2)
        assert isinstance(done, Complete) and done.op == "rot"
        assert set(done.result.results) == {key_on(0), key_on(1)}
        assert kernel.local_ts_seen == 5  # snapshot folded into the context

    def test_reply_for_unknown_rot_rejected(self):
        kernel = self._vector_client()
        with pytest.raises(ProtocolError):
            kernel.on_message(RotValueReply(rot_id="ghost", results=(),
                                            snapshot=(0, 0), gss=(0, 0)),
                              now=0.0)

    def test_cclo_put_carries_accumulated_dependencies(self):
        kernel = CcloClientKernel(client_id="client-dc0-0", dc_id=0,
                                  partitioner=HashPartitioner(4))
        from repro.core.common.messages import OneRoundReadReply, ReadResult
        (send,) = kernel.start_operation(_Op("rot", (key_on(1),)),
                                         sequence=1, now=0.0)
        (done,) = kernel.on_message(
            OneRoundReadReply(rot_id=send.message.rot_id,
                              results=(ReadResult(key_on(1), 7, 0, 8),)),
            now=0.1)
        assert done.op == "rot"
        (put,) = kernel.start_operation(_Op("put", (key_on(0),)),
                                        sequence=2, now=0.2)
        assert put.message.dependencies == ((key_on(1), 7, 0),)
        (ack,) = kernel.on_message(CcloPutReply(key=key_on(0), timestamp=11),
                                   now=0.3)
        # The Complete effect snapshots the context from *before* the PUT
        # subsumed it; afterwards the PUT is the only nearest dependency.
        assert ack.result.dependencies == ((key_on(1), 7, 0),)
        assert kernel.checker_dependencies() == ((key_on(0), 11, 0),)


class _Op:
    """Minimal operation stand-in (duck-typed like workload operations)."""

    def __init__(self, kind, keys, value_size=8):
        self.kind = kind
        self.keys = keys
        self.value_size = value_size

    @property
    def is_put(self):
        return self.kind == "put"

    @property
    def is_rot(self):
        return self.kind == "rot"
