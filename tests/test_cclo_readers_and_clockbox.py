"""Tests for the CC-LO reader records and the vector-protocol clock box."""

import pytest

from repro.core.cclo.readers import ReaderRecords
from repro.core.vector.clockbox import ClockBox
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


class TestReaderRecords:
    def _records(self, gc_window=1.0, one_per_client=True):
        return ReaderRecords(gc_window_seconds=gc_window,
                             one_id_per_client=one_per_client)

    def test_current_readers_are_not_old_readers(self):
        records = self._records()
        records.record_current_reader("x", "c1#1", "c1", 10, now=0.0)
        assert records.old_readers_of("x", now=0.1) == []
        assert records.current_reader_count("x") == 1

    def test_version_visibility_demotes_current_readers(self):
        records = self._records()
        records.record_current_reader("x", "c1#1", "c1", 10, now=0.0)
        records.record_current_reader("x", "c2#5", "c2", 11, now=0.0)
        demoted = records.on_version_visible("x", now=0.1)
        assert demoted == 2
        assert records.current_reader_count("x") == 0
        assert len(records.old_readers_of("x", now=0.2)) == 2

    def test_explicit_old_reader_recording(self):
        records = self._records()
        records.record_old_reader("x", "c1#3", "c1", 7, now=0.0)
        assert records.old_readers_of("x", now=0.1) == [("c1#3", 7)]

    def test_gc_window_expires_entries(self):
        records = self._records(gc_window=0.5)
        records.record_old_reader("x", "c1#1", "c1", 1, now=0.0)
        assert records.old_readers_of("x", now=0.4)
        assert records.old_readers_of("x", now=1.0) == []
        assert records.entries_expired >= 1

    def test_collect_garbage_purges_everything_expired(self):
        records = self._records(gc_window=0.1)
        for index in range(5):
            records.record_old_reader(f"k{index}", f"c#{index}", "c", index, now=0.0)
        removed = records.collect_garbage(now=1.0)
        assert removed == 5
        assert records.total_tracked_entries() == 0

    def test_one_id_per_client_keeps_most_recent(self):
        records = self._records(one_per_client=True)
        records.record_old_reader("x", "c1#1", "c1", 5, now=0.0)
        records.record_old_reader("x", "c1#2", "c1", 9, now=0.0)
        records.record_old_reader("x", "c2#1", "c2", 3, now=0.0)
        collected = dict(records.old_readers_of("x", now=0.1))
        assert collected == {"c1#2": 9, "c2#1": 3}

    def test_compression_disabled_keeps_every_id(self):
        records = self._records(one_per_client=False)
        records.record_old_reader("x", "c1#1", "c1", 5, now=0.0)
        records.record_old_reader("x", "c1#2", "c1", 9, now=0.0)
        assert len(records.old_readers_of("x", now=0.1)) == 2

    def test_collect_for_response_compresses_across_keys(self):
        records = self._records(one_per_client=True)
        records.record_old_reader("x", "c1#1", "c1", 5, now=0.0)
        records.record_old_reader("y", "c1#2", "c1", 9, now=0.0)
        records.record_old_reader("y", "c2#7", "c2", 2, now=0.0)
        collected = dict(records.collect_for_response(["x", "y"], now=0.1))
        assert collected == {"c1#2": 9, "c2#7": 2}

    def test_collect_for_response_without_compression_dedups_by_rot(self):
        records = self._records(one_per_client=False)
        records.record_old_reader("x", "c1#1", "c1", 5, now=0.0)
        records.record_old_reader("y", "c1#1", "c1", 6, now=0.0)
        collected = records.collect_for_response(["x", "y"], now=0.1)
        assert len(collected) == 1

    def test_collect_for_response_applies_gc(self):
        records = self._records(gc_window=0.2)
        records.record_old_reader("x", "c1#1", "c1", 5, now=0.0)
        assert records.collect_for_response(["x"], now=1.0) == []


class TestClockBox:
    def _sim_at(self, seconds):
        sim = Simulator()
        sim.run(until=seconds)
        return sim

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ClockBox("sundial", Simulator(), 0.0)

    def test_hlc_and_logical_timestamps_never_block(self):
        for mode in ("hlc", "logical"):
            clock = ClockBox(mode, self._sim_at(0.001), offset_us=0.0)
            decision = clock.timestamp_after(10**9)
            assert decision.wait_seconds == 0.0
            assert decision.timestamp > 10**9

    def test_physical_timestamps_may_wait(self):
        clock = ClockBox("physical", self._sim_at(0.001), offset_us=0.0)
        decision = clock.timestamp_after(5000)
        assert decision.wait_seconds > 0.0

    def test_physical_timestamp_without_wait_when_ahead(self):
        clock = ClockBox("physical", self._sim_at(0.010), offset_us=0.0)
        decision = clock.timestamp_after(100)
        assert decision.wait_seconds == 0.0
        assert decision.timestamp >= 10_000

    def test_catch_up_moves_movable_clocks(self):
        for mode in ("hlc", "logical"):
            clock = ClockBox(mode, self._sim_at(0.001), offset_us=0.0)
            assert clock.catch_up(10**8) == 0.0
            assert clock.read() >= 10**8

    def test_catch_up_blocks_physical_clocks(self):
        clock = ClockBox("physical", self._sim_at(0.001), offset_us=0.0)
        wait = clock.catch_up(3000)
        assert wait == pytest.approx(0.002)

    def test_observe_advances_logical_clocks_only(self):
        logical = ClockBox("logical", self._sim_at(0.0), offset_us=0.0)
        logical.observe(500)
        assert logical.read() >= 500
        physical = ClockBox("physical", self._sim_at(0.001), offset_us=0.0)
        physical.observe(10**9)
        assert physical.read() < 10**9

    def test_offset_shifts_physical_reading(self):
        ahead = ClockBox("physical", self._sim_at(0.001), offset_us=200.0)
        behind = ClockBox("physical", self._sim_at(0.001), offset_us=-200.0)
        assert ahead.read() > behind.read()

    def test_read_does_not_advance_logical_clock(self):
        clock = ClockBox("logical", Simulator(), offset_us=0.0)
        assert clock.read() == clock.read()
