"""Unit-level tests of protocol server behaviour, driven through the facade
and through small targeted simulations.

These tests look inside the servers (clocks, GSS, reader records, counters) to
verify the mechanisms the paper describes: nonblocking reads under HLC,
blocking reads under physical clocks, the readers check and its old-reader
records, and the stabilization protocol.
"""

import pytest

from repro.api import CausalStore
from repro.cluster.config import ClusterConfig
from repro.core.common.messages import RotValueReply, VectorPutRequest
from repro.errors import ProtocolError
from repro.harness.builder import build_cluster
from repro.harness.runner import run_experiment
from repro.workload.parameters import DEFAULT_WORKLOAD


def tiny_config(**overrides):
    defaults = dict(clients_per_dc=4, duration_seconds=0.4, warmup_seconds=0.1)
    defaults.update(overrides)
    return ClusterConfig.test_scale(**defaults)


class TestVectorServerMechanics:
    def test_contrarian_reads_never_block(self):
        outcome = run_experiment("contrarian", tiny_config())
        overhead = outcome.result.overhead
        assert overhead.blocked_reads == 0
        assert outcome.result.rots_completed > 0

    def test_cure_reads_block_on_clock_skew(self):
        outcome = run_experiment("cure", tiny_config())
        overhead = outcome.result.overhead
        assert overhead.blocked_reads > 0
        assert overhead.total_block_time > 0.0

    def test_contrarian_with_logical_clocks_still_nonblocking(self):
        outcome = run_experiment("contrarian", tiny_config(clock_mode="logical"))
        assert outcome.result.overhead.blocked_reads == 0

    def test_put_timestamps_increase_on_a_partition(self):
        store = CausalStore(protocol="contrarian")
        timestamps = [store.put("k").values["k"] for _ in range(5)]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == 5

    def test_put_installs_version_with_dependency_vector(self):
        store = CausalStore(protocol="contrarian")
        store.put("k")
        server = store.cluster.topology.server_for_key(0, "k")
        version = server.store.latest_visible("k")
        assert version.dependency_vector is not None
        assert version.dependency_vector[0] == version.timestamp

    def test_stabilization_messages_are_exchanged(self):
        outcome = run_experiment("contrarian", tiny_config())
        assert outcome.result.overhead.stabilization_messages > 0

    def test_two_dc_put_is_replicated(self):
        outcome = run_experiment("contrarian", tiny_config(num_dcs=2,
                                                           clients_per_dc=3))
        assert outcome.result.overhead.replication_messages > 0

    def test_gss_advances_during_a_run(self):
        outcome = run_experiment("contrarian", tiny_config(num_dcs=2,
                                                           clients_per_dc=3))
        for server in outcome.cluster.topology.all_servers():
            assert all(entry > 0 for entry in server.gss)

    def test_unknown_message_rejected(self):
        cluster = build_cluster("contrarian", tiny_config(), DEFAULT_WORKLOAD)
        server = cluster.topology.server(0, 0)
        with pytest.raises(ProtocolError):
            server.handle_message(server, object())

    def test_client_rejects_unknown_message(self):
        cluster = build_cluster("contrarian", tiny_config(), DEFAULT_WORKLOAD)
        client = cluster.topology.clients[0]
        with pytest.raises(ProtocolError):
            client.handle_message(client, object())

    def test_client_rejects_reply_for_unknown_rot(self):
        cluster = build_cluster("contrarian", tiny_config(), DEFAULT_WORKLOAD)
        client = cluster.topology.clients[0]
        with pytest.raises(ProtocolError):
            client.handle_message(client, RotValueReply(rot_id="ghost", results=(),
                                                        snapshot=(0,), gss=(0,)))

    def test_message_cost_covers_all_vector_messages(self):
        cluster = build_cluster("contrarian", tiny_config(), DEFAULT_WORKLOAD)
        server = cluster.topology.server(0, 0)
        request = VectorPutRequest(key="0:0", value_size=64, client_vector=(0,),
                                   client_id="c", sequence=1)
        assert server.service_time(request) > server.cost_model.message_cost()


class TestCcloServerMechanics:
    def test_put_triggers_readers_check_after_reads(self):
        outcome = run_experiment("cc-lo", tiny_config())
        overhead = outcome.result.overhead
        assert overhead.readers_checks > 0
        assert overhead.readers_check_messages > 0
        assert overhead.rot_ids_distinct > 0

    def test_rots_are_single_round_and_nonblocking(self):
        outcome = run_experiment("cc-lo", tiny_config())
        assert outcome.result.overhead.blocked_reads == 0

    @pytest.mark.slow
    def test_put_latency_exceeds_vector_protocol_put_latency(self):
        cclo = run_experiment("cc-lo", tiny_config()).result
        contrarian = run_experiment("contrarian", tiny_config()).result
        assert cclo.put_mean_ms > contrarian.put_mean_ms

    def test_version_becomes_visible_after_check(self):
        store = CausalStore(protocol="cc-lo")
        store.rot(["0:0", "1:0"])
        written = store.put("0:0").values["0:0"]
        server = store.cluster.topology.server_for_key(0, "0:0")
        version = server.store.latest_visible("0:0")
        assert version.timestamp == written
        assert version.visible

    def test_old_reader_records_populated_on_overwrite(self):
        store = CausalStore(protocol="cc-lo")
        store.rot(["0:0", "1:0"])       # the facade client reads 0:0
        store.put("0:0")                # overwriting demotes that reader
        server = store.cluster.topology.server_for_key(0, "0:0")
        assert server.readers.old_reader_count("0:0") >= 1

    @pytest.mark.slow
    def test_replicated_updates_carry_dependencies(self):
        outcome = run_experiment("cc-lo", tiny_config(num_dcs=2, clients_per_dc=3))
        overhead = outcome.result.overhead
        assert overhead.replication_messages > 0
        assert overhead.dependency_entries_sent > 0

    @pytest.mark.slow
    def test_remote_readers_check_runs_in_both_dcs(self):
        single = run_experiment("cc-lo", tiny_config()).result
        double = run_experiment("cc-lo", tiny_config(num_dcs=2, clients_per_dc=4)).result
        # With two DCs every PUT is checked at the origin and at the replica.
        assert double.overhead.readers_checks > single.overhead.readers_checks

    def test_unknown_message_rejected(self):
        cluster = build_cluster("cc-lo", tiny_config(), DEFAULT_WORKLOAD)
        server = cluster.topology.server(0, 0)
        with pytest.raises(ProtocolError):
            server.handle_message(server, object())

    @pytest.mark.slow
    def test_gc_window_configuration_is_respected(self):
        fast_gc = run_experiment(
            "cc-lo", tiny_config(cclo_gc_window_ms=20.0)).result
        slow_gc = run_experiment(
            "cc-lo", tiny_config(cclo_gc_window_ms=5000.0)).result
        assert fast_gc.overhead.average_distinct_ids_per_check() <= \
            slow_gc.overhead.average_distinct_ids_per_check()
