"""Multi-process TCP cluster tests (the issue's acceptance criteria).

All three protocols must complete a realtime run with ``transport="tcp"``
across >= 2 worker OS processes with zero causal-checker violations; the
interactive facade must drive the same worker mesh.  These spawn real
processes, so they carry the ``slow`` marker (tier-1 still runs them).
"""

import pytest

from repro.api import CausalStore
from repro.cluster.config import ClusterConfig
from repro.core.registry import resolve_spec, transport_protocols
from repro.errors import ConfigurationError
from repro.runtime import run_realtime_experiment
from repro.runtime.process import default_placement
from repro.workload.parameters import WorkloadParameters

PROTOCOLS = ("contrarian", "cure", "cc-lo")

#: Small but genuinely multi-process: 2 DCs x 2 partitions -> 4 server
#: processes plus one client worker per DC.
CONFIG = ClusterConfig.test_scale(num_partitions=2, num_dcs=2,
                                  clients_per_dc=2, warmup_seconds=0.05)
WORKLOAD = WorkloadParameters(rot_size=2)


@pytest.mark.slow
class TestTcpWorkloadRuns:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_protocol_completes_over_tcp_with_zero_violations(self, protocol):
        outcome = run_realtime_experiment(
            protocol, CONFIG, WORKLOAD, duration_seconds=0.5,
            transport="tcp", check_consistency=True)
        result = outcome.result
        assert outcome.cluster.worker_count >= 2
        assert result.rots_completed > 0
        assert result.puts_completed > 0
        assert outcome.checker_report.ok
        assert outcome.checker_report.rots > 0
        assert result.rot_latency.mean_ms > 0.0
        # Overheads come from the server workers, shipped back at shutdown.
        assert result.overhead.messages_sent > 0
        assert result.overhead.bytes_sent > 0

    def test_cclo_readers_check_counters_cross_the_wire(self):
        outcome = run_realtime_experiment(
            "cc-lo", CONFIG, WORKLOAD, duration_seconds=0.5,
            transport="tcp", check_consistency=True)
        assert outcome.result.overhead.readers_checks > 0


@pytest.mark.slow
class TestTcpInteractiveFacade:
    def test_put_rot_check_and_cross_dc_replication(self):
        with CausalStore(protocol="contrarian", backend="realtime",
                         transport="tcp", num_partitions=2,
                         num_dcs=2) as store:
            written = store.put("shared", dc=0).values["shared"]
            assert store.rot(["shared"], dc=0).values["shared"] == written
            seen = None
            for _ in range(40):  # bounded wait for replication+stabilization
                store.advance(0.05)
                seen = store.get("shared", dc=1)
                if seen == written:
                    break
            assert seen == written
            assert store.check().ok
        with pytest.raises(ConfigurationError):
            store.put("shared")


class TestTransportSelection:
    def test_placement_is_one_process_per_partition_server(self):
        roles = default_placement(CONFIG, workload_clients=True)
        server_roles = [role for role in roles if role.server_ids]
        client_roles = [role for role in roles if role.client_ids]
        assert len(server_roles) == CONFIG.num_dcs * CONFIG.num_partitions
        assert all(len(role.server_ids) == 1 for role in server_roles)
        assert len(client_roles) == CONFIG.num_dcs
        covered = {client for role in client_roles
                   for client in role.client_ids}
        assert covered == {(dc, index) for dc in range(CONFIG.num_dcs)
                           for index in range(CONFIG.clients_per_dc)}

    def test_builtins_declare_tcp_support(self):
        assert set(transport_protocols("tcp")) >= set(PROTOCOLS)
        for protocol in PROTOCOLS:
            assert resolve_spec(protocol).transports == ("inproc", "tcp")

    def test_unknown_transport_rejected_everywhere(self):
        with pytest.raises(ConfigurationError, match="unknown transport"):
            run_realtime_experiment("contrarian", CONFIG,
                                    transport="carrier-pigeon")
        with pytest.raises(ConfigurationError, match="unknown transport"):
            CausalStore(protocol="contrarian", backend="realtime",
                        transport="carrier-pigeon")

    def test_tcp_requires_realtime_backend(self):
        with pytest.raises(ConfigurationError, match="realtime"):
            CausalStore(protocol="contrarian", backend="sim",
                        transport="tcp")

    def test_inproc_only_protocol_is_refused_by_tcp(self):
        from repro.core.registry import register_protocol, unregister_protocol
        from repro.core.vector.kernel import (
            ContrarianClientKernel,
            ContrarianKernel,
        )
        register_protocol("inproc-only", object, object,
                          kernel=ContrarianKernel,
                          client_kernel=ContrarianClientKernel,
                          transports=("inproc",))
        try:
            assert "inproc-only" not in transport_protocols("tcp")
            with pytest.raises(ConfigurationError, match="tcp"):
                run_realtime_experiment("inproc-only", CONFIG,
                                        transport="tcp")
        finally:
            unregister_protocol("inproc-only")
