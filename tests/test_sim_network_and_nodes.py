"""Tests for the network model and the CPU-queue node model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator, microseconds
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node


class RecordingNode(Node):
    """A node that records every message it processes."""

    def __init__(self, sim, node_id, dc_id=0, service=0.0, threads=1):
        super().__init__(sim, node_id, dc_id, threads=threads)
        self.received = []
        self._service = service

    def service_time(self, message):
        return self._service

    def handle_message(self, sender, message):
        self.received.append((self.sim.now, sender.node_id, message))


class SizedMessage:
    def __init__(self, size):
        self._size = size

    def size_bytes(self):
        return self._size


class TestLatencyModel:
    def test_defaults_are_symmetric(self):
        model = LatencyModel()
        assert model.intra_dc_us == model.inter_dc_us

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(intra_dc_us=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(bandwidth_bytes_per_us=0)

    def test_larger_messages_take_longer(self):
        model = LatencyModel(jitter_us=0.0)
        small = model.one_way_delay(True, 64, 0.0)
        large = model.one_way_delay(True, 64_000, 0.0)
        assert large > small

    def test_inter_dc_latency_used_across_dcs(self):
        model = LatencyModel(intra_dc_us=10.0, inter_dc_us=1000.0, jitter_us=0.0)
        assert model.one_way_delay(False, 0, 0.0) > model.one_way_delay(True, 0, 0.0)

    def test_jitter_adds_latency(self):
        model = LatencyModel(jitter_us=100.0)
        assert model.one_way_delay(True, 0, 1.0) > model.one_way_delay(True, 0, 0.0)


class TestNetwork:
    def test_message_is_delivered(self):
        sim = Simulator()
        network = Network(sim)
        a = RecordingNode(sim, "a")
        b = RecordingNode(sim, "b")
        network.send(a, b, "hello")
        sim.run()
        assert len(b.received) == 1
        assert b.received[0][1] == "a"

    def test_delivery_takes_nonzero_time(self):
        sim = Simulator()
        network = Network(sim)
        a, b = RecordingNode(sim, "a"), RecordingNode(sim, "b")
        network.send(a, b, "hello")
        sim.run()
        assert b.received[0][0] > 0.0

    def test_fifo_per_channel(self):
        """Messages between the same pair of nodes arrive in send order."""
        sim = Simulator(seed=3)
        network = Network(sim, LatencyModel(jitter_us=500.0))
        a, b = RecordingNode(sim, "a"), RecordingNode(sim, "b")
        for index in range(50):
            network.send(a, b, index)
        sim.run()
        assert [message for _, _, message in b.received] == list(range(50))

    def test_stats_count_messages_and_bytes(self):
        sim = Simulator()
        network = Network(sim)
        a, b = RecordingNode(sim, "a"), RecordingNode(sim, "b", dc_id=1)
        network.send(a, b, SizedMessage(100))
        network.send(b, a, SizedMessage(200))
        sim.run()
        assert network.stats.messages == 2
        assert network.stats.bytes == 300
        assert network.stats.inter_dc_messages == 2

    def test_send_local_skips_the_wire(self):
        sim = Simulator()
        network = Network(sim)
        a = RecordingNode(sim, "a")
        network.send_local(a, "self-message")
        sim.run()
        assert len(a.received) == 1
        assert network.stats.messages == 0

    def test_unknown_message_size_defaults(self):
        assert Network._message_size(object()) == 64
        assert Network._message_size(SizedMessage(12)) == 12


class TestNodeCpuQueue:
    def test_messages_processed_in_fifo_order(self):
        sim = Simulator()
        node = RecordingNode(sim, "srv", service=microseconds(10))
        sender = RecordingNode(sim, "cli")
        for index in range(5):
            node.enqueue_message(sender, index)
        sim.run()
        assert [message for _, _, message in node.received] == list(range(5))

    def test_service_time_delays_completion(self):
        sim = Simulator()
        node = RecordingNode(sim, "srv", service=0.5)
        node.enqueue_message(RecordingNode(sim, "cli"), "x")
        sim.run()
        assert node.received[0][0] == pytest.approx(0.5)

    def test_queueing_adds_wait_time(self):
        sim = Simulator()
        node = RecordingNode(sim, "srv", service=1.0)
        sender = RecordingNode(sim, "cli")
        node.enqueue_message(sender, "first")
        node.enqueue_message(sender, "second")
        sim.run()
        assert node.received[1][0] == pytest.approx(2.0)
        assert node.stats.total_queue_wait == pytest.approx(1.0)

    def test_busy_time_accounting(self):
        sim = Simulator()
        node = RecordingNode(sim, "srv", service=0.25)
        sender = RecordingNode(sim, "cli")
        for _ in range(4):
            node.enqueue_message(sender, "op")
        sim.run()
        assert node.stats.busy_time == pytest.approx(1.0)
        assert node.stats.utilization(2.0) == pytest.approx(0.5)
        assert node.stats.messages_processed == 4

    def test_threads_divide_service_time(self):
        sim = Simulator()
        node = RecordingNode(sim, "srv", service=1.0, threads=4)
        node.enqueue_message(RecordingNode(sim, "cli"), "x")
        sim.run()
        assert node.received[0][0] == pytest.approx(0.25)

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            RecordingNode(Simulator(), "srv", threads=0)

    def test_average_queue_wait_without_messages(self):
        node = RecordingNode(Simulator(), "srv")
        assert node.stats.average_queue_wait() == 0.0

    def test_base_node_handle_message_is_abstract(self):
        node = Node(Simulator(), "raw", 0)
        with pytest.raises(NotImplementedError):
            node.handle_message(node, "x")
