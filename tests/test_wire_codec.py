"""Wire-codec tests: round trips for every message type, error paths.

The codec satellite of the transport-layer issue: every registered message
type encodes/decodes to an equal value (parametrized over all three
protocols' message sets, in both the binary and the JSON debug format), and
malformed/unknown-version frames raise the typed
:class:`~repro.errors.WireFormatError` from :mod:`repro.errors`.
"""

import dataclasses

import pytest

from repro.core.common.messages import (
    PROTOCOL_MESSAGES,
    WIRE_MESSAGES,
    CcloPutReply,
    CcloPutRequest,
    CcloReplicateUpdate,
    OneRoundReadReply,
    OneRoundReadRequest,
    ReadersCheckReply,
    ReadersCheckRequest,
    ReadResult,
    RemoteHeartbeat,
    ReplicateUpdate,
    RotCoordinatorRequest,
    RotProxyRead,
    RotReadRequest,
    RotSnapshotReply,
    RotValueReply,
    StabilizationMessage,
    VectorPutReply,
    VectorPutRequest,
)
from repro.errors import WireFormatError
from repro.wire import (
    FrameDecoder,
    FrameDecoder as _FrameDecoder,  # noqa: F401 - re-export sanity
    MAX_FRAME_BYTES,
    decode,
    encode,
    frame,
    register_wire_type,
)
from repro.wire.codec import MAGIC, WIRE_VERSION

_RESULTS = (ReadResult(key="k:0", timestamp=7, origin_dc=0, value_size=8),
            ReadResult(key="k:1", timestamp=None, origin_dc=1, value_size=16))

#: One representative, fully populated instance per wire message type.
SAMPLES = {
    ReadResult: _RESULTS[0],
    VectorPutRequest: VectorPutRequest(
        key="k:0", value_size=64, client_vector=(3, 0), client_id="c-0",
        sequence=9, dependencies=(("k:1", 5), ("k:2", 2))),
    VectorPutReply: VectorPutReply(key="k:0", timestamp=11, gss=(4, 2)),
    RotCoordinatorRequest: RotCoordinatorRequest(
        rot_id="c-0#4", keys=("k:0", "k:1"), client_local_ts=8,
        client_gss=(3, 1), client_id="c-0", two_round=True),
    RotSnapshotReply: RotSnapshotReply(rot_id="c-0#4", snapshot=(5, 5)),
    RotProxyRead: RotProxyRead(rot_id="c-0#4", keys=("k:0",),
                               snapshot=(5, 5), client_id="c-0"),
    RotReadRequest: RotReadRequest(rot_id="c-0#4", keys=("k:1",),
                                   snapshot=(6, 3), client_id="c-0"),
    RotValueReply: RotValueReply(rot_id="c-0#4", results=_RESULTS,
                                 snapshot=(6, 3), gss=(4, 2)),
    RemoteHeartbeat: RemoteHeartbeat(origin_dc=1, timestamp=123456789),
    StabilizationMessage: StabilizationMessage(
        partition_index=2, version_vector=(9, 0)),
    ReplicateUpdate: ReplicateUpdate(
        key="k:0", timestamp=10, origin_dc=0, value_size=64,
        dependency_vector=(7, 1), dependencies=(("k:2", 3),),
        writer="c-0", sequence=4),
    OneRoundReadRequest: OneRoundReadRequest(
        rot_id="c-1#2", keys=("k:0", "k:3"), client_id="c-1"),
    OneRoundReadReply: OneRoundReadReply(rot_id="c-1#2", results=_RESULTS),
    CcloPutRequest: CcloPutRequest(
        key="k:0", value_size=8, dependencies=(("k:1", 5, 0), ("k:2", 1, 1)),
        dependency_partitions=(1, 3), client_id="c-1", sequence=6),
    CcloPutReply: CcloPutReply(key="k:0", timestamp=12),
    ReadersCheckRequest: ReadersCheckRequest(
        check_id="chk-1", dependencies=(("k:1", 5, 0),), put_key="k:0",
        put_timestamp=12, require_present=True),
    ReadersCheckReply: ReadersCheckReply(
        check_id="chk-1", old_readers=(("c-1#1", 4), ("c-2#7", 9))),
    CcloReplicateUpdate: CcloReplicateUpdate(
        key="k:0", timestamp=12, origin_dc=0, value_size=8,
        dependencies=(("k:1", 5, 0),), writer="c-1", sequence=6,
        old_readers=(("c-1#1", 4),)),
}


class TestRoundTrips:
    def test_every_wire_message_has_a_sample(self):
        assert set(SAMPLES) == set(WIRE_MESSAGES)

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_MESSAGES))
    @pytest.mark.parametrize("format", ["binary", "json"])
    def test_protocol_message_set_round_trips(self, protocol, format):
        for message_type in PROTOCOL_MESSAGES[protocol]:
            original = SAMPLES[message_type]
            decoded = decode(encode(original, format=format))
            assert decoded == original
            assert type(decoded) is message_type

    @pytest.mark.parametrize("format", ["binary", "json"])
    def test_plain_values_round_trip(self, format):
        for value in (None, True, False, 0, 127, -1, -32, 128, 2 ** 40,
                      -(2 ** 40), 2 ** 70, 3.25, "", "k" * 500, b"\x00\xff",
                      (), (1, (2, 3)), {"a": 1, "b": (2.5, None)}):
            assert decode(encode(value, format=format)) == value

    def test_sequences_decode_as_tuples(self):
        decoded = decode(encode([1, [2, 3]]))
        assert decoded == (1, (2, 3))
        assert type(decoded) is tuple

    def test_binary_is_compact(self):
        message = SAMPLES[RotValueReply]
        assert len(encode(message)) < len(encode(message, format="json"))
        # Far below the dataclass's modelled wire size + header.
        assert len(encode(message)) < 4 * message.size_bytes()


class TestErrorPaths:
    def test_empty_and_short_frames(self):
        for data in (b"", b"\xa7", bytes((MAGIC, WIRE_VERSION))):
            with pytest.raises(WireFormatError, match="too short"):
                decode(data)

    def test_bad_magic(self):
        with pytest.raises(WireFormatError, match="magic"):
            decode(bytes((0x00, WIRE_VERSION, 0x01)) + b"\x01")

    def test_unknown_version(self):
        payload = bytearray(encode(SAMPLES[CcloPutReply]))
        payload[1] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            decode(bytes(payload))

    def test_unknown_format_tag(self):
        with pytest.raises(WireFormatError, match="format"):
            decode(bytes((MAGIC, WIRE_VERSION, 0x7F)) + b"\x01")

    def test_truncated_binary_frame(self):
        payload = encode(SAMPLES[VectorPutRequest])
        with pytest.raises(WireFormatError, match="truncated|ran out"):
            decode(payload[:-3])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireFormatError, match="trailing"):
            decode(encode(SAMPLES[CcloPutReply]) + b"\x00")

    def test_unknown_struct_id(self):
        import struct
        body = bytes((MAGIC, WIRE_VERSION, 0x01, 0xD8)) \
            + struct.pack(">H", 9999) + bytes((0x90,))
        with pytest.raises(WireFormatError, match="unknown wire type id"):
            decode(body)

    def test_malformed_json_frame(self):
        body = bytes((MAGIC, WIRE_VERSION, 0x02)) + b"{not json"
        with pytest.raises(WireFormatError, match="JSON"):
            decode(body)

    def test_unknown_json_type_name(self):
        body = bytes((MAGIC, WIRE_VERSION, 0x02)) \
            + b'{"__wire__": "NoSuchType", "fields": {}}'
        with pytest.raises(WireFormatError, match="NoSuchType"):
            decode(body)

    def test_unregistered_dataclass_rejected(self):
        @dataclasses.dataclass(frozen=True)
        class NotOnTheWire:
            x: int

        for format in ("binary", "json"):
            with pytest.raises(WireFormatError, match="not a registered"):
                encode(NotOnTheWire(x=1), format=format)

    def test_registering_non_dataclass_rejected(self):
        with pytest.raises(WireFormatError, match="dataclass"):
            register_wire_type(int)

    def test_struct_field_count_mismatch(self):
        import struct
        type_id = 14  # CcloPutReply: (key, timestamp)
        assert WIRE_MESSAGES[type_id] is CcloPutReply
        body = bytes((MAGIC, WIRE_VERSION, 0x01, 0xD8)) \
            + struct.pack(">H", type_id) + bytes((0x91, 0x01))
        with pytest.raises(WireFormatError, match="fields"):
            decode(body)


class TestFraming:
    def test_incremental_feed_reassembles_frames(self):
        payloads = [encode(SAMPLES[CcloPutReply]),
                    encode(SAMPLES[RotValueReply], format="json")]
        stream = b"".join(frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), 3):  # drip-feed 3 bytes at a time
            out.extend(decoder.feed(stream[i:i + 3]))
        assert [decode(p) for p in out] == [decode(p) for p in payloads]
        assert decoder.pending_bytes == 0

    def test_oversized_length_prefix_rejected(self):
        import struct
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="limit"):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))


class TestWireVersionCompat:
    """Wire versions 2 (trace-carrying) and 3 (batch frames) vs old peers.

    Version 2 appended trailing optional struct fields (``Envelope.trace``,
    ``TraceEvent`` shipping); both decoders fill absent trailing fields from
    dataclass defaults, so v1 frames — and v2 frames from senders built
    before a field was appended — keep decoding.  Version 3 added the batch
    frame format (0x03); per-message v1/v2 frames are unchanged, so they
    keep decoding under a v3 codec.
    """

    def test_version_constants(self):
        from repro.wire.codec import SUPPORTED_WIRE_VERSIONS
        assert WIRE_VERSION == 3
        assert SUPPORTED_WIRE_VERSIONS == (1, 2, 3)
        assert WIRE_VERSION in SUPPORTED_WIRE_VERSIONS

    def test_older_version_frames_still_decode(self):
        for version in (1, 2):
            for format in ("binary", "json"):
                payload = bytearray(encode(SAMPLES[CcloPutReply],
                                           format=format))
                assert payload[1] == WIRE_VERSION
                payload[1] = version
                assert decode(bytes(payload)) == SAMPLES[CcloPutReply]

    def test_unsupported_versions_rejected(self):
        for version in (0, 4, 99):
            payload = bytearray(encode(SAMPLES[CcloPutReply]))
            payload[1] = version
            with pytest.raises(WireFormatError, match="version"):
                decode(bytes(payload))

    def test_envelope_trace_round_trips(self):
        from repro.runtime.transport import Envelope
        from repro.core.common.kernel import ClientAddr, ServerAddr
        envelope = Envelope(sender=ClientAddr(client_id="c-0"),
                            dest=ServerAddr(dc=1, partition=0),
                            payload=SAMPLES[CcloPutReply],
                            trace="c-0#7")
        for format in ("binary", "json"):
            assert decode(encode(envelope, format=format)) == envelope

    def test_three_field_envelope_frame_decodes_without_trace(self):
        # A v1 peer encodes Envelope with only (sender, dest, payload).
        # Build that frame by hand: struct tag, Envelope's type id, then a
        # 3-element field array spliced from individually encoded values.
        import struct
        from repro.runtime.transport import Envelope
        from repro.core.common.kernel import ClientAddr
        full = encode(Envelope(sender=None, dest=ClientAddr(client_id="c-1"),
                               payload=7, trace="x"))
        envelope_type_id = struct.unpack(">H", full[4:6])[0]

        def bare(value):  # strip the 3-byte header off a standalone encode
            return encode(value)[3:]

        body = bytes((MAGIC, 1, 0x01, 0xD8)) \
            + struct.pack(">H", envelope_type_id) \
            + bytes((0x90 | 3,)) \
            + bare(None) + bare(ClientAddr(client_id="c-1")) + bare(7)
        decoded = decode(body)
        assert decoded == Envelope(sender=None,
                                   dest=ClientAddr(client_id="c-1"),
                                   payload=7, trace=None)

    def test_excess_struct_fields_rejected(self):
        import struct
        full = encode(SAMPLES[CcloPutReply])
        type_id = struct.unpack(">H", full[4:6])[0]

        def bare(value):
            return encode(value)[3:]

        body = bytes((MAGIC, WIRE_VERSION, 0x01, 0xD8)) \
            + struct.pack(">H", type_id) + bytes((0x90 | 3,)) \
            + bare("k") + bare(1) + bare(2)
        with pytest.raises(WireFormatError, match="expected at most"):
            decode(body)

    def test_json_frame_with_absent_trailing_fields(self):
        import json
        from repro.obs.events import TraceEvent
        document = {"__wire__": "TraceEvent",
                    "fields": {"seq": 4, "ts": 1.25, "node": "client-0",
                               "kind": "op_start"}}
        body = bytes((MAGIC, WIRE_VERSION, 0x02)) \
            + json.dumps(document).encode()
        assert decode(body) == TraceEvent(seq=4, ts=1.25, node="client-0",
                                          kind="op_start")

    def test_trace_event_round_trips(self):
        from repro.obs.events import TraceEvent
        event = TraceEvent(seq=9, ts=0.5, node="server-1-0",
                           kind="replicate_apply", trace="c-0#3",
                           name="k:4", dc=1, data=(("key", "k:4"),))
        for format in ("binary", "json"):
            assert decode(encode(event, format=format)) == event
