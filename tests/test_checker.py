"""Tests for the causal-consistency checker on hand-crafted histories."""

import pytest

from repro.causal.checker import (
    CausalConsistencyChecker,
    RecordedPut,
    RecordedRead,
    RecordedRot,
)
from repro.errors import ConsistencyViolation


def put(key, ts, client="writer", seq=1, deps=(), origin=0):
    return RecordedPut(key=key, timestamp=ts, origin_dc=origin, client=client,
                       sequence=seq, dependencies=tuple(deps))


def rot(rot_id, reads, client="reader", seq=1):
    return RecordedRot(rot_id=rot_id, client=client, sequence=seq,
                       reads=tuple(RecordedRead(key=k, timestamp=ts, origin_dc=o)
                                   for k, ts, o in reads))


class TestSnapshotChecking:
    def test_empty_history_is_ok(self):
        assert CausalConsistencyChecker().check().ok

    def test_consistent_snapshot_passes(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 1, seq=1))
        checker.record_put(put("y", 2, seq=2, deps=[("x", 1, 0)]))
        checker.record_rot(rot("t1", [("x", 1, 0), ("y", 2, 0)]))
        assert checker.check().ok

    def test_photo_album_anomaly_is_detected(self):
        """The paper's Alice/Bob anomaly: read old ACL with new photo list."""
        checker = CausalConsistencyChecker()
        checker.record_put(put("acl", 1, client="alice", seq=1))
        checker.record_put(put("acl", 2, client="alice", seq=2,
                               deps=[("acl", 1, 0)]))
        checker.record_put(put("photos", 3, client="alice", seq=3,
                               deps=[("acl", 2, 0)]))
        checker.record_rot(rot("bob-rot", [("acl", 1, 0), ("photos", 3, 0)],
                               client="bob"))
        report = checker.check()
        assert not report.ok
        assert len(report.snapshot_violations) == 1
        with pytest.raises(ConsistencyViolation):
            report.raise_if_violations()

    def test_reading_both_old_versions_is_consistent(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("acl", 1, seq=1))
        checker.record_put(put("acl", 2, seq=2, deps=[("acl", 1, 0)]))
        checker.record_put(put("photos", 3, seq=3, deps=[("acl", 2, 0)]))
        checker.record_rot(rot("t", [("acl", 1, 0), ("photos", None, 0)]))
        # photos missing (never read a version that depends on the new acl).
        assert checker.check().ok

    def test_transitive_dependency_violation_detected(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 1, seq=1))
        checker.record_put(put("x", 2, seq=2, deps=[("x", 1, 0)]))
        checker.record_put(put("y", 5, seq=3, deps=[("x", 2, 0)]))
        checker.record_put(put("z", 9, seq=4, deps=[("y", 5, 0)]))
        checker.record_rot(rot("t", [("x", 1, 0), ("z", 9, 0)]))
        assert not checker.check().ok

    def test_concurrent_versions_are_not_a_violation(self):
        """Cross-DC concurrent writes to the same key form a valid snapshot."""
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 10, origin=0, client="c0", seq=1))
        checker.record_put(put("x", 4, origin=1, client="c1", seq=1))
        checker.record_put(put("y", 11, origin=0, client="c0", seq=2,
                               deps=[("x", 10, 0)]))
        # Returned x is the DC1 version, concurrent with the DC0 dependency.
        checker.record_rot(rot("t", [("x", 4, 1), ("y", 11, 0)]))
        assert checker.check().ok

    def test_stale_initial_version_is_a_violation(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 7, seq=1))
        checker.record_put(put("y", 8, seq=2, deps=[("x", 7, 0)]))
        # Returned the preloaded version of x (timestamp 0, never recorded).
        checker.record_rot(rot("t", [("x", 0, 0), ("y", 8, 0)]))
        assert not checker.check().ok

    def test_reads_of_unrecorded_versions_are_ignored(self):
        checker = CausalConsistencyChecker()
        checker.record_rot(rot("t", [("x", 0, 0), ("y", 0, 0)]))
        assert checker.check().ok

    def test_same_dc_timestamp_order_counts_as_causal(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 1, seq=1, client="w1"))
        checker.record_put(put("x", 2, seq=1, client="w2", deps=[("x", 1, 0)]))
        checker.record_put(put("y", 3, seq=2, client="w2", deps=[("x", 2, 0)]))
        checker.record_rot(rot("t", [("x", 1, 0), ("y", 3, 0)]))
        assert not checker.check().ok


class TestSessionChecking:
    def test_read_your_writes_violation(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 1, client="c", seq=1))
        checker.record_put(put("x", 5, client="c", seq=2, deps=[("x", 1, 0)]))
        checker.record_rot(rot("t", [("x", 1, 0)], client="c", seq=3))
        report = checker.check()
        assert report.session_violations

    def test_monotonic_reads_violation(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 1, client="w", seq=1))
        checker.record_put(put("x", 2, client="w", seq=2, deps=[("x", 1, 0)]))
        checker.record_rot(rot("t1", [("x", 2, 0)], client="c", seq=1))
        checker.record_rot(rot("t2", [("x", 1, 0)], client="c", seq=2))
        report = checker.check()
        assert report.session_violations

    def test_monotonic_reads_allow_progress(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 1, client="w", seq=1))
        checker.record_put(put("x", 2, client="w", seq=2, deps=[("x", 1, 0)]))
        checker.record_rot(rot("t1", [("x", 1, 0)], client="c", seq=1))
        checker.record_rot(rot("t2", [("x", 2, 0)], client="c", seq=2))
        assert checker.check().ok

    def test_missing_value_after_write_is_violation(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 3, client="c", seq=1))
        checker.record_rot(rot("t", [("x", None, 0)], client="c", seq=2))
        assert checker.check().session_violations


class TestReportAndBookkeeping:
    def test_counts_recorded_operations(self):
        checker = CausalConsistencyChecker()
        checker.record_history(
            puts=[put("x", 1, seq=1), put("y", 2, seq=2)],
            rots=[rot("t", [("x", 1, 0)])])
        assert checker.recorded_puts == 2
        assert checker.recorded_rots == 1
        report = checker.check()
        assert report.puts == 2
        assert report.rots == 1

    def test_report_ok_flag(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 1))
        checker.record_rot(rot("t", [("x", 1, 0)]))
        report = checker.check()
        assert report.ok
        report.raise_if_violations()  # should not raise


class TestFrontierMemoization:
    """The per-check frontier caches must not leak across record calls."""

    def test_check_twice_with_recording_in_between(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("y", 1, seq=1))
        checker.record_put(put("x", 2, seq=2, deps=[("y", 1, 0)]))
        first = checker.check()
        assert first.ok
        # The violating ROT arrives only after the first check has warmed
        # the caches; a stale cache would miss the violation.
        checker.record_rot(rot("t", [("x", 2, 0), ("y", 0, 0)]))
        second = checker.check()
        assert len(second.snapshot_violations) == 1

    def test_late_put_extends_an_already_cached_frontier(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("x", 3, client="w", seq=1))
        checker.record_rot(rot("t1", [("x", 3, 0)], client="rd", seq=1))
        assert checker.check().ok
        # x@4 depends on x@3; the reader then goes backwards to x@3.  The
        # ancestor relation only exists once x@4 is recorded, so the caches
        # warmed by the first check() must be refreshed.
        checker.record_put(put("x", 4, client="w", seq=2,
                               deps=[("x", 3, 0)]))
        checker.record_rot(rot("t2", [("x", 4, 0)], client="rd", seq=2))
        checker.record_rot(rot("t3", [("x", 3, 0)], client="rd", seq=3))
        report = checker.check()
        assert len(report.session_violations) == 1

    def test_repeated_checks_are_stable(self):
        checker = CausalConsistencyChecker()
        checker.record_put(put("y", 1, seq=1))
        checker.record_put(put("x", 2, seq=2, deps=[("y", 1, 0)]))
        checker.record_rot(rot("t", [("x", 2, 0), ("y", 0, 0)]))
        first = checker.check()
        second = checker.check()
        assert first.snapshot_violations == second.snapshot_violations
