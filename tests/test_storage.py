"""Tests for the multi-version store and version objects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.mvstore import MultiVersionStore
from repro.storage.version import Version


def make_version(key="k", ts=1, visible=True, **kwargs):
    return Version(key=key, value=None, timestamp=ts, visible=visible, **kwargs)


class TestVersion:
    def test_visibility_flag(self):
        assert make_version(visible=True).is_visible()
        assert not make_version(visible=False).is_visible()

    def test_old_reader_exclusion(self):
        version = make_version()
        version.old_readers["rot-1"] = 10
        assert version.excludes_reader("rot-1")
        assert not version.excludes_reader("rot-2")

    def test_defaults(self):
        version = make_version()
        assert version.dependency_vector is None
        assert version.dependencies == ()
        assert version.origin_dc == 0


class TestMultiVersionStore:
    def test_install_and_read_latest(self):
        store = MultiVersionStore()
        store.install(make_version(ts=1))
        store.install(make_version(ts=2))
        assert store.latest("k").timestamp == 2

    def test_missing_key_returns_none(self):
        assert MultiVersionStore().latest("nope") is None

    def test_latest_with_predicate(self):
        store = MultiVersionStore()
        store.install(make_version(ts=1))
        store.install(make_version(ts=2))
        store.install(make_version(ts=3))
        assert store.latest("k", lambda v: v.timestamp <= 2).timestamp == 2

    def test_latest_visible_skips_invisible(self):
        store = MultiVersionStore()
        store.install(make_version(ts=1, visible=True))
        store.install(make_version(ts=2, visible=False))
        assert store.latest_visible("k").timestamp == 1

    def test_no_version_satisfies_predicate(self):
        store = MultiVersionStore()
        store.install(make_version(ts=5))
        assert store.latest("k", lambda v: v.timestamp < 5) is None

    def test_versions_returned_oldest_first(self):
        store = MultiVersionStore()
        for ts in (1, 2, 3):
            store.install(make_version(ts=ts))
        assert [v.timestamp for v in store.versions("k")] == [1, 2, 3]

    def test_garbage_collection_keeps_newest(self):
        store = MultiVersionStore(max_versions_per_key=3)
        for ts in range(1, 8):
            store.install(make_version(ts=ts))
        assert [v.timestamp for v in store.versions("k")] == [5, 6, 7]
        assert store.versions_collected == 4

    def test_retention_limit_must_be_positive(self):
        with pytest.raises(StorageError):
            MultiVersionStore(max_versions_per_key=0)

    def test_contains_and_len(self):
        store = MultiVersionStore()
        store.install(make_version(key="a"))
        store.install(make_version(key="b"))
        assert store.contains("a")
        assert not store.contains("c")
        assert len(store) == 2
        assert set(store.keys()) == {"a", "b"}

    def test_version_count(self):
        store = MultiVersionStore()
        store.install(make_version(key="a", ts=1))
        store.install(make_version(key="a", ts=2))
        store.install(make_version(key="b", ts=1))
        assert store.version_count("a") == 2
        assert store.version_count() == 3

    def test_preload_does_not_count_as_puts(self):
        store = MultiVersionStore()
        store.preload(make_version(key=f"k{i}") for i in range(10))
        assert store.puts_applied == 0
        assert len(store) == 10

    def test_puts_applied_counter(self):
        store = MultiVersionStore()
        store.install(make_version())
        store.install(make_version(ts=2))
        assert store.puts_applied == 2

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_latest_is_last_installed(self, timestamps):
        store = MultiVersionStore(max_versions_per_key=100)
        for ts in timestamps:
            store.install(make_version(ts=ts))
        assert store.latest("k").timestamp == timestamps[-1]

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_retention_invariant(self, limit, installs):
        store = MultiVersionStore(max_versions_per_key=limit)
        for ts in range(installs):
            store.install(make_version(ts=ts))
        assert store.version_count("k") <= limit
        assert store.latest("k").timestamp == installs - 1
