"""End-to-end integration tests: full workload runs validated by the checker.

Every protocol is run under the workload generator in both a single-DC and a
two-DC deployment, with the full history recorded, and the causal-consistency
checker must find no violation.  A hypothesis-driven variant explores random
workload mixes and seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.harness.runner import run_experiment
from repro.workload.parameters import WorkloadParameters

#: Full-history runs with the checker enabled are the long tier of the test
#: suite; CI's PR job skips them via ``-m "not slow"`` and the nightly job
#: (plus any plain local ``pytest``) still runs them.
pytestmark = pytest.mark.slow

PROTOCOLS = ("contrarian", "cure", "cc-lo")


def tiny_config(**overrides):
    defaults = dict(clients_per_dc=5, duration_seconds=0.35, warmup_seconds=0.05,
                    keys_per_partition=32)
    defaults.update(overrides)
    return ClusterConfig.test_scale(**defaults)


WRITE_HEAVY = WorkloadParameters(write_ratio=0.3, rot_size=4, value_size=8, skew=0.99)


class TestSingleDcConsistency:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_default_workload_history_is_causally_consistent(self, protocol):
        outcome = run_experiment(protocol, tiny_config(), check_consistency=True)
        assert outcome.checker_report is not None
        assert outcome.checker_report.ok
        assert outcome.result.rots_completed > 0
        assert outcome.result.puts_completed > 0

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_write_heavy_workload_history_is_causally_consistent(self, protocol):
        outcome = run_experiment(protocol, tiny_config(), WRITE_HEAVY,
                                 check_consistency=True)
        assert outcome.checker_report.ok

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_uniform_popularity_history_is_causally_consistent(self, protocol):
        workload = WorkloadParameters(write_ratio=0.1, rot_size=2, skew=0.0)
        outcome = run_experiment(protocol, tiny_config(), workload,
                                 check_consistency=True)
        assert outcome.checker_report.ok


class TestTwoDcConsistency:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_replicated_history_is_causally_consistent(self, protocol):
        outcome = run_experiment(protocol,
                                 tiny_config(num_dcs=2, clients_per_dc=4),
                                 check_consistency=True)
        assert outcome.checker_report.ok
        assert outcome.result.overhead.replication_messages > 0


class TestRunMechanics:
    def test_throughput_grows_with_clients(self):
        low = run_experiment("contrarian", tiny_config(clients_per_dc=2)).result
        high = run_experiment("contrarian", tiny_config(clients_per_dc=10)).result
        assert high.throughput_kops > low.throughput_kops

    def test_results_are_reproducible_for_a_seed(self):
        a = run_experiment("contrarian", tiny_config(seed=11)).result
        b = run_experiment("contrarian", tiny_config(seed=11)).result
        assert a.throughput_kops == b.throughput_kops
        assert a.rot_latency == b.rot_latency

    def test_different_seeds_give_different_runs(self):
        a = run_experiment("contrarian", tiny_config(seed=1)).result
        b = run_experiment("contrarian", tiny_config(seed=2)).result
        assert a.rots_completed != b.rots_completed or \
            a.rot_latency != b.rot_latency

    def test_cpu_utilization_is_a_fraction(self):
        result = run_experiment("contrarian", tiny_config()).result
        assert 0.0 < result.cpu_utilization <= 1.0

    def test_label_defaults_to_workload_description(self):
        result = run_experiment("contrarian", tiny_config()).result
        assert "w=" in result.label


class TestPropertyBasedConsistency:
    @given(protocol=st.sampled_from(PROTOCOLS),
           write_ratio=st.sampled_from([0.01, 0.1, 0.3]),
           skew=st.sampled_from([0.0, 0.99]),
           num_dcs=st.sampled_from([1, 2]),
           seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_workloads_never_violate_causal_consistency(
            self, protocol, write_ratio, skew, num_dcs, seed):
        workload = WorkloadParameters(write_ratio=write_ratio, rot_size=2,
                                      skew=skew)
        config = tiny_config(num_dcs=num_dcs, clients_per_dc=3,
                             duration_seconds=0.25, seed=seed)
        outcome = run_experiment(protocol, config, workload,
                                 check_consistency=True)
        assert outcome.checker_report.ok
