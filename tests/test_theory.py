"""Tests for the Theorem 1 machinery (Section 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TheoryError
from repro.metrics.collectors import RunResult
from repro.metrics.latency import LatencySummary
from repro.sim.costs import OverheadCounters
from repro.theory.executions import (
    LamportOnlyProtocol,
    ReaderTrackingProtocol,
    X0,
    Y0,
    Y1,
    build_execution,
    communication_signature,
    find_causal_violation,
    lemma1_holds,
)
from repro.theory.lower_bound import (
    ROT_ID_BITS,
    executions_count,
    lower_bound_bits,
    measured_bits_per_dangerous_put,
    verify_bound_against_measurement,
)

CLIENTS = ("c1", "c2", "c3", "c4")


class TestExecutionConstruction:
    def test_readers_see_old_x_and_old_y_when_tracked(self):
        outcome = build_execution(ReaderTrackingProtocol(), CLIENTS[:2],
                                  delayed_readers=CLIENTS[:1])
        assert outcome.late_read_results["c1"] == (X0, Y0)
        assert not outcome.violates_causal_consistency()

    def test_straw_man_returns_inconsistent_snapshot(self):
        outcome = build_execution(LamportOnlyProtocol(), CLIENTS[:2],
                                  delayed_readers=CLIENTS[:1])
        assert outcome.late_read_results["c1"] == (X0, Y1)
        assert outcome.violates_causal_consistency()

    def test_delayed_readers_must_be_readers(self):
        with pytest.raises(TheoryError):
            build_execution(ReaderTrackingProtocol(), ("c1",),
                            delayed_readers=("c2",))

    def test_signature_lists_old_readers_for_tracking_protocol(self):
        signature = communication_signature(ReaderTrackingProtocol(), CLIENTS[:3])
        assert len(signature) == 3
        assert all(entry.startswith("old-reader:") for entry in signature)

    def test_signature_is_constant_size_for_straw_man(self):
        protocol = LamportOnlyProtocol()
        assert len(communication_signature(protocol, CLIENTS[:1])) == 1
        assert len(communication_signature(protocol, CLIENTS[:4])) == 1


class TestLemma1:
    def test_holds_for_reader_tracking_protocol(self):
        assert lemma1_holds(ReaderTrackingProtocol(), CLIENTS)

    def test_fails_for_straw_man_protocol(self):
        assert not lemma1_holds(LamportOnlyProtocol(), CLIENTS)

    def test_violation_found_only_for_straw_man(self):
        assert find_causal_violation(ReaderTrackingProtocol(), CLIENTS) is None
        violation = find_causal_violation(LamportOnlyProtocol(), CLIENTS)
        assert violation is not None
        assert violation.violates_causal_consistency()

    def test_subset_enumeration_is_bounded(self):
        with pytest.raises(TheoryError):
            lemma1_holds(ReaderTrackingProtocol(), tuple(f"c{i}" for i in range(20)))


class TestLemma2:
    def test_executions_count_is_exponential(self):
        assert executions_count(0) == 1
        assert executions_count(5) == 32

    def test_lower_bound_is_linear(self):
        assert lower_bound_bits(0) == 0
        assert lower_bound_bits(256) == 256

    def test_negative_clients_rejected(self):
        with pytest.raises(TheoryError):
            lower_bound_bits(-1)
        with pytest.raises(TheoryError):
            executions_count(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_bound_grows_monotonically(self, clients):
        assert lower_bound_bits(clients + 1) > lower_bound_bits(clients) - 1


def fake_run_result(clients, distinct_ids_per_check):
    counters = OverheadCounters()
    counters.record_readers_check(distinct_ids=distinct_ids_per_check,
                                  cumulative_ids=distinct_ids_per_check,
                                  partitions_contacted=1)
    return RunResult(protocol="cc-lo", num_dcs=1, clients=clients,
                     throughput_kops=1.0, rot_latency=LatencySummary.empty(),
                     put_latency=LatencySummary.empty(), rots_completed=1,
                     puts_completed=1, overhead=counters, cpu_utilization=0.1)


class TestBoundVersusMeasurement:
    def test_measured_bits_use_rot_id_size(self):
        result = fake_run_result(clients=10, distinct_ids_per_check=10)
        assert measured_bits_per_dangerous_put(result) == 10 * ROT_ID_BITS

    def test_comparison_reports_bound_satisfied(self):
        result = fake_run_result(clients=16, distinct_ids_per_check=16)
        comparison = verify_bound_against_measurement(result)
        assert comparison.lower_bound_bits == 16
        assert comparison.measured_exceeds_bound
        assert comparison.ratio >= 1.0

    def test_ratio_with_zero_bound(self):
        result = fake_run_result(clients=0, distinct_ids_per_check=1)
        assert verify_bound_against_measurement(result).ratio == float("inf")
