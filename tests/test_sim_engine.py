"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    PeriodicTask,
    Simulator,
    as_microseconds,
    as_milliseconds,
    microseconds,
    milliseconds,
)


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_runs_callback_at_requested_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.call_at(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for name in ("first", "second", "third"):
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_call_at_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.0]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("no"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_executes_event_exactly_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [2]

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for index in range(10):
            sim.schedule(index + 1.0, lambda i=index: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_executes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestDeterminism:
    def test_derived_rng_is_deterministic(self):
        a = Simulator(seed=7).derived_rng("workload").random()
        b = Simulator(seed=7).derived_rng("workload").random()
        assert a == b

    def test_derived_rng_differs_by_name(self):
        sim = Simulator(seed=7)
        assert sim.derived_rng("a").random() != sim.derived_rng("b").random()

    def test_seed_is_exposed(self):
        assert Simulator(seed=13).seed == 13


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, 1.0, lambda: fired.append(sim.now))
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_start_delay(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, 1.0, lambda: fired.append(sim.now), start_delay=0.25)
        sim.run(until=2.5)
        assert fired == [0.25, 1.25, 2.25]

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 1.0, lambda: fired.append(sim.now))
        sim.schedule(1.5, task.cancel)
        sim.run(until=5.0)
        assert fired == [1.0]
        assert task.cancelled

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda: None)


class TestUnitConversions:
    def test_microseconds_round_trip(self):
        assert as_microseconds(microseconds(250.0)) == pytest.approx(250.0)

    def test_milliseconds_round_trip(self):
        assert as_milliseconds(milliseconds(3.5)) == pytest.approx(3.5)

    def test_milliseconds_magnitude(self):
        assert milliseconds(1.0) == pytest.approx(1e-3)

    def test_microseconds_magnitude(self):
        assert microseconds(1.0) == pytest.approx(1e-6)
