"""Tests for message wire sizes and the protocol registry."""

import pytest

from repro.core.common.messages import (
    CcloPutRequest,
    CcloReplicateUpdate,
    HEADER_BYTES,
    Message,
    OneRoundReadReply,
    OneRoundReadRequest,
    PendingRot,
    ReadResult,
    ReadersCheckReply,
    ReadersCheckRequest,
    RemoteHeartbeat,
    ReplicateUpdate,
    RotCoordinatorRequest,
    RotValueReply,
    StabilizationMessage,
    VectorPutRequest,
)
from repro.core.registry import (
    implemented_protocols,
    protocol_properties,
    resolve,
    surveyed_properties,
)
from repro.errors import ConfigurationError


class TestMessageSizes:
    def test_base_message_size(self):
        assert Message().size_bytes() == HEADER_BYTES

    def test_put_request_includes_value_and_vector(self):
        small = VectorPutRequest(key="k", value_size=8, client_vector=(1,),
                                 client_id="c", sequence=1)
        large = VectorPutRequest(key="k", value_size=2048, client_vector=(1, 2),
                                 client_id="c", sequence=1)
        assert large.size_bytes() > small.size_bytes()
        assert large.size_bytes() - small.size_bytes() >= 2040

    def test_rot_request_scales_with_keys(self):
        few = RotCoordinatorRequest(rot_id="r", keys=("a",), client_local_ts=0,
                                    client_gss=(0,), client_id="c")
        many = RotCoordinatorRequest(rot_id="r", keys=tuple("abcdefgh"),
                                     client_local_ts=0, client_gss=(0,),
                                     client_id="c")
        assert many.size_bytes() > few.size_bytes()

    def test_value_reply_includes_payload(self):
        results = (ReadResult(key="a", timestamp=1, origin_dc=0, value_size=100),
                   ReadResult(key="b", timestamp=2, origin_dc=0, value_size=100))
        reply = RotValueReply(rot_id="r", results=results, snapshot=(0,), gss=(0,))
        assert reply.size_bytes() >= 200

    def test_readers_check_reply_scales_with_ids(self):
        empty = ReadersCheckReply(check_id="c", old_readers=())
        loaded = ReadersCheckReply(check_id="c",
                                   old_readers=tuple((f"rot{i}", i) for i in range(100)))
        assert loaded.size_bytes() - empty.size_bytes() == 100 * 16

    def test_cclo_put_request_scales_with_dependencies(self):
        no_deps = CcloPutRequest(key="k", value_size=8, dependencies=(),
                                 dependency_partitions=(), client_id="c", sequence=1)
        deps = tuple((f"k{i}", i, 0) for i in range(20))
        with_deps = CcloPutRequest(key="k", value_size=8, dependencies=deps,
                                   dependency_partitions=(0, 1), client_id="c",
                                   sequence=1)
        assert with_deps.size_bytes() - no_deps.size_bytes() == 20 * 16

    def test_replicate_update_sizes(self):
        vector_update = ReplicateUpdate(key="k", timestamp=1, origin_dc=0,
                                        value_size=8, dependency_vector=(1, 2))
        cclo_update = CcloReplicateUpdate(key="k", timestamp=1, origin_dc=0,
                                          value_size=8,
                                          dependencies=(("a", 1, 0),),
                                          writer="c", sequence=1,
                                          old_readers=(("r", 1),))
        assert vector_update.size_bytes() > HEADER_BYTES
        assert cclo_update.size_bytes() > vector_update.size_bytes()

    def test_misc_message_sizes_positive(self):
        for message in (
                StabilizationMessage(partition_index=0, version_vector=(1, 2)),
                RemoteHeartbeat(origin_dc=0, timestamp=5),
                OneRoundReadRequest(rot_id="r", keys=("a",), client_id="c"),
                OneRoundReadReply(rot_id="r", results=()),
                ReadersCheckRequest(check_id="c", dependencies=(("a", 1, 0),),
                                    put_key="k", put_timestamp=2)):
            assert message.size_bytes() >= HEADER_BYTES


class TestPendingRot:
    def test_completion_tracking(self):
        pending = PendingRot(rot_id="r", keys=("a", "b"), started_at=0.0,
                             expected_replies=2)
        assert not pending.complete
        pending.record_reply((ReadResult("a", 1, 0, 8),))
        assert not pending.complete
        pending.record_reply((ReadResult("b", 2, 0, 8),))
        assert pending.complete
        assert set(pending.results) == {"a", "b"}


class TestRegistry:
    def test_implemented_protocols(self):
        assert set(implemented_protocols()) == {"contrarian", "cure", "cc-lo"}

    def test_resolve_returns_classes(self):
        server_cls, client_cls = resolve("contrarian")
        assert "Server" in server_cls.__name__
        assert "Client" in client_cls.__name__

    def test_resolve_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            resolve("spanner")

    def test_properties_match_table2(self):
        contrarian = protocol_properties("contrarian")
        assert contrarian.nonblocking
        assert contrarian.rot_versions == 1
        assert not contrarian.latency_optimal
        cclo = protocol_properties("cc-lo")
        assert cclo.latency_optimal
        assert cclo.rot_rounds == "1"
        assert cclo.metadata_server_server == "O(K)"
        cure = protocol_properties("cure")
        assert not cure.nonblocking
        assert cure.clock == "Physical"

    def test_unknown_properties_rejected(self):
        with pytest.raises(ConfigurationError):
            protocol_properties("occult")

    def test_surveyed_rows_cover_the_papers_table(self):
        names = {properties.name for properties in surveyed_properties()}
        assert {"COPS", "Eiger", "Orbe", "GentleRain", "Occult", "POCC",
                "ChainReaction"} <= names
