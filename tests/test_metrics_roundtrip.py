"""Round-trip tests for RunResult JSON serialisation (BENCH_*.json artifacts)."""

import json

import pytest

from repro.cluster.config import ClusterConfig
from repro.faults.library import dc_partition
from repro.harness.runner import run_experiment
from repro.metrics.collectors import (
    SCHEMA_VERSION,
    MetricsRegistry,
    PhaseSlice,
    RunResult,
)
from repro.metrics.latency import LatencySummary
from repro.sim.costs import OverheadCounters


def _synthetic_result(**overrides) -> RunResult:
    summary = LatencySummary(count=10, mean_ms=1.5, p50_ms=1.2, p95_ms=3.0,
                             p99_ms=4.5, max_ms=9.0)
    overhead = OverheadCounters(messages_sent=123, bytes_sent=456,
                                readers_checks=7, rot_ids_distinct=21)
    fields = dict(protocol="contrarian", num_dcs=2, clients=16,
                  throughput_kops=42.5, rot_latency=summary,
                  put_latency=summary, rots_completed=1000,
                  puts_completed=50, overhead=overhead,
                  cpu_utilization=0.73, label="test")
    fields.update(overrides)
    return RunResult(**fields)


class TestRunResultRoundTrip:
    def test_payload_carries_schema_version(self):
        payload = _synthetic_result().as_json_dict()
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_round_trip_preserves_payload_exactly(self):
        original = _synthetic_result().as_json_dict()
        restored = RunResult.from_json_dict(original).as_json_dict()
        assert restored == original

    def test_round_trip_survives_json_encoding(self):
        original = _synthetic_result()
        wire = json.dumps(original.as_json_dict(), sort_keys=True)
        restored = RunResult.from_json_dict(json.loads(wire))
        assert restored.throughput_kops == original.throughput_kops
        assert restored.rot_latency == original.rot_latency
        assert restored.overhead.messages_sent == original.overhead.messages_sent
        assert restored.as_row() == original.as_row()

    def test_round_trip_with_phases(self):
        summary = LatencySummary(count=5, mean_ms=0.5, p50_ms=0.4, p95_ms=0.9,
                                 p99_ms=1.0, max_ms=1.1)
        phase = PhaseSlice(name="partition", start=0.5, end=1.0,
                           rots_completed=100, puts_completed=10,
                           throughput_kops=2.2, rot_latency=summary,
                           put_latency=summary,
                           gauges={"held_messages_max": 12.0})
        original = _synthetic_result(phases=(phase,)).as_json_dict()
        restored = RunResult.from_json_dict(original)
        assert restored.phases[0] == phase
        assert restored.as_json_dict() == original

    def test_schema_version_1_accepted_without_phases(self):
        payload = _synthetic_result().as_json_dict()
        payload.pop("schema_version")
        payload.pop("phases")
        restored = RunResult.from_json_dict(payload)
        assert restored.phases == ()

    def test_unsupported_schema_version_rejected(self):
        payload = _synthetic_result().as_json_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError):
            RunResult.from_json_dict(payload)

    def test_measured_result_round_trips(self):
        config = ClusterConfig.test_scale(num_dcs=1, clients_per_dc=2,
                                          duration_seconds=0.3,
                                          warmup_seconds=0.1)
        result = run_experiment("contrarian", config).result
        payload = result.as_json_dict()
        assert RunResult.from_json_dict(payload).as_json_dict() == payload

    @pytest.mark.slow
    def test_fault_run_round_trips_with_phases(self):
        config = ClusterConfig.test_scale(num_dcs=2, clients_per_dc=2,
                                          duration_seconds=1.0,
                                          warmup_seconds=0.1)
        scenario = dc_partition(start=0.3, heal=0.6, dc=1)
        result = run_experiment("contrarian", config, scenario=scenario).result
        payload = json.loads(json.dumps(result.as_json_dict()))
        restored = RunResult.from_json_dict(payload)
        assert [phase.name for phase in restored.phases] == \
            [phase.name for phase in result.phases]
        assert restored.as_json_dict() == payload


class TestPhaseRegistry:
    def test_begin_phase_replaces_zero_width_phase(self):
        registry = MetricsRegistry(warmup_seconds=0.0)
        registry.begin_phase("baseline", 0.0)
        registry.begin_phase("override", 0.0)
        registry.begin_phase("next", 1.0)
        result = registry.finalize(protocol="p", num_dcs=1, clients=1,
                                   measurement_seconds=2.0,
                                   overhead=OverheadCounters(),
                                   cpu_utilization=0.0)
        assert [phase.name for phase in result.phases] == ["override", "next"]

    def test_records_split_by_phase_and_warmup(self):
        registry = MetricsRegistry(warmup_seconds=0.5)
        registry.begin_phase("baseline", 0.0)
        registry.record_rot(0.1, 0.2)   # warmup: dropped everywhere
        registry.record_rot(0.6, 0.7)
        registry.begin_phase("fault", 1.0)
        registry.record_rot(1.1, 1.2)
        registry.record_gauge("held", 5.0)
        registry.record_gauge("held", 3.0)
        result = registry.finalize(protocol="p", num_dcs=1, clients=1,
                                   measurement_seconds=1.5,
                                   overhead=OverheadCounters(),
                                   cpu_utilization=0.0)
        baseline, fault = result.phases
        assert baseline.rots_completed == 1
        assert fault.rots_completed == 1
        assert fault.gauges == {"held_max": 5.0, "held_mean": 4.0}
        # Phase window excludes warmup; throughput uses the effective window.
        assert baseline.start == 0.0 and baseline.end == 1.0
        assert baseline.throughput_kops == pytest.approx(1 / 0.5 / 1000.0)
        assert fault.end == 2.0
