"""Tests for Lamport, physical and hybrid logical clocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.hlc import HLCTimestamp, HybridLogicalClock
from repro.clocks.lamport import LamportClock
from repro.clocks.physical import PhysicalClock, SkewModel
from repro.errors import ClockError
from repro.sim.engine import Simulator


class TestLamportClock:
    def test_starts_at_initial_value(self):
        assert LamportClock(5).value == 5

    def test_negative_initial_rejected(self):
        with pytest.raises(ClockError):
            LamportClock(-1)

    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_update_jumps_past_observed(self):
        clock = LamportClock()
        assert clock.update(10) == 11

    def test_update_with_smaller_value_still_ticks(self):
        clock = LamportClock(20)
        assert clock.update(3) == 21

    def test_update_rejects_negative(self):
        with pytest.raises(ClockError):
            LamportClock().update(-2)

    def test_advance_to_moves_forward_only(self):
        clock = LamportClock(10)
        assert clock.advance_to(50) == 50
        assert clock.advance_to(20) == 50

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_values_never_decrease(self, observations):
        clock = LamportClock()
        previous = clock.value
        for observed in observations:
            current = clock.update(observed)
            assert current > previous
            previous = current


class TestPhysicalClock:
    def _clock(self, offset=0.0, at=0.0):
        sim = Simulator()
        sim.run(until=at)
        return sim, PhysicalClock(sim, offset_us=offset)

    def test_reads_simulated_time_in_microseconds(self):
        sim, clock = self._clock(at=0.001)
        assert clock.now_us() == 1000

    def test_offset_is_applied(self):
        _, clock = self._clock(offset=500.0, at=0.001)
        assert clock.now_us() == 1500

    def test_negative_offset_never_goes_below_zero(self):
        _, clock = self._clock(offset=-500.0, at=0.0)
        assert clock.now_us() == 0

    def test_monotonic_even_with_negative_offset(self):
        sim = Simulator()
        clock = PhysicalClock(sim, offset_us=0.0)
        first = clock.now_us()
        second = clock.now_us()
        assert second >= first

    def test_time_until_future_timestamp(self):
        _, clock = self._clock(at=0.001)
        assert clock.time_until_us(3000) == pytest.approx(0.002)

    def test_time_until_past_timestamp_is_zero(self):
        _, clock = self._clock(at=0.010)
        assert clock.time_until_us(10) == 0.0

    def test_skew_model_draws_within_bounds(self):
        model = SkewModel(max_offset_us=100.0)
        rng = Simulator(seed=5).derived_rng("skew")
        offsets = [model.draw_offset(rng) for _ in range(200)]
        assert all(-100.0 <= offset <= 100.0 for offset in offsets)
        assert any(offset != 0.0 for offset in offsets)

    def test_zero_skew_model(self):
        rng = Simulator().derived_rng("skew")
        assert SkewModel(max_offset_us=0.0).draw_offset(rng) == 0.0

    def test_negative_skew_bound_rejected(self):
        with pytest.raises(ClockError):
            SkewModel(max_offset_us=-1.0)


class TestHLCTimestamp:
    def test_pack_unpack_round_trip(self):
        ts = HLCTimestamp(physical=12345, logical=7)
        assert HLCTimestamp.unpack(ts.pack()) == ts

    def test_pack_preserves_order(self):
        earlier = HLCTimestamp(100, 5)
        later_physical = HLCTimestamp(101, 0)
        later_logical = HLCTimestamp(100, 6)
        assert earlier.pack() < later_physical.pack()
        assert earlier.pack() < later_logical.pack()

    def test_unpack_rejects_negative(self):
        with pytest.raises(ClockError):
            HLCTimestamp.unpack(-1)

    @given(st.integers(min_value=0, max_value=2**40),
           st.integers(min_value=0, max_value=2**15),
           st.integers(min_value=0, max_value=2**40),
           st.integers(min_value=0, max_value=2**15))
    @settings(max_examples=200, deadline=None)
    def test_packed_order_matches_tuple_order(self, p1, l1, p2, l2):
        a, b = HLCTimestamp(p1, l1), HLCTimestamp(p2, l2)
        assert (a.pack() < b.pack()) == ((p1, l1) < (p2, l2))


class TestHybridLogicalClock:
    def _clock(self, at=0.0, offset=0.0):
        sim = Simulator()
        sim.run(until=at)
        return sim, HybridLogicalClock(PhysicalClock(sim, offset_us=offset))

    def test_tick_tracks_physical_time(self):
        _, clock = self._clock(at=0.002)
        ts = HLCTimestamp.unpack(clock.tick())
        assert ts.physical == 2000
        assert ts.logical == 0

    def test_tick_uses_logical_component_when_time_stands_still(self):
        _, clock = self._clock(at=0.001)
        first = HLCTimestamp.unpack(clock.tick())
        second = HLCTimestamp.unpack(clock.tick())
        assert second.physical == first.physical
        assert second.logical == first.logical + 1

    def test_ticks_are_strictly_increasing(self):
        _, clock = self._clock(at=0.001)
        values = [clock.tick() for _ in range(20)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_update_adopts_remote_timestamp_ahead_of_local(self):
        _, clock = self._clock(at=0.001)
        remote = HLCTimestamp(5000, 3).pack()
        merged = HLCTimestamp.unpack(clock.update(remote))
        assert merged.physical == 5000
        assert merged.logical == 4

    def test_update_with_old_remote_keeps_local_physical(self):
        _, clock = self._clock(at=0.010)
        clock.tick()
        merged = HLCTimestamp.unpack(clock.update(HLCTimestamp(10, 0).pack()))
        assert merged.physical == 10_000

    def test_advance_to_moves_clock_forward(self):
        _, clock = self._clock(at=0.001)
        target = HLCTimestamp(9000, 2).pack()
        assert clock.advance_to(target) == target
        assert clock.tick() > target

    def test_advance_to_ignores_older_target(self):
        _, clock = self._clock(at=0.005)
        current = clock.tick()
        assert clock.advance_to(HLCTimestamp(1, 0).pack()) == current

    def test_now_does_not_record_event(self):
        _, clock = self._clock(at=0.003)
        before = clock.now()
        after = clock.now()
        assert before == after

    def test_now_reflects_physical_progress(self):
        sim, clock = self._clock(at=0.001)
        first = clock.now()
        sim.run(until=0.005)
        assert clock.now() > first

    @given(st.lists(st.integers(min_value=0, max_value=2**30), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_updates_are_monotonic(self, observations):
        _, clock = self._clock(at=0.001)
        previous = clock.tick()
        for observed in observations:
            current = clock.update(observed)
            assert current > previous or current >= observed
            previous = max(previous, current)
