"""Tests of the real-time (asyncio) backend and cross-backend equivalence.

The acceptance bar for the runtime package: ``CausalStore(backend=
"realtime")`` completes a mixed put/ROT workload for all three protocols
with zero causal violations, and the same scripted workload produces
value-equivalent histories on the simulated and real-time backends.
"""

import pytest

from repro.api import CausalStore
from repro.cluster.config import ClusterConfig
from repro.core.registry import implemented_protocols, realtime_protocols
from repro.errors import ConfigurationError
from repro.runtime import RealtimeCluster, run_realtime_experiment

PROTOCOLS = ("contrarian", "cure", "cc-lo")

#: A mixed put/ROT script (key, or tuple of keys for a ROT).  Repeated
#: overwrites make version choice observable; the trailing ROT spans keys.
SCRIPT = (
    ("put", ("alpha",)),
    ("put", ("beta",)),
    ("rot", ("alpha", "beta")),
    ("put", ("alpha",)),
    ("rot", ("alpha",)),
    ("put", ("gamma",)),
    ("rot", ("alpha", "beta", "gamma")),
    ("put", ("beta",)),
    ("rot", ("beta", "gamma")),
)


def run_script(protocol: str, backend: str):
    """Run SCRIPT and canonicalise the history.

    Timestamps differ between backends (simulated HLC versus wall-clock
    HLC), so each read value is mapped to the *script index of the PUT that
    produced it* (or ``"init"`` for never-written keys).  Two backends are
    value-equivalent when those canonical histories match.
    """
    canonical = []
    produced: dict[int, tuple[int, str]] = {}  # timestamp -> (op index, key)
    with CausalStore(protocol=protocol, backend=backend) as store:
        for index, (kind, keys) in enumerate(SCRIPT):
            if kind == "put":
                result = store.put(keys[0])
                produced[result.values[keys[0]]] = (index, keys[0])
                canonical.append(("put", keys[0]))
            else:
                result = store.rot(keys)
                reads = {}
                for key in keys:
                    value = result.values[key]
                    if value in produced and produced[value][1] == key:
                        reads[key] = produced[value][0]
                    else:
                        reads[key] = "init" if not value else "unknown"
                canonical.append(("rot", tuple(sorted(reads.items()))))
        report = store.check()
    return canonical, report


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_script_histories_are_value_equivalent(self, protocol):
        sim_history, sim_report = run_script(protocol, "sim")
        rt_history, rt_report = run_script(protocol, "realtime")
        assert sim_history == rt_history
        assert sim_report.ok
        assert rt_report.ok
        # A single session must always read its own writes, so no read may
        # have resolved to an unknown version on either backend.
        assert "unknown" not in repr(sim_history)
        assert "unknown" not in repr(rt_history)


class TestRealtimeWorkloads:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_concurrent_workload_has_zero_causal_violations(self, protocol):
        """Acceptance criterion: a mixed put/ROT workload under genuine
        asyncio concurrency, checker attached, zero violations."""
        config = ClusterConfig.test_scale(clients_per_dc=3, num_dcs=2,
                                          warmup_seconds=0.05)
        outcome = run_realtime_experiment(protocol, config,
                                          duration_seconds=0.4,
                                          check_consistency=True)
        result = outcome.result
        assert result.rots_completed > 0
        assert result.puts_completed > 0
        assert outcome.checker_report.ok
        assert result.rot_latency.mean_ms > 0.0

    def test_realtime_result_row_matches_run_result_schema(self):
        outcome = run_realtime_experiment(
            "contrarian", ClusterConfig.test_scale(warmup_seconds=0.05),
            duration_seconds=0.3, enable_checker=False)
        payload = outcome.result.as_json_dict()
        from repro.metrics.collectors import RunResult
        round_tripped = RunResult.from_json_dict(payload)
        assert round_tripped.protocol == "contrarian"
        assert round_tripped.overhead.messages_sent > 0

    def test_cclo_readers_check_runs_on_realtime_backend(self):
        config = ClusterConfig.test_scale(clients_per_dc=2, warmup_seconds=0.05)
        outcome = run_realtime_experiment("cc-lo", config,
                                          duration_seconds=0.4,
                                          check_consistency=True)
        assert outcome.result.overhead.readers_checks > 0


class TestRealtimeLifecycle:
    def test_close_leaves_no_pending_tasks(self, caplog):
        """Regression: ``close()`` must cancel *and await* every node task.

        Relying on garbage collection to reap still-pending tasks makes
        asyncio log ``Task was destroyed but it is pending!`` through the
        ``asyncio`` logger when the task objects are finalised.
        """
        import gc
        import logging

        with caplog.at_level(logging.ERROR, logger="asyncio"):
            store = CausalStore(protocol="contrarian", backend="realtime",
                                num_dcs=2)
            store.put("k")
            store.rot(["k"])
            store.close()
            del store
            gc.collect()
        destroyed = [record for record in caplog.records
                     if "Task was destroyed" in record.getMessage()]
        assert destroyed == []

    def test_stopped_cluster_reports_no_failure(self):
        """The bounded-timeout stop path must not invent failures."""
        store = CausalStore(protocol="cure", backend="realtime")
        store.put("k")
        cluster = store.cluster
        store.close()
        assert cluster.first_failure() is None

    def test_close_is_idempotent_and_blocks_further_use(self):
        store = CausalStore(protocol="contrarian", backend="realtime")
        store.put("k")
        store.close()
        store.close()  # idempotent
        with pytest.raises(ConfigurationError):
            store.put("k")

    def test_sim_backend_close_is_idempotent(self):
        store = CausalStore(protocol="contrarian")
        store.put("k")
        store.close()
        store.close()
        with pytest.raises(ConfigurationError):
            store.get("k")

    def test_context_manager_closes(self):
        with CausalStore(protocol="cc-lo", backend="realtime") as store:
            store.put("k")
        with pytest.raises(ConfigurationError):
            store.put("k")

    def test_unknown_backend_rejected_with_known_names(self):
        with pytest.raises(ConfigurationError, match="realtime"):
            CausalStore(protocol="contrarian", backend="quantum")

    def test_multi_dc_replication_becomes_visible(self):
        with CausalStore(protocol="contrarian", backend="realtime",
                         num_dcs=2) as store:
            written = store.put("shared", dc=0).values["shared"]
            seen = None
            for _ in range(40):  # bounded wait for replication+stabilization
                store.advance(0.05)
                seen = store.get("shared", dc=1)
                if seen == written:
                    break
            assert seen == written


class TestRegistryExtensibility:
    def test_all_builtins_are_realtime_capable(self):
        assert set(realtime_protocols()) == set(implemented_protocols())

    def test_register_protocol_rejects_duplicates(self):
        from repro.core.registry import register_protocol
        with pytest.raises(ConfigurationError, match="already registered"):
            register_protocol("contrarian", object, object)

    def test_registered_protocol_resolves_and_unregisters(self):
        from repro.core.registry import (
            register_protocol,
            resolve,
            resolve_spec,
            unregister_protocol,
        )
        register_protocol("toy", object, object)
        try:
            assert resolve("toy") == (object, object)
            assert resolve_spec("toy").kernel is None
            with pytest.raises(ConfigurationError, match="toy"):
                RealtimeCluster("toy", ClusterConfig.test_scale())
        finally:
            unregister_protocol("toy")
        with pytest.raises(ConfigurationError, match="known"):
            resolve("toy")
