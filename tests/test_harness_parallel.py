"""Tests for the process-pool experiment runner (``repro.harness.parallel``).

The contract under test: for identical seeds the parallel sweep returns rows
bit-identical to the serial sweep, results are deterministic regardless of
the worker count or scheduling, and a failure inside a worker surfaces in
the parent as a :class:`ParallelExecutionError` carrying the traceback.
"""

import os

import pytest

from repro.cluster.config import ClusterConfig
from repro.harness.parallel import (
    ParallelExecutionError,
    ParallelRunner,
    RunSpec,
    WORKERS_ENV_VAR,
    derive_seed,
    grid_specs,
    parallel_load_sweep,
    resolve_worker_count,
    run_grid,
    sweep_specs,
)
from repro.harness.runner import load_sweep
from repro.workload.parameters import DEFAULT_WORKLOAD


def tiny_config(**overrides):
    defaults = dict(clients_per_dc=2, duration_seconds=0.3, warmup_seconds=0.05,
                    keys_per_partition=32)
    defaults.update(overrides)
    return ClusterConfig.test_scale(**defaults)


class TestRunSpec:
    def test_spec_is_picklable(self):
        import pickle

        spec = RunSpec(protocol="contrarian", config=tiny_config(),
                       workload=DEFAULT_WORKLOAD, label="x")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_describe_mentions_the_point(self):
        spec = RunSpec(protocol="cure", config=tiny_config(clients_per_dc=7))
        text = spec.describe()
        assert "cure" in text
        assert "clients_per_dc=7" in text

    def test_sweep_specs_match_serial_points(self):
        config = tiny_config()
        specs = sweep_specs("contrarian", (2, 4, 6), config)
        assert [spec.config.clients_per_dc for spec in specs] == [2, 4, 6]
        # Everything except the client count is untouched (same seed!).
        for spec in specs:
            assert spec.config.seed == config.seed
            assert spec.config.num_partitions == config.num_partitions


class TestSeedDerivation:
    def test_deterministic_and_sensitive_to_components(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
        assert derive_seed(1, "a", 2) != derive_seed(2, "a", 2)

    def test_fits_in_63_bits_and_non_negative(self):
        for seed in range(20):
            derived = derive_seed(seed, "protocol", seed * 3)
            assert 0 <= derived < 2 ** 63

    def test_grid_specs_derive_distinct_seeds_per_cell(self):
        specs = grid_specs(["contrarian"], (2, 4), seeds=(0, 1),
                           config=tiny_config())
        seeds = {spec.config.seed for spec in specs}
        assert len(seeds) == len(specs) == 4

    def test_grid_specs_seed_none_keeps_config_seed(self):
        config = tiny_config()
        specs = grid_specs(["contrarian", "cure"], (2,), config=config)
        assert all(spec.config.seed == config.seed for spec in specs)


class TestWorkerResolution:
    def test_explicit_wins(self):
        assert resolve_worker_count(3) == 3
        assert resolve_worker_count(0) == 1

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_worker_count() == 5

    def test_environment_must_be_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(Exception):
            resolve_worker_count()

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_worker_count() == max(1, os.cpu_count() or 1)


class TestParallelMatchesSerial:
    def test_bit_identical_to_serial_sweep(self):
        config = tiny_config()
        serial = load_sweep("contrarian", (2, 4), config)
        parallel = parallel_load_sweep("contrarian", (2, 4), config,
                                       max_workers=4)
        # RunResult is a (frozen) dataclass tree, so == is deep equality over
        # every field: throughput, every latency percentile, every counter.
        assert parallel == serial

    def test_deterministic_across_worker_counts(self):
        config = tiny_config()
        one = parallel_load_sweep("cure", (2, 3), config, max_workers=1)
        two = parallel_load_sweep("cure", (2, 3), config, max_workers=2)
        four = parallel_load_sweep("cure", (2, 3), config, max_workers=4)
        assert one == two == four

    def test_results_arrive_in_spec_order(self):
        results = parallel_load_sweep("contrarian", (4, 2, 3), tiny_config(),
                                      max_workers=4)
        assert [result.clients for result in results] == [4, 2, 3]

    def test_run_grid_groups_by_protocol(self):
        grouped = run_grid(["contrarian", "cure"], (2, 3),
                           config=tiny_config(), max_workers=2)
        assert sorted(grouped) == ["contrarian", "cure"]
        for results in grouped.values():
            assert [result.clients for result in results] == [2, 3]

    def test_empty_spec_list(self):
        assert ParallelRunner(max_workers=4).run([]) == []


class TestSpeedup:
    @pytest.mark.slow
    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="wall-clock speedup needs >= 4 cores")
    def test_parallel_grid_beats_serial_wall_clock(self):
        """A 3-point x 2-protocol grid with 4 workers must be >= 2x faster."""
        import time

        config = tiny_config(clients_per_dc=4)
        points = (2, 4, 8)
        protocols = ("contrarian", "cure")

        started = time.perf_counter()
        serial = {protocol: load_sweep(protocol, points, config)
                  for protocol in protocols}
        serial_seconds = time.perf_counter() - started

        started = time.perf_counter()
        parallel = run_grid(protocols, points, config=config, max_workers=4)
        parallel_seconds = time.perf_counter() - started

        assert parallel == serial
        speedup = serial_seconds / max(parallel_seconds, 1e-9)
        assert speedup >= 2.0, (
            f"expected >=2x speedup with 4 workers on a "
            f"{len(points)}x{len(protocols)} grid, measured {speedup:.2f}x "
            f"({serial_seconds:.2f}s serial vs {parallel_seconds:.2f}s parallel)")


class TestErrorPropagation:
    def test_worker_failure_raises_with_traceback(self):
        bad = RunSpec(protocol="no-such-protocol", config=tiny_config())
        with pytest.raises(ParallelExecutionError) as excinfo:
            ParallelRunner(max_workers=2).run([bad, bad])
        assert "no-such-protocol" in str(excinfo.value)
        assert "Traceback" in excinfo.value.worker_traceback
        assert excinfo.value.spec == bad

    def test_serial_fallback_uses_same_error_contract(self):
        bad = RunSpec(protocol="no-such-protocol", config=tiny_config())
        with pytest.raises(ParallelExecutionError) as excinfo:
            ParallelRunner(max_workers=1).run([bad])
        assert "Traceback" in excinfo.value.worker_traceback

    def test_good_specs_before_failure_do_not_mask_it(self):
        good = RunSpec(protocol="contrarian", config=tiny_config())
        bad = RunSpec(protocol="no-such-protocol", config=tiny_config())
        with pytest.raises(ParallelExecutionError):
            ParallelRunner(max_workers=2).run([good, bad])


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"boom {value}")


class TestTaskPool:
    """The generic task pool behind streaming-checker window parallelism."""

    def test_serial_submit_runs_inline(self):
        from repro.harness.parallel import TaskPool
        with TaskPool(max_workers=1) as pool:
            handles = [pool.submit(_square, n) for n in range(5)]
            assert [handle.result() for handle in handles] == \
                [0, 1, 4, 9, 16]

    def test_pooled_submit_returns_results_per_handle(self):
        from repro.harness.parallel import TaskPool
        with TaskPool(max_workers=2) as pool:
            handles = [pool.submit(_square, n) for n in range(8)]
            assert [handle.result() for handle in handles] == \
                [n * n for n in range(8)]

    def test_worker_exception_carries_the_traceback(self):
        from repro.harness.parallel import PoolTaskError, TaskPool
        with TaskPool(max_workers=2) as pool:
            handle = pool.submit(_boom, 7)
            with pytest.raises(PoolTaskError) as excinfo:
                handle.result()
        assert "boom 7" in str(excinfo.value)
        assert "Traceback" in excinfo.value.worker_traceback

    def test_serial_exception_uses_same_contract(self):
        from repro.harness.parallel import PoolTaskError, TaskPool
        with TaskPool(max_workers=1) as pool:
            handle = pool.submit(_boom, 3)
            with pytest.raises(PoolTaskError):
                handle.result()

    def test_close_is_idempotent(self):
        from repro.harness.parallel import TaskPool
        pool = TaskPool(max_workers=2)
        pool.submit(_square, 2).result()
        pool.close()
        pool.close()
