"""Tests for vectors, the GSS stabilization state and dependency contexts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.causal.dependencies import ClientDependencyContext, Dependency
from repro.causal.stabilization import GlobalStableSnapshot
from repro.causal.vectors import (
    entrywise_max,
    entrywise_min,
    entrywise_min_all,
    vector_leq,
    with_entry,
    zero_vector,
)
from repro.errors import ProtocolError

vectors = st.lists(st.integers(min_value=0, max_value=1_000_000),
                   min_size=1, max_size=5)


class TestVectorHelpers:
    def test_zero_vector(self):
        assert zero_vector(3) == (0, 0, 0)

    def test_zero_vector_requires_positive_length(self):
        with pytest.raises(ProtocolError):
            zero_vector(0)

    def test_entrywise_max(self):
        assert entrywise_max((1, 5), (3, 2)) == (3, 5)

    def test_entrywise_min(self):
        assert entrywise_min((1, 5), (3, 2)) == (1, 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            entrywise_max((1,), (1, 2))

    def test_min_all(self):
        assert entrywise_min_all([(3, 4), (1, 9), (2, 2)]) == (1, 2)

    def test_min_all_empty_rejected(self):
        with pytest.raises(ProtocolError):
            entrywise_min_all([])

    def test_vector_leq(self):
        assert vector_leq((1, 2), (1, 3))
        assert not vector_leq((2, 2), (1, 3))

    def test_with_entry(self):
        assert with_entry((1, 2, 3), 1, 9) == (1, 9, 3)

    def test_with_entry_out_of_range(self):
        with pytest.raises(ProtocolError):
            with_entry((1, 2), 5, 0)

    @given(vectors, vectors)
    @settings(max_examples=100, deadline=None)
    def test_max_dominates_both(self, a, b):
        size = min(len(a), len(b))
        a, b = tuple(a[:size]), tuple(b[:size])
        merged = entrywise_max(a, b)
        assert vector_leq(a, merged)
        assert vector_leq(b, merged)

    @given(vectors, vectors)
    @settings(max_examples=100, deadline=None)
    def test_min_is_dominated_by_both(self, a, b):
        size = min(len(a), len(b))
        a, b = tuple(a[:size]), tuple(b[:size])
        merged = entrywise_min(a, b)
        assert vector_leq(merged, a)
        assert vector_leq(merged, b)

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_leq_is_reflexive(self, a):
        assert vector_leq(tuple(a), tuple(a))


class TestGlobalStableSnapshot:
    def test_initial_gss_is_zero(self):
        gss = GlobalStableSnapshot(num_dcs=2, num_partitions=3, partition_index=0)
        assert gss.gss == (0, 0)

    def test_gss_is_minimum_of_known_vvs(self):
        gss = GlobalStableSnapshot(num_dcs=2, num_partitions=2, partition_index=0)
        gss.update_local_vv((10, 20))
        gss.observe_remote_vv(1, (5, 30))
        assert gss.gss == (5, 20)

    def test_vv_entries_never_move_backwards(self):
        gss = GlobalStableSnapshot(num_dcs=1, num_partitions=2, partition_index=0)
        gss.update_local_vv((10,))
        gss.observe_remote_vv(1, (8,))
        gss.observe_remote_vv(1, (4,))  # reordered, older message
        assert gss.gss == (8,)

    def test_merge_observed_gss_moves_forward_only(self):
        gss = GlobalStableSnapshot(num_dcs=2, num_partitions=1, partition_index=0)
        gss.update_local_vv((5, 5))
        assert gss.merge_observed_gss((3, 9)) == (5, 9)

    def test_wrong_vector_length_rejected(self):
        gss = GlobalStableSnapshot(num_dcs=2, num_partitions=1, partition_index=0)
        with pytest.raises(ProtocolError):
            gss.update_local_vv((1,))

    def test_partition_index_validated(self):
        with pytest.raises(ProtocolError):
            GlobalStableSnapshot(num_dcs=1, num_partitions=2, partition_index=5)

    def test_gss_never_exceeds_any_known_vv(self):
        gss = GlobalStableSnapshot(num_dcs=2, num_partitions=3, partition_index=0)
        gss.update_local_vv((100, 50))
        gss.observe_remote_vv(1, (60, 80))
        gss.observe_remote_vv(2, (90, 10))
        assert gss.gss == (60, 10)


class TestClientDependencyContext:
    def test_observe_read_records_dependency(self):
        context = ClientDependencyContext()
        context.observe_read("x", 5, partition=1, origin_dc=0)
        assert context.dependencies() == (Dependency("x", 5, 1, 0),)

    def test_newer_read_replaces_older(self):
        context = ClientDependencyContext()
        context.observe_read("x", 5, 1)
        context.observe_read("x", 9, 1)
        context.observe_read("x", 3, 1)
        assert context.dependencies()[0].timestamp == 9

    def test_write_subsumes_previous_context(self):
        context = ClientDependencyContext()
        context.observe_read("x", 5, 1)
        context.observe_read("y", 7, 2)
        context.observe_write("z", 11, 3)
        assert len(context) == 1
        assert context.dependencies()[0].key == "z"

    def test_dependency_partitions_are_distinct_and_sorted(self):
        context = ClientDependencyContext()
        context.observe_read("a", 1, 4)
        context.observe_read("b", 2, 2)
        context.observe_read("c", 3, 4)
        assert context.dependency_partitions() == (2, 4)

    def test_dependency_encodings(self):
        dep = Dependency("x", 5, 1, origin_dc=1)
        assert dep.as_pair() == ("x", 5)
        assert dep.as_triple() == ("x", 5, 1)

    def test_dependencies_sorted_deterministically(self):
        context = ClientDependencyContext()
        context.observe_read("b", 2, 0)
        context.observe_read("a", 1, 0)
        assert [dep.key for dep in context.dependencies()] == ["a", "b"]
