"""Tests for the fault-scenario DSL, the canned library and the controller."""

import pickle

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.topology import ActiveRotRegistry
from repro.errors import ConfigurationError
from repro.faults import SCENARIOS, FaultEvent, Scenario, get_scenario
from repro.faults.controller import FaultController
from repro.faults.library import dc_partition, load_spike
from repro.harness.builder import build_cluster
from repro.workload.parameters import DEFAULT_WORKLOAD


class TestScenarioBuilder:
    def test_class_level_at_starts_empty_scenario(self):
        scenario = Scenario.at(1.0).partition_dc(0)
        assert len(scenario.events) == 1
        assert scenario.events[0].action == "partition_dc"
        assert scenario.events[0].at == 1.0

    def test_chaining_appends_events(self):
        scenario = (Scenario.at(1.0).partition_dc(1)
                            .at(2.0).heal()
                            .at(3.0).slow_dc(0, 2.0))
        assert [event.action for event in scenario.events] == \
            ["partition_dc", "heal", "slow_dc"]

    def test_events_sorted_by_time(self):
        scenario = Scenario.at(5.0).heal().at(1.0).partition_dc(0)
        assert [event.at for event in scenario.events] == [1.0, 5.0]
        assert scenario.duration == 5.0

    def test_scenarios_are_immutable_values(self):
        base = Scenario.at(1.0).partition_dc(0)
        extended = base.at(2.0).heal()
        assert len(base.events) == 1
        assert len(extended.events) == 2
        assert base == Scenario.at(1.0).partition_dc(0)

    def test_default_phase_names(self):
        scenario = Scenario.at(1.0).partition_dc(1).at(2.0).heal()
        assert scenario.phases() == [(1.0, "partition"), (2.0, "healed")]

    def test_phase_override_and_suppression(self):
        scenario = (Scenario.at(1.0).partition_dc(1, phase="isolated")
                            .at(1.0).slow_dc(0, 2.0, phase=""))
        assert scenario.phases() == [(1.0, "isolated")]

    def test_mark_phase_without_fault(self):
        scenario = Scenario.at(0.5).mark_phase("steady")
        assert scenario.phases() == [(0.5, "steady")]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.at(-1.0).heal()

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(at=0.0, action="meteor-strike")

    def test_load_factor_range_validated(self):
        with pytest.raises(ConfigurationError):
            Scenario.at(0.0).load_factor(1.5)

    def test_workload_shift_needs_changes(self):
        with pytest.raises(ConfigurationError):
            Scenario.at(0.0).workload()

    def test_scenario_is_picklable(self):
        scenario = (Scenario.at(0.5).degrade_link(0, 1, latency_factor=3.0,
                                                  drop_probability=0.1)
                            .at(1.0).heal().named("wan"))
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.name == "wan"

    def test_describe_lists_events(self):
        scenario = dc_partition(start=1.0, heal=2.0, dc=1)
        text = scenario.describe()
        assert "dc1-partition" in text
        assert "partition_dc" in text and "heal" in text


class TestLibrary:
    def test_all_canned_scenarios_build(self):
        for name in SCENARIOS:
            scenario = get_scenario(name)
            assert not scenario.is_empty
            assert scenario.name

    def test_get_scenario_none_is_empty(self):
        assert get_scenario("none").is_empty
        assert get_scenario("").is_empty

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("does-not-exist")

    def test_get_scenario_forwards_overrides(self):
        scenario = get_scenario("dc-partition", start=2.0, heal=4.0)
        assert [event.at for event in scenario.events] == [2.0, 4.0]

    def test_dc_partition_validates_order(self):
        with pytest.raises(ConfigurationError):
            dc_partition(start=2.0, heal=1.0)

    def test_load_spike_phases(self):
        scenario = load_spike(spike=1.0, relax=2.0)
        assert (1.0, "spike") in scenario.phases()
        assert (2.0, "relaxed") in scenario.phases()


class TestFaultController:
    def _cluster(self, **overrides):
        config = ClusterConfig.test_scale(num_dcs=2, clients_per_dc=2,
                                          **overrides)
        return build_cluster("contrarian", config, DEFAULT_WORKLOAD)

    def test_validates_dc_indices(self):
        cluster = self._cluster()
        scenario = Scenario.at(0.1).partition_dc(5)
        with pytest.raises(ConfigurationError):
            FaultController(cluster.topology, cluster.metrics, scenario)

    def test_validates_partition_indices(self):
        cluster = self._cluster()
        scenario = Scenario.at(0.1).pause_server(0, 99)
        with pytest.raises(ConfigurationError):
            FaultController(cluster.topology, cluster.metrics, scenario)

    def test_install_twice_rejected(self):
        cluster = self._cluster()
        scenario = Scenario.at(0.1).slow_dc(0, 2.0)
        controller = FaultController(cluster.topology, cluster.metrics, scenario)
        controller.install()
        with pytest.raises(ConfigurationError):
            controller.install()

    def test_events_applied_at_scheduled_times(self):
        cluster = self._cluster()
        scenario = (Scenario.at(0.05).slow_dc(0, 4.0)
                            .at(0.10).heal())
        controller = FaultController(cluster.topology, cluster.metrics, scenario)
        controller.install()
        server = cluster.topology.server(0, 0)
        cluster.sim.run(until=0.06)
        assert server._service_factor == 4.0
        cluster.sim.run(until=0.11)
        assert server._service_factor == 1.0
        assert [event.action for event in controller.applied_events] == \
            ["slow_dc", "heal"]
        controller.shutdown()

    def test_install_enables_rot_tracking(self):
        cluster = self._cluster()
        scenario = Scenario.at(0.1).partition_dc(1)
        controller = FaultController(cluster.topology, cluster.metrics, scenario)
        assert cluster.topology.rot_registry is None
        controller.install()
        assert cluster.topology.rot_registry is not None
        controller.shutdown()


class TestActiveRotRegistry:
    def test_snapshot_floor_takes_entrywise_min(self):
        registry = ActiveRotRegistry(num_dcs=1)
        registry.register(0, "r1", (5, 9))
        registry.register(0, "r2", (7, 3))
        registry.register(0, "r3")  # no snapshot yet
        assert registry.snapshot_floor(0, (10, 10)) == (5, 3)
        registry.deregister(0, "r1")
        assert registry.snapshot_floor(0, (10, 10)) == (7, 3)

    def test_attach_snapshot_only_for_registered(self):
        registry = ActiveRotRegistry(num_dcs=1)
        registry.attach_snapshot(0, "ghost", (1, 1))
        assert registry.snapshot_floor(0, (9, 9)) == (9, 9)
        registry.register(0, "r1")
        registry.attach_snapshot(0, "r1", (2, 2))
        assert registry.snapshot_floor(0, (9, 9)) == (2, 2)

    def test_any_active(self):
        registry = ActiveRotRegistry(num_dcs=2)
        registry.register(1, "r1")
        assert registry.any_active(1, ["r0", "r1"])
        assert not registry.any_active(0, ["r1"])
        assert registry.active_count(1) == 1


class TestTopologyHelpers:
    def test_cross_dc_links(self):
        config = ClusterConfig.test_scale(num_dcs=3, clients_per_dc=1)
        cluster = build_cluster("contrarian", config, DEFAULT_WORKLOAD)
        links = cluster.topology.cross_dc_links(1)
        assert set(links) == {(1, 0), (0, 1), (1, 2), (2, 1)}
