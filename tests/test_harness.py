"""Tests for the experiment harness: builder, sweeps, reports, figures, tables."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.harness.builder import build_cluster
from repro.harness.figures import (
    FigureResult,
    figure6_readers_check_overhead,
    single_point,
)
from repro.harness.report import (
    crossover_load,
    format_series,
    format_table,
    latency_at_lowest_load,
    peak_throughput,
)
from repro.harness.runner import load_sweep, run_experiment
from repro.harness.tables import table1_workloads, table2_characterization
from repro.replication.accounting import summarize_replication
from repro.workload.parameters import DEFAULT_WORKLOAD


def tiny_config(**overrides):
    defaults = dict(clients_per_dc=3, duration_seconds=0.3, warmup_seconds=0.05,
                    keys_per_partition=32)
    defaults.update(overrides)
    return ClusterConfig.test_scale(**defaults)


class TestBuilder:
    def test_builds_requested_topology(self):
        cluster = build_cluster("contrarian", tiny_config(num_dcs=2),
                                DEFAULT_WORKLOAD)
        assert len(list(cluster.topology.all_servers())) == 8
        assert len(cluster.topology.clients) == 6

    def test_keyspace_is_preloaded_everywhere(self):
        config = tiny_config()
        cluster = build_cluster("cc-lo", config, DEFAULT_WORKLOAD)
        for server in cluster.topology.all_servers():
            assert len(server.store) == config.keys_per_partition

    def test_checker_only_created_on_request(self):
        assert build_cluster("cure", tiny_config(), DEFAULT_WORKLOAD).checker is None
        assert build_cluster("cure", tiny_config(), DEFAULT_WORKLOAD,
                             enable_checker=True).checker is not None

    def test_stop_cancels_background_tasks(self):
        cluster = build_cluster("contrarian", tiny_config(), DEFAULT_WORKLOAD)
        cluster.start()
        cluster.sim.run(until=0.1)
        cluster.stop()
        # After stop, the only remaining events drain quickly: the simulation
        # must terminate on its own rather than being cut off at `until`.
        cluster.sim.run(until=10.0)
        assert cluster.sim.now < 10.0 or cluster.sim.pending_events == 0


class TestRunnerAndSweep:
    def test_run_experiment_uses_defaults(self):
        outcome = run_experiment("contrarian", tiny_config())
        assert outcome.result.protocol == "contrarian"
        assert outcome.checker_report is None

    def test_load_sweep_returns_one_result_per_point(self):
        results = load_sweep("contrarian", (2, 4), tiny_config())
        assert [result.clients for result in results] == [2, 4]

    def test_single_point_helper_applies_overrides(self):
        result = single_point("contrarian", clients=2, config=tiny_config(),
                              rot_rounds=2.0)
        assert result.clients == 2


class TestReportHelpers:
    def _fake_results(self, protocol, latencies, throughputs):
        results = []
        for clients, (latency, throughput) in enumerate(zip(latencies, throughputs), 1):
            outcome = run_experiment(protocol, tiny_config(clients_per_dc=2))
            results.append(outcome.result)
        return results

    def test_format_table_alignment(self):
        text = format_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_series_contains_all_systems(self):
        results = load_sweep("contrarian", (2,), tiny_config())
        text = format_series({"contrarian": results}, include_p99=True)
        assert "contrarian" in text
        assert "ROT p99" in text

    def test_peak_and_lowest_load_helpers(self):
        results = load_sweep("contrarian", (2, 5), tiny_config())
        assert peak_throughput(results) == max(r.throughput_kops for r in results)
        assert latency_at_lowest_load(results) == results[0].rot_mean_ms
        assert peak_throughput([]) == 0.0
        assert latency_at_lowest_load([]) == 0.0

    def test_crossover_load(self):
        reference = load_sweep("cure", (2, 4), tiny_config())
        challenger = load_sweep("contrarian", (2, 4), tiny_config())
        crossover = crossover_load(reference, challenger)
        assert crossover is None or crossover > 0.0


class TestFiguresAndTables:
    def test_figure_result_to_text(self):
        result = FigureResult(name="Figure X", caption="test",
                              series={"contrarian": load_sweep(
                                  "contrarian", (2,), tiny_config())},
                              extra_rows=[{"clients": 2, "ids": 1.0}])
        text = result.to_text()
        assert "Figure X" in text
        assert "clients" in text

    def test_figure6_reports_readers_check_growth(self):
        # max_workers=1 keeps this unit test in-process; the pool path is
        # covered by tests/test_harness_parallel.py.
        figure = figure6_readers_check_overhead(client_counts=(2, 4),
                                                config=tiny_config(),
                                                max_workers=1)
        assert len(figure.extra_rows) == 2
        assert figure.extra_rows[0]["clients"] < figure.extra_rows[1]["clients"]
        assert all(row["readers_checks"] > 0 for row in figure.extra_rows)

    def test_table1_lists_all_parameters(self):
        text = table1_workloads()
        assert "Write/read ratio" in text
        assert "0.05*" in text
        assert "zipfian" in text

    def test_table2_contains_every_system(self):
        text = table2_characterization()
        for name in ("COPS", "Eiger", "Cure", "Contrarian", "COPS-SNOW"):
            assert name in text

    def test_table2_with_measured_rows(self):
        outcome = run_experiment("contrarian", tiny_config())
        text = table2_characterization({"contrarian": outcome.result})
        assert "Measured overhead" in text


class TestReplicationAccounting:
    @pytest.mark.slow
    def test_summary_aggregates_counters(self):
        outcome = run_experiment("cc-lo", tiny_config(num_dcs=2, clients_per_dc=3))
        servers = outcome.cluster.topology.all_servers()
        summary = summarize_replication(server.counters for server in servers)
        assert summary.replication_messages > 0
        assert summary.rot_ids_per_check >= 0.0
        assert summary.dependencies_per_update >= 0.0

    def test_empty_summary(self):
        summary = summarize_replication([])
        assert summary.replication_messages == 0
        assert summary.dependencies_per_update == 0.0
        assert summary.rot_ids_per_check == 0.0
