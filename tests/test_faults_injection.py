"""Tests for the fault-injection hooks and end-to-end scenario runs."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.faults import Scenario
from repro.faults.library import dc_partition
from repro.harness.parallel import ParallelRunner, RunSpec, execute_spec
from repro.harness.runner import run_experiment
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, LinkFault, Network
from repro.sim.node import Node
from repro.workload.parameters import DEFAULT_WORKLOAD


class RecordingNode(Node):
    def __init__(self, sim, node_id, dc_id=0, service=0.0):
        super().__init__(sim, node_id, dc_id)
        self.received = []
        self._service = service

    def service_time(self, message):
        return self._service

    def handle_message(self, sender, message):
        self.received.append((self.sim.now, message))


def _pair(jitter=0.0):
    sim = Simulator(seed=3)
    network = Network(sim, LatencyModel(jitter_us=jitter))
    a = RecordingNode(sim, "a", dc_id=0)
    b = RecordingNode(sim, "b", dc_id=1)
    return sim, network, a, b


class TestLinkFaults:
    def test_link_fault_validation(self):
        with pytest.raises(ConfigurationError):
            LinkFault(latency_factor=0.0)
        with pytest.raises(ConfigurationError):
            LinkFault(drop_probability=1.0)

    def test_degraded_link_adds_latency(self):
        sim, network, a, b = _pair()
        network.send(a, b, "healthy")
        sim.run()
        healthy_time = b.received[0][0]

        sim2, network2, a2, b2 = _pair()
        network2.set_link_fault(0, 1, latency_factor=10.0)
        network2.send(a2, b2, "degraded")
        sim2.run()
        assert b2.received[0][0] > healthy_time * 5

    def test_drop_redelivers_after_timeout(self):
        sim, network, a, b = _pair()
        network.set_link_fault(0, 1, drop_probability=0.999,
                               redelivery_timeout_us=10_000.0)
        network.send(a, b, "retransmitted")
        sim.run()
        # The message is never lost, only delayed by redelivery timeouts.
        assert len(b.received) == 1
        assert b.received[0][0] > 0.005
        assert network.messages_dropped > 0

    def test_blocked_link_holds_and_heals_in_fifo_order(self):
        sim, network, a, b = _pair()
        network.block_link(0, 1)
        for index in range(5):
            network.send(a, b, f"m{index}")
        sim.run()
        assert b.received == []
        assert network.held_message_count == 5
        network.unblock_link(0, 1)
        sim.run()
        assert [message for _, message in b.received] == \
            [f"m{index}" for index in range(5)]
        assert network.held_message_count == 0

    def test_blocked_link_is_directional(self):
        sim, network, a, b = _pair()
        network.block_link(0, 1)
        network.send(b, a, "reverse")
        sim.run()
        assert len(a.received) == 1

    def test_degrading_a_blocked_link_keeps_it_blocked(self):
        # Composed scenarios may degrade a link that is already severed; the
        # held messages must stay held (and FIFO) until an explicit heal.
        sim, network, a, b = _pair()
        network.block_link(0, 1)
        network.send(a, b, "held-early")
        network.set_link_fault(0, 1, latency_factor=4.0)
        network.send(a, b, "held-late")
        sim.run()
        assert b.received == []
        assert network.held_message_count == 2
        network.unblock_link(0, 1)
        sim.run()
        assert [message for _, message in b.received] == \
            ["held-early", "held-late"]

    def test_clear_link_faults_flushes_everything(self):
        sim, network, a, b = _pair()
        network.block_link(0, 1)
        network.block_link(1, 0)
        network.send(a, b, "x")
        network.send(b, a, "y")
        network.clear_link_faults()
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1


class TestNodeFaults:
    def test_service_factor_inflates_service_time(self):
        sim = Simulator()
        node = RecordingNode(sim, "n", service=0.010)
        node.set_service_factor(3.0)
        node.enqueue_message(node, "slow")
        sim.run()
        assert node.received[0][0] == pytest.approx(0.030)
        assert node.stats.busy_time == pytest.approx(0.030)

    def test_service_factor_validation(self):
        node = RecordingNode(Simulator(), "n")
        with pytest.raises(ConfigurationError):
            node.set_service_factor(0.0)

    def test_pause_freezes_queue_until_resume(self):
        sim = Simulator()
        node = RecordingNode(sim, "n", service=0.001)
        node.pause()
        node.enqueue_message(node, "queued")
        sim.run(until=1.0)
        assert node.received == []
        assert node.paused and node.queue_length == 1
        node.resume()
        sim.run()
        assert len(node.received) == 1

    def test_pause_lets_in_service_message_finish(self):
        sim = Simulator()
        node = RecordingNode(sim, "n", service=0.010)
        node.enqueue_message(node, "first")
        node.enqueue_message(node, "second")
        sim.run(until=0.005)
        node.pause()
        sim.run(until=1.0)
        assert [message for _, message in node.received] == ["first"]
        node.resume()
        sim.run()
        assert len(node.received) == 2


class TestWorkloadShifts:
    def _generator(self):
        from repro.cluster.partitioning import HashPartitioner
        from repro.workload.generator import WorkloadGenerator
        import random
        return WorkloadGenerator(DEFAULT_WORKLOAD, HashPartitioner(4), 64,
                                 random.Random(1))

    def test_set_parameters_changes_put_rate(self):
        generator = self._generator()
        generator.set_parameters(DEFAULT_WORKLOAD.with_changes(write_ratio=1.0))
        operations = [generator.next_operation() for _ in range(50)]
        assert all(operation.is_put for operation in operations)

    def test_set_parameters_validates_rot_size(self):
        from repro.errors import WorkloadError
        generator = self._generator()
        with pytest.raises(WorkloadError):
            generator.set_parameters(DEFAULT_WORKLOAD.with_changes(rot_size=9))

    def test_rotate_keys_moves_hot_set(self):
        generator = self._generator()
        hot_before = {generator._key_on_partition(0) for _ in range(200)}
        generator.rotate_keys(17)
        hot_after = {generator._key_on_partition(0) for _ in range(200)}
        # The zipfian ranks are unchanged but map to shifted key indices.
        assert hot_before != hot_after

    def test_client_suspend_resume(self):
        config = ClusterConfig.test_scale(num_dcs=1, clients_per_dc=2,
                                          duration_seconds=0.3,
                                          warmup_seconds=0.1)
        scenario = (Scenario.at(0.0).load_factor(0.5, phase="")
                            .at(0.2).load_factor(1.0, phase="spike"))
        outcome = run_experiment("contrarian", config, scenario=scenario)
        suspended_ops = [client.generator.generated_puts
                         + client.generator.generated_rots
                         for client in outcome.cluster.topology.clients]
        # The second client only started issuing at the spike.
        assert suspended_ops[1] < suspended_ops[0]
        assert suspended_ops[1] > 0


class TestScenarioRuns:
    CONFIG = dict(num_dcs=2, clients_per_dc=3, duration_seconds=1.2,
                  warmup_seconds=0.1)
    SCENARIO = dc_partition(start=0.4, heal=0.8, dc=1)

    def test_scenario_free_run_has_no_phases(self):
        config = ClusterConfig.test_scale(num_dcs=1, clients_per_dc=2,
                                          duration_seconds=0.3,
                                          warmup_seconds=0.1)
        result = run_experiment("contrarian", config).result
        assert result.phases == ()

    def test_partition_produces_phase_slices_and_gauges(self):
        config = ClusterConfig.test_scale(**self.CONFIG)
        result = run_experiment("contrarian", config,
                                scenario=self.SCENARIO).result
        assert [phase.name for phase in result.phases] == \
            ["baseline", "partition", "healed"]
        partition = result.phase("partition")
        assert partition.rots_completed > 0
        # The partition holds every cross-DC message and stalls visibility.
        assert partition.gauges["held_messages_max"] > 0
        assert partition.gauges["visibility_lag_ms_max"] > 100.0
        assert result.phase("healed").gauges["held_messages_max"] == 0.0

    def test_identical_seeds_identical_results_serial_and_parallel(self):
        config = ClusterConfig.test_scale(**self.CONFIG)
        spec = RunSpec(protocol="contrarian", config=config,
                       scenario=self.SCENARIO)
        serial = execute_spec(spec)
        pooled = ParallelRunner(max_workers=2).run([spec, spec])
        assert serial == pooled[0] == pooled[1]

    @pytest.mark.slow
    @pytest.mark.parametrize("protocol", ["contrarian", "cure", "cc-lo"])
    def test_partition_zero_violations(self, protocol):
        config = ClusterConfig.test_scale(**self.CONFIG)
        outcome = run_experiment(protocol, config, scenario=self.SCENARIO,
                                 enable_checker=True)
        report = outcome.checker_report
        assert report is not None
        assert report.ok, (report.snapshot_violations[:3],
                           report.session_violations[:3])

    @pytest.mark.slow
    def test_gc_stall_inflates_latency(self):
        config = ClusterConfig.test_scale(num_dcs=1, clients_per_dc=4,
                                          duration_seconds=1.2,
                                          warmup_seconds=0.1)
        scenario = (Scenario.at(0.4).pause_server(0, 0)
                            .at(0.6).resume_server(0, 0, phase="recovered"))
        result = run_experiment("contrarian", config, scenario=scenario).result
        paused = result.phase("paused")
        baseline = result.phase("baseline")
        # Every ROT spans all 4 partitions, so the pause stalls the closed
        # loop: almost nothing completes while the server is frozen, and the
        # stalled ROTs land in the recovery phase with ~200ms latencies.
        assert paused.rots_completed < baseline.rots_completed
        assert paused.gauges["stalled_rots_max"] > 0
        recovered = result.phase("recovered")
        assert recovered.rot_latency.max_ms > 50.0
