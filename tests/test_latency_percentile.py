"""Edge-case and property tests for the nearest-rank percentile.

The paper reports nearest-rank percentiles (a member of the population, not
an interpolation); these tests pin the estimator against
``statistics.quantiles`` on random populations and nail the degenerate
inputs (empty, single sample, all-equal).  ``LatencySummary`` must also
survive a dict round-trip, because ``RunResult`` serialisation flattens it
with ``asdict``.
"""

import math
import random
import statistics
from dataclasses import asdict

from repro.metrics.latency import LatencyRecorder, LatencySummary, percentile

FRACTIONS = (0.50, 0.95, 0.99)


class TestPercentileEdgeCases:
    def test_empty_population_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert percentile([42.0], fraction) == 42.0

    def test_all_equal_population(self):
        population = [7.0] * 100
        for fraction in FRACTIONS:
            assert percentile(population, fraction) == 7.0

    def test_fraction_bounds_clamp_to_extremes(self):
        population = [1.0, 2.0, 3.0]
        assert percentile(population, 0.0) == 1.0
        assert percentile(population, -1.0) == 1.0
        assert percentile(population, 1.0) == 3.0
        assert percentile(population, 2.0) == 3.0

    def test_two_samples(self):
        # The estimator computes round(f*n + 0.5) - 1 with Python's
        # round-half-to-even, so at f*n == 1 (an odd integer) the tie
        # resolves upward to the second order statistic.
        assert percentile([1.0, 2.0], 0.50) == 2.0
        assert percentile([1.0, 2.0], 0.49) == 1.0
        assert percentile([1.0, 2.0], 0.25) == 1.0
        assert percentile([1.0, 2.0], 0.75) == 2.0

    def test_exact_rank_on_a_round_population(self):
        # 100 distinct values 1..100.  Away from integer f*n boundaries the
        # estimator is the classic ceil(f*n)-th smallest value; at an odd
        # integer boundary the half-to-even tie rounds up one rank.
        population = [float(value) for value in range(1, 101)]
        assert percentile(population, 0.50) == 50.0   # f*n = 50, even tie
        assert percentile(population, 0.945) == 95.0  # ceil(94.5) = 95
        assert percentile(population, 0.95) == 96.0   # f*n = 95, odd tie
        assert percentile(population, 0.99) == 100.0  # f*n = 99, odd tie
        assert percentile(population, 0.985) == 99.0  # ceil(98.5) = 99


class TestPercentileProperties:
    def test_result_is_a_population_member(self):
        rng = random.Random(1)
        for _ in range(20):
            population = sorted(rng.uniform(0, 100)
                                for _ in range(rng.randint(1, 400)))
            for fraction in FRACTIONS:
                assert percentile(population, fraction) in population

    def test_nearest_rank_index_matches_the_definition(self):
        rng = random.Random(2)
        for _ in range(20):
            n = rng.randint(1, 500)
            population = sorted(rng.uniform(0, 1000) for _ in range(n))
            for fraction in FRACTIONS:
                position = fraction * n
                if not float(position).is_integer():
                    # Away from boundaries this is classic nearest rank.
                    index = math.ceil(position) - 1
                else:
                    # Exact boundary: round-half-to-even on position + 0.5.
                    index = round(position + 0.5) - 1
                expected = population[min(n - 1, max(0, index))]
                assert percentile(population, fraction) == expected

    def test_brackets_statistics_quantiles(self):
        # Nearest rank never strays more than one order-statistic step from
        # the interpolated quantile: the inclusive-method quantile lies
        # between the order statistics around (n-1)*p, and the nearest rank
        # lands on one of them.
        rng = random.Random(3)
        for _ in range(10):
            n = rng.randint(10, 500)
            population = sorted(rng.gauss(50, 10) for _ in range(n))
            for fraction in FRACTIONS:
                position = (n - 1) * fraction
                lower = population[math.floor(position)]
                upper = population[math.ceil(position)]
                interpolated = statistics.quantiles(
                    population, n=100, method="inclusive")[
                        round(fraction * 100) - 1]
                eps = 1e-9 * max(abs(lower), abs(upper), 1.0)
                assert lower - eps <= interpolated <= upper + eps
                assert lower <= percentile(population, fraction) <= upper

    def test_monotone_in_the_fraction(self):
        rng = random.Random(4)
        population = sorted(rng.expovariate(0.1) for _ in range(257))
        values = [percentile(population, f / 100) for f in range(101)]
        assert values == sorted(values)


class TestLatencySummaryRoundTrip:
    def test_summary_round_trips_through_a_dict(self):
        recorder = LatencyRecorder()
        recorder.extend([0.001, 0.002, 0.005, 0.010, 0.020])
        summary = recorder.summary()
        assert LatencySummary(**asdict(summary)) == summary

    def test_empty_summary_round_trips(self):
        summary = LatencySummary.empty()
        assert LatencySummary(**asdict(summary)) == summary
        assert summary.count == 0

    def test_summary_values_are_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.record(0.004)  # 4 ms, in seconds
        summary = recorder.summary()
        assert summary.count == 1
        assert summary.mean_ms == 4.0
        assert summary.p50_ms == 4.0
        assert summary.p99_ms == 4.0
        assert summary.max_ms == 4.0

    def test_merge_and_extend_agree(self):
        a = LatencyRecorder()
        a.extend([0.001, 0.002])
        b = LatencyRecorder()
        b.record(0.003)
        b.merge(a)
        c = LatencyRecorder()
        c.extend([0.003, 0.001, 0.002])
        assert sorted(b.samples()) == sorted(c.samples())
        assert b.summary() == c.summary()
        assert b.samples_ms() == [3.0, 1.0, 2.0]
