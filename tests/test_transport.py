"""Transport-layer tests: inproc routing parity and TCP delivery.

The TCP tests run two real transports over loopback sockets inside a private
event loop — fast enough for the default tier (no cluster, no processes).
"""

import asyncio

import pytest

from repro.core.common.kernel import ClientAddr, ServerAddr
from repro.core.common.messages import CcloPutReply, VectorPutRequest
from repro.errors import ConfigurationError, WireFormatError
from repro.runtime.transport import (
    Envelope,
    InprocTransport,
    TRANSPORTS,
    TcpTransport,
)
from repro.wire import decode, encode


class _SinkNode:
    """Minimal node: records every delivery."""

    def __init__(self) -> None:
        self.received: list[tuple[object, object]] = []
        self.traces: list[object] = []
        self.event = asyncio.Event()

    def deliver(self, sender, message, trace=None) -> None:
        self.received.append((sender, message))
        self.traces.append(trace)
        self.event.set()


PUT = VectorPutRequest(key="k", value_size=8, client_vector=(0,),
                       client_id="c-0", sequence=1)


class TestEnvelope:
    def test_envelope_round_trips_with_addresses(self):
        envelope = Envelope(sender=ClientAddr("c-0"),
                            dest=ServerAddr(0, 1), payload=PUT)
        for format in ("binary", "json"):
            decoded = decode(encode(envelope, format=format))
            assert decoded == envelope
            assert isinstance(decoded.dest, ServerAddr)


class TestInprocTransport:
    def test_local_delivery_and_unroutable_errors(self):
        transport = InprocTransport()
        node = _SinkNode()
        transport.register_local(ServerAddr(0, 0), node)
        transport.send(None, ServerAddr(0, 0), PUT)
        assert node.received == [(None, PUT)]
        with pytest.raises(ConfigurationError, match="no server at DC 1"):
            transport.send(None, ServerAddr(1, 0), PUT)
        with pytest.raises(ConfigurationError, match="unknown client"):
            transport.send(None, ClientAddr("ghost"), PUT)
        with pytest.raises(ConfigurationError, match="cannot route"):
            transport.send(None, "not-an-addr", PUT)

    def test_transport_names(self):
        assert TRANSPORTS == ("inproc", "tcp")


class TestTcpTransport:
    def test_cross_transport_delivery_and_graceful_flush(self):
        async def scenario():
            a, b = TcpTransport(), TcpTransport()
            await a.start()
            await b.start()
            server_node, client_node = _SinkNode(), _SinkNode()
            a.register_local(ServerAddr(0, 0), server_node)
            b.register_local(ClientAddr("c-0"), client_node)
            peers = {ServerAddr(0, 0): ("127.0.0.1", a.port),
                     ClientAddr("c-0"): ("127.0.0.1", b.port)}
            a.set_peers(peers)
            b.set_peers(peers)

            # b -> a over the wire; a -> b reply.
            b.send(ClientAddr("c-0"), ServerAddr(0, 0), PUT)
            await asyncio.wait_for(server_node.event.wait(), 5.0)
            assert server_node.received == [(ClientAddr("c-0"), PUT)]
            reply = CcloPutReply(key="k", timestamp=9)
            a.send(ServerAddr(0, 0), ClientAddr("c-0"), reply)
            await asyncio.wait_for(client_node.event.wait(), 5.0)
            assert client_node.received == [(ServerAddr(0, 0), reply)]

            # Local destinations short-circuit (no socket round trip).
            local_before = len(server_node.received)
            a.send(None, ServerAddr(0, 0), PUT)
            assert len(server_node.received) == local_before + 1

            # A burst enqueued right before stop() must still be flushed
            # (graceful shutdown drains outbound queues).
            client_node.event.clear()
            for sequence in range(50):
                b.send(ClientAddr("c-0"), ServerAddr(0, 0),
                       CcloPutReply(key=f"k{sequence}", timestamp=sequence))
            await b.stop()
            for _ in range(200):
                if len(server_node.received) >= local_before + 1 + 50:
                    break
                await asyncio.sleep(0.01)
            assert len(server_node.received) == local_before + 1 + 50
            await a.stop()
            assert a.failure is None
            assert b.failure is None

        asyncio.run(scenario())

    def test_unroutable_without_peer_entry(self):
        async def scenario():
            transport = TcpTransport()
            await transport.start()
            try:
                with pytest.raises(ConfigurationError, match="no server"):
                    transport.send(None, ServerAddr(3, 3), PUT)
            finally:
                await transport.stop()

        asyncio.run(scenario())

    def test_garbage_on_the_socket_sets_failure(self):
        async def scenario():
            transport = TcpTransport()
            await transport.start()
            node = _SinkNode()
            transport.register_local(ServerAddr(0, 0), node)
            _reader, writer = await asyncio.open_connection(
                "127.0.0.1", transport.port)
            writer.write(b"\x00\x00\x00\x04junk")
            await writer.drain()
            writer.close()
            for _ in range(100):
                if transport.failure is not None:
                    break
                await asyncio.sleep(0.01)
            assert isinstance(transport.failure, WireFormatError)
            await transport.stop()

        asyncio.run(scenario())
