"""Tests for the observability layer: event bus, trace assembly, exporters.

Unit tests pin the bus ring/sequence semantics, the write-chain
reconstruction and the two exporters on hand-built events; integration
tests run traced experiments on every backend and assert the acceptance
bar — gap-free merged timelines with complete issue→send→apply→visible
chains, and bit-identical results when tracing is off.
"""

import json

import pytest

from repro.cluster.config import ClusterConfig
from repro.harness.runner import run_experiment
from repro.obs.bus import DEFAULT_BUS_CAPACITY, EventBus
from repro.obs.events import (
    EVENT_KINDS,
    MSG_SEND,
    OP_FINISH,
    OP_START,
    REPLICATE_APPLY,
    TraceEvent,
    VISIBLE,
)
from repro.obs.export import (
    chrome_trace_events,
    prometheus_snapshot,
    write_chrome_trace,
)
from repro.obs.trace import TraceAssembler, WriteChain, render_span_tree
from repro.runtime.experiment import run_realtime_experiment
from repro.workload.parameters import WorkloadParameters

PROTOCOLS = ("contrarian", "cure", "cc-lo")


class _Clock:
    """Minimal settable time source for bus tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def _tiny_config(**overrides):
    defaults = dict(num_dcs=2, num_partitions=2, clients_per_dc=2,
                    duration_seconds=0.4, warmup_seconds=0.05)
    defaults.update(overrides)
    return ClusterConfig.test_scale(**defaults)


TINY_WORKLOAD = WorkloadParameters(rot_size=2)


# --------------------------------------------------------------------- bus
class TestEventBus:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            EventBus(_Clock(), capacity=0)

    def test_default_capacity(self):
        bus = EventBus(_Clock())
        assert bus.capacity == DEFAULT_BUS_CAPACITY

    def test_emit_stamps_time_source_and_sequence(self):
        clock = _Clock(1.5)
        bus = EventBus(clock, source="test")
        bus.emit("client-0", OP_START, trace="t1", name="put", dc=0,
                 data=(("key", "k1"),))
        clock.now = 2.5
        bus.emit("server-0", MSG_SEND, trace="t1", name="Put")
        first, second = bus.events()
        assert (first.seq, first.ts, first.node, first.kind) == \
            (0, 1.5, "client-0", OP_START)
        assert first.datum("key") == "k1"
        assert first.datum("missing", "fallback") == "fallback"
        assert (second.seq, second.ts, second.dc) == (1, 2.5, -1)
        assert len(bus) == 2
        assert bus.dropped == 0

    def test_ring_eviction_counts_drops_and_keeps_sequencing(self):
        bus = EventBus(_Clock(), capacity=3)
        for index in range(5):
            bus.emit(f"n{index}", OP_START)
        assert len(bus) == 3
        assert bus.dropped == 2
        assert bus.next_seq == 5
        # The oldest events were evicted; the survivors keep their seq.
        assert [event.seq for event in bus.events()] == [2, 3, 4]

    def test_drain_snapshots_and_clears(self):
        bus = EventBus(_Clock())
        bus.emit("a", OP_START)
        bus.emit("a", OP_FINISH)
        drained = bus.drain()
        assert [event.kind for event in drained] == [OP_START, OP_FINISH]
        assert len(bus) == 0
        # Sequence numbering continues across drains.
        bus.emit("a", OP_START)
        assert bus.events()[0].seq == 2


# --------------------------------------------------------------- assembler
def _event(seq, ts, node, kind, *, trace=None, name="", dc=-1, data=()):
    return TraceEvent(seq=seq, ts=ts, node=node, kind=kind, trace=trace,
                      name=name, dc=dc, data=data)


def _write_lifecycle(trace="client-0#1", key="k3"):
    """A hand-built full write lifecycle across two sources."""
    origin = [
        _event(0, 0.000, "client-0", OP_START, trace=trace, name="put",
               dc=0, data=(("key", key),)),
        _event(1, 0.001, "server-0-0", MSG_SEND, trace=trace,
               name="ReplicateUpdate", dc=0),
        _event(2, 0.004, "client-0", OP_FINISH, trace=trace, name="put",
               dc=0),
    ]
    remote = [
        _event(0, 0.005, "server-1-0", REPLICATE_APPLY, trace=trace,
               name=key, dc=1),
        _event(1, 0.010, "server-1-0", VISIBLE, trace=trace, name=key,
               dc=1),
    ]
    return origin, remote


class TestTraceAssembler:
    def test_gap_free_sources(self):
        origin, remote = _write_lifecycle()
        assembler = TraceAssembler()
        assembler.add_events(origin, source="dc0")
        assembler.add_events(remote, source="dc1")
        assert assembler.sources == ("dc0", "dc1")
        assert assembler.sequence_gaps() == {"dc0": 0, "dc1": 0}
        assert assembler.total_dropped() == 0

    def test_missing_sequence_numbers_surface_as_gaps(self):
        events = [_event(0, 0.0, "a", OP_START),
                  _event(3, 0.3, "a", OP_FINISH)]  # 1, 2 lost in transit
        assembler = TraceAssembler()
        assembler.add_events(events, source="w")
        assert assembler.sequence_gaps() == {"w": 2}

    def test_missing_head_counts_as_ring_eviction(self):
        events = [_event(2, 0.2, "a", OP_START), _event(3, 0.3, "a", VISIBLE)]
        assembler = TraceAssembler()
        assembler.add_events(events, source="w")
        assert assembler.sequence_gaps() == {"w": 2}

    def test_declared_drops_are_cumulative_maxima(self):
        assembler = TraceAssembler()
        assembler.add_events([_event(0, 0.0, "a", OP_START)], source="w",
                             dropped=5)
        assembler.add_events([_event(1, 0.1, "a", OP_FINISH)], source="w",
                             dropped=3)
        assert assembler.sequence_gaps() == {"w": 5}

    def test_merged_timeline_orders_by_timestamp(self):
        origin, remote = _write_lifecycle()
        assembler = TraceAssembler()
        assembler.add_events(remote, source="dc1")
        assembler.add_events(origin, source="dc0")
        merged = assembler.events()
        assert [event.ts for event in merged] == sorted(
            event.ts for event in merged)
        assert merged[0].kind == OP_START
        assert merged[-1].kind == VISIBLE

    def test_ingest_bus_uses_bus_source_and_drains(self):
        bus = EventBus(_Clock(), source="sim")
        bus.emit("client-0", OP_START, trace="t", name="put")
        assembler = TraceAssembler()
        assembler.ingest_bus(bus)
        assert assembler.sources == ("sim",)
        assert len(bus) == 0
        assert len(assembler.events()) == 1

    def test_write_chain_reconstruction(self):
        origin, remote = _write_lifecycle()
        assembler = TraceAssembler()
        assembler.add_events(origin, source="dc0")
        assembler.add_events(remote, source="dc1")
        chains = assembler.write_chains()
        assert set(chains) == {"client-0#1"}
        chain = chains["client-0#1"]
        assert chain.key == "k3"
        assert chain.origin_dc == 0
        assert chain.issue_ts == 0.0
        assert chain.send_ts == 0.001
        assert chain.finish_ts == 0.004
        assert chain.applies == {1: 0.005}
        assert chain.visibles == {1: 0.010}
        assert chain.is_complete(num_remote_dcs=1)
        assert not chain.is_complete(num_remote_dcs=2)
        assert chain.visibility_lags() == {1: 0.010}
        assert assembler.complete_chains(1) == [chain]
        assert assembler.visibility_lags() == [("client-0#1", 1, 0.010)]
        summary = assembler.visibility_summary()
        assert summary.count == 1
        assert summary.p50_ms == pytest.approx(10.0)

    def test_rots_and_untraced_events_do_not_create_chains(self):
        events = [
            _event(0, 0.0, "client-0", OP_START, trace="t-rot", name="rot"),
            _event(1, 0.1, "server-0-0", MSG_SEND, name="Heartbeat"),
            _event(2, 0.2, "server-1-0", REPLICATE_APPLY, name="k",
                   dc=1),  # untraced background apply
        ]
        assembler = TraceAssembler()
        assembler.add_events(events, source="s")
        assert assembler.write_chains() == {}
        assert assembler.visibility_summary().count == 0

    def test_events_for_filters_one_trace(self):
        origin, remote = _write_lifecycle()
        other = [_event(4, 0.2, "client-1", OP_START, trace="other",
                        name="put")]
        assembler = TraceAssembler()
        assembler.add_events(origin + other, source="dc0")
        assembler.add_events(remote, source="dc1")
        slice_ = assembler.events_for("client-0#1")
        assert len(slice_) == 5
        assert all(event.trace == "client-0#1" for event in slice_)

    def test_incomplete_chain_is_not_complete(self):
        chain = WriteChain(trace="t", issue_ts=0.0, send_ts=0.1)
        assert not chain.is_complete(1)
        assert chain.visibility_lags() == {}


# --------------------------------------------------------------- exporters
class TestChromeTraceExport:
    def test_op_pairs_become_complete_spans(self):
        origin, _remote = _write_lifecycle()
        records = chrome_trace_events(origin, pid=7, group="contrarian")
        spans = [record for record in records if record.get("ph") == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "put"
        assert span["pid"] == 7
        assert span["ts"] == 0.0
        assert span["dur"] == pytest.approx(4000.0)  # 4 ms in µs
        assert span["args"]["trace"] == "client-0#1"
        process_meta = [record for record in records
                        if record.get("name") == "process_name"]
        assert process_meta[0]["args"]["name"] == "contrarian"
        thread_meta = [record for record in records
                       if record.get("name") == "thread_name"]
        assert {meta["args"]["name"] for meta in thread_meta} == \
            {"client-0", "server-0-0"}

    def test_unmatched_start_exports_zero_duration_span(self):
        events = [_event(0, 0.0, "c", OP_START, trace="t", name="put")]
        records = chrome_trace_events(events)
        spans = [record for record in records if record.get("ph") == "X"]
        assert len(spans) == 1
        assert spans[0]["dur"] == 0.0

    def test_other_events_export_as_instants(self):
        _origin, remote = _write_lifecycle()
        records = chrome_trace_events(remote)
        instants = [record for record in records if record.get("ph") == "i"]
        assert [record["cat"] for record in instants] == \
            [REPLICATE_APPLY, VISIBLE]

    def test_write_chrome_trace_file(self, tmp_path):
        origin, remote = _write_lifecycle()
        path = tmp_path / "trace.json"
        info = write_chrome_trace(str(path),
                                  {"contrarian": origin + remote},
                                  metadata={"run": "unit"})
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert document["metadata"] == {"run": "unit"}
        assert len(document["traceEvents"]) == info["records"]
        assert info["events_per_group"] == {"contrarian": 5}


class TestPrometheusSnapshot:
    def test_bus_and_assembler_sections(self):
        bus = EventBus(_Clock(), source="sim")
        bus.emit("c", OP_START, trace="t", name="put")
        assembler = TraceAssembler()
        origin, remote = _write_lifecycle()
        assembler.add_events(origin, source="dc0")
        assembler.add_events(remote, source="dc1")
        text = prometheus_snapshot(bus=bus, assembler=assembler)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "repro_trace_events_emitted_total 1" in lines
        assert "repro_trace_events_dropped_total 0" in lines
        assert "repro_trace_sources 2" in lines
        assert "repro_trace_events_lost_total 0" in lines
        assert 'repro_visibility_lag_assembled_ms{quantile="0.5"} 10.0' \
            in lines
        assert any(line.startswith("# TYPE repro_trace_events_emitted_total")
                   for line in lines)

    def test_empty_snapshot_is_just_a_newline(self):
        assert prometheus_snapshot() == "\n"


class TestRenderSpanTree:
    def test_empty(self):
        assert render_span_tree(()) == "(no events)"

    def test_tree_structure_and_offsets(self):
        origin, remote = _write_lifecycle()
        text = render_span_tree(origin + remote)
        lines = text.splitlines()
        assert lines[0] == "trace client-0#1"
        assert any("client-0 (dc0)" in line for line in lines)
        assert any("server-1-0 (dc1)" in line for line in lines)
        assert any("+    0.000ms" in line for line in lines)
        assert any("+   10.000ms" in line for line in lines)
        assert any("visible" in line for line in lines)
        # The last branch is closed with rounded corners.
        assert lines[-2].lstrip().startswith("└─") or \
            lines[-1].lstrip().startswith("└─")


# ------------------------------------------------------------- integration
class TestSimTracing:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_traced_sim_run_is_gap_free_with_complete_chains(self, protocol):
        outcome = run_experiment(protocol, _tiny_config(), TINY_WORKLOAD,
                                 trace=True)
        assembler = outcome.trace
        assert assembler is not None
        gaps = assembler.sequence_gaps()
        assert sum(gaps.values()) == 0, gaps
        complete = assembler.complete_chains(num_remote_dcs=1)
        assert complete, "no write completed its full lifecycle chain"
        assert outcome.result.visibility_trace is not None
        assert outcome.result.visibility_trace.count > 0
        kinds = {event.kind for event in assembler.events()}
        assert kinds <= set(EVENT_KINDS)
        assert {OP_START, MSG_SEND, REPLICATE_APPLY, VISIBLE} <= kinds

    def test_untraced_run_is_bit_identical_to_traced(self):
        baseline = run_experiment("contrarian", _tiny_config(),
                                  TINY_WORKLOAD)
        traced = run_experiment("contrarian", _tiny_config(), TINY_WORKLOAD,
                                trace=True)
        assert baseline.trace is None
        assert baseline.result.visibility_trace is None
        assert baseline.result.rot_latency == traced.result.rot_latency
        assert baseline.result.put_latency == traced.result.put_latency
        assert baseline.result.throughput_kops == \
            traced.result.throughput_kops
        assert baseline.result.rots_completed == traced.result.rots_completed

    def test_span_tree_renders_a_real_trace(self):
        outcome = run_experiment("cure", _tiny_config(), TINY_WORKLOAD,
                                 trace=True)
        chain = outcome.trace.complete_chains(1)[0]
        text = render_span_tree(outcome.trace.events_for(chain.trace))
        assert f"trace {chain.trace}" in text
        assert "visible" in text


class TestRealtimeTracing:
    def test_traced_inproc_run_is_gap_free(self):
        outcome = run_realtime_experiment(
            "contrarian", _tiny_config(), TINY_WORKLOAD,
            duration_seconds=0.6, trace=True)
        assembler = outcome.trace
        assert assembler is not None
        assert sum(assembler.sequence_gaps().values()) == 0
        assert assembler.complete_chains(num_remote_dcs=1)
        assert outcome.result.visibility_trace.count > 0

    def test_untraced_run_carries_no_trace(self):
        outcome = run_realtime_experiment(
            "cure", _tiny_config(), TINY_WORKLOAD, duration_seconds=0.3)
        assert outcome.trace is None
        assert outcome.result.visibility_trace is None


@pytest.mark.slow
class TestTcpTracing:
    def test_tcp_cluster_assembles_one_gap_free_timeline(self):
        outcome = run_realtime_experiment(
            "contrarian", _tiny_config(), TINY_WORKLOAD,
            duration_seconds=1.0, transport="tcp", trace=True)
        assembler = outcome.trace
        assert assembler is not None
        # One stream per worker process plus the parent's view.
        assert outcome.cluster.worker_count == 6
        worker_sources = [source for source in assembler.sources
                          if source.startswith("worker-")]
        assert len(worker_sources) == 6
        gaps = assembler.sequence_gaps()
        assert sum(gaps.values()) == 0, gaps
        complete = assembler.complete_chains(num_remote_dcs=1)
        assert complete
        for chain in complete:
            assert chain.issue_ts <= chain.send_ts
            assert all(chain.send_ts <= ts for ts in chain.applies.values())
            assert all(chain.applies[dc] <= ts
                       for dc, ts in chain.visibles.items())
        assert outcome.result.visibility_trace.count > 0
