"""Batch frame tests: columnar coalescing, flush policies, edge cases.

Covers the wire side (encode_batch/decode round trips, empty and single
batches, oversize rejection, version gating, torn-frame reassembly through
FrameDecoder) and the transport side (threshold and idle flushes, graceful
stop, batch trace events) without spawning any processes.
"""

import asyncio

import pytest

from repro.core.common.kernel import ServerAddr
from repro.core.common.messages import (
    CcloPutReply,
    RemoteHeartbeat,
    ReplicateUpdate,
)
from repro.errors import ConfigurationError, WireFormatError
from repro.runtime.transport import (
    Envelope,
    InprocTransport,
    TcpTransport,
    resolve_flush_policy,
)
from repro.wire.batch import (
    DEFAULT_FLUSH_POLICY,
    BatchFrame,
    FlushPolicy,
    MAX_BATCH_MESSAGES,
    MIN_COLUMNAR_RUN,
    decode_batch_payload,
    encode_batch,
)
from repro.wire.codec import FORMAT_BATCH, MAGIC, WIRE_VERSION, decode
from repro.wire.framing import FrameDecoder, frame
from repro.wire.intern import clear_interned, intern_key

DEST = ServerAddr(1, 0)


def _replicate(index: int, key: str = "hot-key") -> Envelope:
    return Envelope(
        sender=ServerAddr(0, 0), dest=DEST,
        payload=ReplicateUpdate(
            key=key, timestamp=1000 + index, origin_dc=0, value_size=64,
            dependency_vector=(index, 0), dependencies=(),
            writer="c-0", sequence=index),
        trace=f"c-0#{index}")


def _heartbeat(index: int) -> Envelope:
    return Envelope(sender=ServerAddr(0, 0), dest=DEST,
                    payload=RemoteHeartbeat(origin_dc=0,
                                            timestamp=2000 + index))


class TestBatchCodec:
    def test_homogeneous_batch_round_trips(self):
        envelopes = [_replicate(i) for i in range(16)]
        decoded = decode(encode_batch(envelopes))
        assert isinstance(decoded, BatchFrame)
        assert len(decoded) == 16
        assert list(decoded.envelopes) == envelopes

    def test_heterogeneous_batch_round_trips(self):
        # Alternating payload types: every run is shorter than
        # MIN_COLUMNAR_RUN, so everything lands in generic sections.
        envelopes = []
        for i in range(6):
            envelopes.append(_replicate(i))
            envelopes.append(_heartbeat(i))
        decoded = decode(encode_batch(envelopes))
        assert list(decoded.envelopes) == envelopes

    def test_mixed_runs_round_trip(self):
        envelopes = ([_replicate(i) for i in range(MIN_COLUMNAR_RUN)]
                     + [_heartbeat(0)]
                     + [_replicate(i, key=f"k{i}") for i in range(9)])
        decoded = decode(encode_batch(envelopes))
        assert list(decoded.envelopes) == envelopes

    def test_empty_batch_round_trips(self):
        decoded = decode(encode_batch([]))
        assert isinstance(decoded, BatchFrame)
        assert decoded.envelopes == ()

    def test_single_message_batch_round_trips(self):
        decoded = decode(encode_batch([_replicate(0)]))
        assert list(decoded.envelopes) == [_replicate(0)]

    def test_oversize_batch_rejected(self):
        one = _replicate(0)
        with pytest.raises(WireFormatError, match="limit"):
            encode_batch([one] * (MAX_BATCH_MESSAGES + 1))

    def test_announced_count_must_match(self):
        payload = bytearray(encode_batch([_replicate(i) for i in range(5)]))
        payload[3:7] = (6).to_bytes(4, "big")
        with pytest.raises(WireFormatError, match="announced"):
            decode(bytes(payload))

    def test_unknown_section_kind_rejected(self):
        payload = bytearray(encode_batch([_replicate(i) for i in range(5)]))
        payload[9] = 77  # first section kind byte
        with pytest.raises(WireFormatError, match="section kind"):
            decode(bytes(payload))

    def test_trailing_bytes_rejected(self):
        payload = encode_batch([_replicate(i) for i in range(5)]) + b"\x00"
        with pytest.raises(WireFormatError, match="trailing"):
            decode(payload)

    def test_truncated_batch_rejected(self):
        payload = encode_batch([_replicate(i) for i in range(5)])
        with pytest.raises(WireFormatError):
            decode(payload[:len(payload) - 3])
        with pytest.raises(WireFormatError, match="short"):
            decode_batch_payload(bytes((MAGIC, WIRE_VERSION, FORMAT_BATCH)))


class TestVersionGating:
    def test_batch_frames_require_version_3(self):
        # A (buggy or hostile) peer stamping the batch format with an older
        # version byte must be rejected loudly, not mis-parsed.
        payload = bytearray(encode_batch([_replicate(i) for i in range(4)]))
        assert payload[1] == 3
        payload[1] = 2
        with pytest.raises(WireFormatError, match="version"):
            decode(bytes(payload))

    def test_v2_per_message_frames_decode_under_v3(self):
        from repro.wire.codec import encode
        envelope = _replicate(0)
        payload = bytearray(encode(envelope))
        payload[1] = 2
        assert decode(bytes(payload)) == envelope


class TestColumnarDetails:
    def test_type_changing_constant_folds_are_refused(self):
        # 0 == 0.0 in Python, so a naive constant fold would silently turn
        # the float into an int on decode.  The encoder must notice the
        # type split and fall back to a per-value column.
        envelopes = [Envelope(sender=None, dest=DEST,
                              payload=CcloPutReply(key="k", timestamp=0))
                     for _ in range(4)]
        envelopes.append(Envelope(sender=None, dest=DEST,
                                  payload=CcloPutReply(key="k",
                                                       timestamp=0.0)))
        decoded = decode(encode_batch(envelopes)).envelopes
        assert [type(e.payload.timestamp) for e in decoded] == [
            int, int, int, int, float]

    def test_decoded_keys_are_interned(self):
        clear_interned()
        try:
            decoded = decode(encode_batch(
                [_replicate(i) for i in range(8)])).envelopes
            keys = {id(envelope.payload.key) for envelope in decoded}
            assert len(keys) == 1
            assert decoded[0].payload.key is intern_key("hot-key")
        finally:
            clear_interned()

    def test_torn_frame_reassembles_through_frame_decoder(self):
        envelopes = [_replicate(i) for i in range(12)]
        stream = frame(encode_batch(envelopes))
        decoder = FrameDecoder()
        payloads = []
        for start in range(0, len(stream), 7):
            payloads.extend(decoder.feed(stream[start:start + 7]))
        assert len(payloads) == 1
        assert list(decode(payloads[0]).envelopes) == envelopes


class TestFlushPolicy:
    def test_defaults_and_validation(self):
        assert DEFAULT_FLUSH_POLICY.max_messages == 128
        with pytest.raises(ValueError, match="max_messages"):
            FlushPolicy(max_messages=0)
        with pytest.raises(ValueError, match="max_messages"):
            FlushPolicy(max_messages=MAX_BATCH_MESSAGES + 1)
        with pytest.raises(ValueError, match="max_bytes"):
            FlushPolicy(max_bytes=0)

    def test_resolve(self):
        assert resolve_flush_policy(None) is None
        assert resolve_flush_policy(False) is None
        assert resolve_flush_policy(True) is DEFAULT_FLUSH_POLICY
        policy = FlushPolicy(max_messages=4)
        assert resolve_flush_policy(policy) is policy
        with pytest.raises(ConfigurationError, match="batch"):
            resolve_flush_policy(128)


class _SinkNode:
    def __init__(self) -> None:
        self.received: list[tuple[object, object]] = []
        self.event = asyncio.Event()

    def deliver(self, sender, message, trace=None) -> None:
        self.received.append((sender, message))
        self.event.set()


class _RecordingTracer:
    def __init__(self) -> None:
        self.events: list[tuple[str, tuple]] = []

    def emit(self, node, kind, *, trace=None, name="", dc=-1, data=()):
        self.events.append((kind, data))


class TestInprocBatching:
    def test_threshold_flush_inside_send(self):
        async def scenario():
            transport = InprocTransport(batch=FlushPolicy(max_messages=3))
            node = _SinkNode()
            transport.register_local(DEST, node)
            for i in range(2):
                transport.send(None, DEST, _replicate(i).payload)
            assert node.received == []  # still buffered
            transport.send(None, DEST, _replicate(2).payload)
            assert len(node.received) == 3  # threshold flush, in order

        asyncio.run(scenario())

    def test_idle_flush_and_stop(self):
        async def scenario():
            transport = InprocTransport(batch=True)
            tracer = _RecordingTracer()
            transport.tracer = tracer
            node = _SinkNode()
            transport.register_local(DEST, node)
            transport.send(None, DEST, _replicate(0).payload)
            assert node.received == []
            await asyncio.sleep(0)  # the scheduled idle flush runs
            assert len(node.received) == 1
            transport.send(None, DEST, _replicate(1).payload)
            await transport.stop()  # stop() flushes whatever is pending
            assert len(node.received) == 2
            assert [kind for kind, _data in tracer.events] == [
                "batch_flush", "batch_flush"]

        asyncio.run(scenario())

    def test_without_loop_falls_back_to_direct_delivery(self):
        transport = InprocTransport(batch=True)
        node = _SinkNode()
        transport.register_local(DEST, node)
        transport.send(None, DEST, _replicate(0).payload)
        assert len(node.received) == 1


class TestTcpBatching:
    def test_batched_cross_transport_delivery(self):
        async def scenario():
            a = TcpTransport()
            b = TcpTransport(batch=FlushPolicy(max_messages=8))
            tracer = _RecordingTracer()
            b.tracer = tracer
            await a.start()
            await b.start()
            node = _SinkNode()
            a.register_local(DEST, node)
            peers = {DEST: ("127.0.0.1", a.port)}
            b.set_peers(peers)

            sent = [_replicate(i, key=f"k{i % 3}") for i in range(20)]
            for envelope in sent:
                b.send(envelope.sender, DEST, envelope.payload,
                       envelope.trace)
            # 20 sends with max_messages=8: two threshold flushes plus an
            # idle flush of the remaining 4.
            for _ in range(500):
                if len(node.received) >= 20:
                    break
                await asyncio.sleep(0.01)
            assert [message for _sender, message in node.received] == [
                envelope.payload for envelope in sent]
            flushes = [data for kind, data in tracer.events
                       if kind == "batch_flush"]
            assert [dict(data)["count"] for data in flushes] == [8, 8, 4]
            await b.stop()
            await a.stop()
            assert a.failure is None
            assert b.failure is None

        asyncio.run(scenario())

    def test_pending_batch_flushed_on_stop(self):
        async def scenario():
            a = TcpTransport()
            b = TcpTransport(batch=True)  # thresholds far above 5 messages
            await a.start()
            await b.start()
            node = _SinkNode()
            a.register_local(DEST, node)
            b.set_peers({DEST: ("127.0.0.1", a.port)})
            for i in range(5):
                b.send(None, DEST, _replicate(i).payload)
            await b.stop()
            for _ in range(500):
                if len(node.received) >= 5:
                    break
                await asyncio.sleep(0.01)
            assert len(node.received) == 5
            await a.stop()
            assert a.failure is None

        asyncio.run(scenario())

    def test_single_pending_envelope_goes_out_unbatched(self):
        async def scenario():
            a = TcpTransport()
            b = TcpTransport(batch=True)
            recv_tracer = _RecordingTracer()
            a.tracer = recv_tracer
            await a.start()
            await b.start()
            node = _SinkNode()
            a.register_local(DEST, node)
            b.set_peers({DEST: ("127.0.0.1", a.port)})
            b.send(None, DEST, _replicate(0).payload)
            await asyncio.wait_for(node.event.wait(), 5.0)
            # A flush of one envelope is a plain per-message frame, so the
            # receiver sees no batch_recv event.
            assert all(kind != "batch_recv"
                       for kind, _data in recv_tracer.events)
            await b.stop()
            await a.stop()

        asyncio.run(scenario())
