"""Cross-process metric merging: ``MetricsRegistry.absorb`` and friends.

Worker processes ship raw latency samples, issue counts and overhead
counters to the parent (see :mod:`repro.runtime.process`); the parent folds
them into its registry with ``absorb`` and merges the counters.  These tests
pin the merge semantics: samples are verbatim (the worker already applied
its warmup filter), counts add, gauges stay phase-local, and the overhead
merge is element-wise.
"""

from repro.metrics.collectors import MetricsRegistry
from repro.metrics.overheads import OverheadCounters


def _registry_with_local_traffic() -> MetricsRegistry:
    registry = MetricsRegistry(warmup_seconds=1.0)
    registry.note_issue(True)
    registry.note_issue(False)
    registry.record_put(1.0, 1.5)    # after warmup: recorded
    registry.record_rot(2.0, 2.25)   # after warmup: recorded
    registry.record_rot(0.1, 0.2)    # completes during warmup: dropped
    return registry


class TestAbsorb:
    def test_samples_and_counts_fold_in_verbatim(self):
        registry = _registry_with_local_traffic()
        registry.absorb(rot_samples=(0.010, 0.020), put_samples=(0.005,),
                        rots_issued=4, puts_issued=3)
        # Completed counts equal sample counts by construction (workers
        # pre-filter warmup completions).
        assert registry.rots_completed == 1 + 2
        assert registry.puts_completed == 1 + 1
        assert registry.rots_issued == 1 + 4
        assert registry.puts_issued == 1 + 3
        assert set(registry.rot_latencies.samples()) == {0.25, 0.010, 0.020}
        assert set(registry.put_latencies.samples()) == {0.5, 0.005}

    def test_absorb_bypasses_the_parent_warmup_filter(self):
        # A worker's samples were measured against *its* warmup window; the
        # parent must not re-filter them even when they look warmup-early.
        registry = MetricsRegistry(warmup_seconds=100.0)
        registry.absorb(rot_samples=(0.001,), put_samples=())
        assert registry.rots_completed == 1
        assert registry.rot_latencies.count == 1

    def test_multiple_workers_accumulate(self):
        registry = MetricsRegistry()
        for worker in range(3):
            registry.absorb(rot_samples=(0.01 * (worker + 1),),
                            put_samples=(0.02,),
                            rots_issued=2, puts_issued=1)
        assert registry.rots_completed == 3
        assert registry.puts_completed == 3
        assert registry.rots_issued == 6
        assert registry.puts_issued == 3
        summary = registry.put_latencies.summary()
        assert summary.count == 3
        assert summary.mean_ms == 20.0

    def test_absorb_defaults_leave_issue_counts_alone(self):
        registry = MetricsRegistry()
        registry.absorb(rot_samples=(0.01,), put_samples=())
        assert registry.rots_issued == 0
        assert registry.puts_issued == 0

    def test_absorbed_samples_reach_the_finalized_result(self):
        registry = MetricsRegistry()
        registry.absorb(rot_samples=(0.010, 0.030), put_samples=(0.020,))
        result = registry.finalize(
            protocol="contrarian", num_dcs=2, clients=4,
            measurement_seconds=1.0, overhead=OverheadCounters(),
            cpu_utilization=0.0)
        assert result.rots_completed == 2
        assert result.puts_completed == 1
        assert result.throughput_kops == 3 / 1000.0
        assert result.rot_latency.mean_ms == 20.0
        assert result.put_latency.mean_ms == 20.0


class TestGaugeSamples:
    def test_gauges_attach_to_the_current_phase_only(self):
        registry = MetricsRegistry()
        registry.record_gauge("stalled_rots", 5.0)  # no phase open: dropped
        registry.begin_phase("healthy", 0.0)
        registry.record_gauge("stalled_rots", 1.0)
        registry.record_gauge("stalled_rots", 3.0)
        registry.begin_phase("faulty", 5.0)
        registry.record_gauge("stalled_rots", 9.0)
        result = registry.finalize(
            protocol="contrarian", num_dcs=2, clients=4,
            measurement_seconds=10.0, overhead=OverheadCounters(),
            cpu_utilization=0.0)
        healthy = result.phase("healthy")
        faulty = result.phase("faulty")
        assert healthy.gauges["stalled_rots_max"] == 3.0
        assert healthy.gauges["stalled_rots_mean"] == 2.0
        assert faulty.gauges["stalled_rots_max"] == 9.0

    def test_absorb_does_not_pollute_phase_gauges(self):
        registry = MetricsRegistry()
        registry.begin_phase("only", 0.0)
        registry.absorb(rot_samples=(0.01,), put_samples=(0.02,))
        result = registry.finalize(
            protocol="cure", num_dcs=2, clients=1,
            measurement_seconds=1.0, overhead=OverheadCounters(),
            cpu_utilization=0.0)
        assert result.phase("only").gauges == {}


class TestOverheadCounterMerge:
    def test_scalars_add_and_sample_lists_concatenate(self):
        a = OverheadCounters()
        a.messages_sent = 10
        a.bytes_sent = 1000
        a.record_readers_check(3, 5, 2)
        b = OverheadCounters()
        b.messages_sent = 5
        b.bytes_sent = 500
        b.record_readers_check(1, 1, 1)
        b.record_readers_check(2, 4, 2)
        a.merge(b)
        assert a.messages_sent == 15
        assert a.bytes_sent == 1500
        assert a.readers_checks == 3
        assert a.per_check_distinct == [3, 1, 2]
        assert a.per_check_cumulative == [5, 1, 4]
        assert a.average_distinct_ids_per_check() == (3 + 1 + 2) / 3
        assert a.average_cumulative_ids_per_check() == (5 + 1 + 4) / 3
        assert a.average_partitions_per_check() == (2 + 1 + 2) / 3

    def test_merge_is_identity_for_empty_counters(self):
        a = OverheadCounters()
        a.messages_sent = 7
        a.stabilization_messages = 2
        before = (a.messages_sent, a.stabilization_messages)
        a.merge(OverheadCounters())
        assert (a.messages_sent, a.stabilization_messages) == before
