"""Tests for workload parameters, zipfian sampling and operation generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partitioning import HashPartitioner
from repro.errors import WorkloadError
from repro.workload.generator import Operation, WorkloadGenerator
from repro.workload.parameters import (
    DEFAULT_WORKLOAD,
    ROT_SIZES,
    SKEWS,
    VALUE_SIZES,
    WRITE_RATIOS,
    WorkloadParameters,
    table1_grid,
)
from repro.workload.zipfian import ZipfianSampler, expected_head_mass


class TestWorkloadParameters:
    def test_defaults_match_the_paper(self):
        assert DEFAULT_WORKLOAD.write_ratio == 0.05
        assert DEFAULT_WORKLOAD.rot_size == 4
        assert DEFAULT_WORKLOAD.value_size == 8
        assert DEFAULT_WORKLOAD.skew == 0.99

    def test_table1_grids(self):
        assert WRITE_RATIOS == (0.01, 0.05, 0.1)
        assert ROT_SIZES == (4, 8, 24)
        assert VALUE_SIZES == (8, 128, 2048)
        assert SKEWS == (0.99, 0.8, 0.0)

    def test_invalid_write_ratio(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(write_ratio=1.5)

    def test_invalid_rot_size(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(rot_size=0)

    def test_invalid_value_size(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(value_size=0)

    def test_invalid_skew(self):
        with pytest.raises(WorkloadError):
            WorkloadParameters(skew=-0.1)

    def test_put_probability_formula(self):
        """w = q / (q + (1 - q) * p) must hold for the derived q."""
        for w in WRITE_RATIOS:
            for p in ROT_SIZES:
                params = WorkloadParameters(write_ratio=w, rot_size=p)
                q = params.put_probability
                reconstructed = q / (q + (1 - q) * p)
                assert reconstructed == pytest.approx(w)

    def test_put_probability_zero_when_read_only(self):
        assert WorkloadParameters(write_ratio=0.0).put_probability == 0.0

    def test_with_changes_returns_new_instance(self):
        changed = DEFAULT_WORKLOAD.with_changes(skew=0.8)
        assert changed.skew == 0.8
        assert DEFAULT_WORKLOAD.skew == 0.99

    def test_describe_mentions_all_parameters(self):
        text = DEFAULT_WORKLOAD.describe()
        assert "w=0.05" in text and "p=4" in text and "z=0.99" in text

    def test_table1_grid_covers_single_axis_variations(self):
        grid = table1_grid()
        assert DEFAULT_WORKLOAD in grid
        assert len(grid) == 1 + 2 + 2 + 2 + 2


class TestZipfianSampler:
    def test_samples_stay_in_range(self):
        sampler = ZipfianSampler(100, 0.99, random.Random(1))
        assert all(0 <= sampler.sample() < 100 for _ in range(1000))

    def test_uniform_when_skew_zero(self):
        sampler = ZipfianSampler(10, 0.0, random.Random(1))
        counts = [0] * 10
        for _ in range(5000):
            counts[sampler.sample()] += 1
        assert min(counts) > 300  # roughly uniform

    def test_skew_concentrates_mass_on_head(self):
        rng = random.Random(2)
        sampler = ZipfianSampler(1000, 0.99, rng)
        head_hits = sum(1 for _ in range(5000) if sampler.sample() < 10)
        assert head_hits / 5000 > 0.3

    def test_probability_of_is_decreasing(self):
        sampler = ZipfianSampler(50, 0.99, random.Random(1))
        probabilities = [sampler.probability_of(i) for i in range(50)]
        assert probabilities == sorted(probabilities, reverse=True)
        assert sum(probabilities) == pytest.approx(1.0)

    def test_probability_uniform_case(self):
        sampler = ZipfianSampler(4, 0.0, random.Random(1))
        assert sampler.probability_of(3) == pytest.approx(0.25)

    def test_single_item(self):
        sampler = ZipfianSampler(1, 0.99, random.Random(1))
        assert sampler.sample() == 0

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfianSampler(0, 0.5, random.Random(1))
        with pytest.raises(WorkloadError):
            ZipfianSampler(10, -1.0, random.Random(1))
        with pytest.raises(WorkloadError):
            ZipfianSampler(10, 0.5, random.Random(1)).probability_of(99)

    def test_sample_distinct(self):
        sampler = ZipfianSampler(20, 0.8, random.Random(3))
        drawn = sampler.sample_distinct(5)
        assert len(set(drawn)) == 5

    def test_sample_distinct_too_many(self):
        with pytest.raises(WorkloadError):
            ZipfianSampler(3, 0.8, random.Random(3)).sample_distinct(5)

    def test_expected_head_mass_monotone_in_skew(self):
        assert expected_head_mass(1000, 0.99, 10) > expected_head_mass(1000, 0.0, 10)

    @given(st.integers(min_value=2, max_value=500),
           st.sampled_from([0.0, 0.8, 0.99]),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_samples_always_valid_indices(self, n, skew, seed):
        sampler = ZipfianSampler(n, skew, random.Random(seed))
        for _ in range(20):
            assert 0 <= sampler.sample() < n


class TestOperation:
    def test_put_requires_single_key(self):
        with pytest.raises(WorkloadError):
            Operation(kind="put", keys=("a", "b"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            Operation(kind="scan", keys=("a",))

    def test_empty_keys_rejected(self):
        with pytest.raises(WorkloadError):
            Operation(kind="rot", keys=())

    def test_kind_flags(self):
        assert Operation(kind="put", keys=("a",)).is_put
        assert Operation(kind="rot", keys=("a", "b")).is_rot


class TestWorkloadGenerator:
    def _generator(self, partitions=8, keys=100, seed=1, **params):
        parameters = DEFAULT_WORKLOAD.with_changes(**params) if params else DEFAULT_WORKLOAD
        return WorkloadGenerator(parameters, HashPartitioner(partitions), keys,
                                 random.Random(seed))

    def test_rot_spans_requested_number_of_partitions(self):
        generator = self._generator(rot_size=4)
        partitioner = HashPartitioner(8)
        for _ in range(100):
            operation = generator.next_operation()
            if operation.is_rot:
                partitions = {partitioner.partition_of(k) for k in operation.keys}
                assert len(partitions) == 4
                assert len(operation.keys) == 4

    def test_put_targets_one_key(self):
        generator = self._generator(write_ratio=1.0)
        operation = generator.next_operation()
        assert operation.is_put
        assert len(operation.keys) == 1

    def test_value_size_propagated(self):
        generator = self._generator(value_size=128)
        assert generator.next_operation().value_size == 128

    def test_write_fraction_close_to_target(self):
        generator = self._generator(write_ratio=0.1, rot_size=4, seed=7)
        puts = sum(1 for _ in range(4000) if generator.next_operation().is_put)
        expected = DEFAULT_WORKLOAD.with_changes(write_ratio=0.1).put_probability
        assert puts / 4000 == pytest.approx(expected, abs=0.03)

    def test_rot_size_cannot_exceed_partitions(self):
        with pytest.raises(WorkloadError):
            self._generator(partitions=2, rot_size=4)

    def test_deterministic_given_seed(self):
        a = [self._generator(seed=42).next_operation() for _ in range(50)]
        b = [self._generator(seed=42).next_operation() for _ in range(50)]
        assert a == b

    def test_preload_versions_lists_structured_keys(self):
        generator = self._generator(keys=10)
        keys = generator.preload_versions(partition=3, count=5)
        assert keys == [HashPartitioner.structured_key(3, i) for i in range(5)]

    def test_put_fraction_diagnostic(self):
        generator = self._generator(write_ratio=0.0)
        for _ in range(10):
            generator.next_operation()
        assert generator.put_fraction_generated == 0.0
