"""Tests for the cluster configuration, partitioning and topology container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.partitioning import HashPartitioner
from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigurationError
from repro.harness.builder import build_cluster
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.workload.parameters import DEFAULT_WORKLOAD


class TestHashPartitioner:
    def test_partition_in_range(self):
        partitioner = HashPartitioner(8)
        for key in ("alpha", "beta", "gamma", "delta"):
            assert 0 <= partitioner.partition_of(key) < 8

    def test_assignment_is_deterministic(self):
        assert HashPartitioner(16).partition_of("user:42") == \
            HashPartitioner(16).partition_of("user:42")

    def test_structured_keys_land_on_their_partition(self):
        partitioner = HashPartitioner(8)
        for partition in range(8):
            key = HashPartitioner.structured_key(partition, 123)
            assert partitioner.partition_of(key) == partition

    def test_structured_keys_wrap_modulo_partitions(self):
        partitioner = HashPartitioner(4)
        assert partitioner.partition_of(HashPartitioner.structured_key(6, 0)) == 2

    def test_group_by_partition_preserves_order(self):
        partitioner = HashPartitioner(4)
        keys = [HashPartitioner.structured_key(1, i) for i in range(3)]
        groups = partitioner.group_by_partition(keys + ["0:0"])
        assert groups[1] == keys
        assert groups[0] == ["0:0"]

    def test_keys_for_partition(self):
        partitioner = HashPartitioner(4)
        keys = partitioner.keys_for_partition(2, 5)
        assert len(keys) == 5
        assert all(partitioner.partition_of(key) == 2 for key in keys)

    def test_keys_for_partition_validates_index(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(4).keys_for_partition(9, 1)

    def test_at_least_one_partition(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(0)

    @given(st.integers(min_value=1, max_value=64), st.text(min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_any_key_maps_in_range(self, partitions, key):
        assert 0 <= HashPartitioner(partitions).partition_of(key) < partitions


class TestClusterConfig:
    def test_defaults_are_valid(self):
        config = ClusterConfig()
        assert config.total_clients == config.clients_per_dc
        assert config.measurement_seconds > 0

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_partitions=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_dcs=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(clients_per_dc=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(duration_seconds=0.1, warmup_seconds=0.2)
        with pytest.raises(ConfigurationError):
            ClusterConfig(rot_rounds=3.0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(clock_mode="atomic")
        with pytest.raises(ConfigurationError):
            ClusterConfig(stabilization_interval_ms=0)

    def test_with_changes(self):
        config = ClusterConfig().with_changes(num_dcs=2, clients_per_dc=4)
        assert config.num_dcs == 2
        assert config.total_clients == 8

    def test_factories(self):
        assert ClusterConfig.test_scale().num_partitions == 4
        assert ClusterConfig.paper_scale().num_partitions == 32
        bench = ClusterConfig.bench_scale()
        assert bench.cost_model.base_message_us > ClusterConfig().cost_model.base_message_us

    def test_factory_overrides(self):
        config = ClusterConfig.test_scale(num_dcs=2, seed=9)
        assert config.num_dcs == 2
        assert config.seed == 9


class TestCostModel:
    def test_scaled_multiplies_every_parameter(self):
        scaled = CostModel().scaled(3.0)
        assert scaled.base_message_us == pytest.approx(CostModel().base_message_us * 3)
        assert scaled.per_rot_id_us == pytest.approx(CostModel().per_rot_id_us * 3)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            CostModel().scaled(0.0)

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(read_key_us=-1.0)

    def test_costs_are_seconds(self):
        model = CostModel(base_message_us=10.0)
        assert model.message_cost() == pytest.approx(10e-6)

    def test_read_cost_scales_with_keys_and_bytes(self):
        model = CostModel()
        assert model.read_cost(4, 100) > model.read_cost(1, 100)
        assert model.read_cost(1, 10_000) > model.read_cost(1, 8)

    def test_readers_check_cost_scales_with_ids(self):
        model = CostModel()
        assert model.readers_check_cost(500) > model.readers_check_cost(0)


class TestClusterTopology:
    def _topology(self, num_dcs=1, protocol="contrarian"):
        config = ClusterConfig.test_scale(num_dcs=num_dcs, clients_per_dc=2)
        return build_cluster(protocol, config, DEFAULT_WORKLOAD).topology

    def test_server_lookup(self):
        topology = self._topology()
        server = topology.server(0, 2)
        assert server.partition_index == 2
        assert server.dc_id == 0

    def test_server_for_key(self):
        topology = self._topology()
        key = HashPartitioner.structured_key(1, 5)
        assert topology.server_for_key(0, key).partition_index == 1

    def test_unknown_server_rejected(self):
        with pytest.raises(ConfigurationError):
            self._topology().server(3, 0)

    def test_servers_in_dc(self):
        topology = self._topology(num_dcs=2)
        assert len(topology.servers_in_dc(0)) == 4
        assert len(list(topology.all_servers())) == 8

    def test_replicas_of(self):
        topology = self._topology(num_dcs=2)
        replicas = topology.replicas_of(0, 1)
        assert len(replicas) == 1
        assert replicas[0].dc_id == 1
        assert replicas[0].partition_index == 1

    def test_no_replicas_in_single_dc(self):
        assert self._topology().replicas_of(0, 0) == []

    def test_clients_registered_per_dc(self):
        topology = self._topology(num_dcs=2)
        assert len(topology.clients) == 4
        assert len(topology.clients_in_dc(1)) == 2

    def test_client_lookup_by_id(self):
        topology = self._topology()
        client = topology.clients[0]
        assert topology.client_by_id(client.node_id) is client
        with pytest.raises(ConfigurationError):
            topology.client_by_id("nobody")

    def test_duplicate_server_rejected(self):
        config = ClusterConfig.test_scale()
        topology = ClusterTopology(Simulator(), Network(Simulator()), config)
        built = self._topology()
        server = built.server(0, 0)
        topology.add_server(server)
        with pytest.raises(ConfigurationError):
            topology.add_server(server)

    def test_cpu_utilization_without_servers(self):
        config = ClusterConfig.test_scale()
        sim = Simulator()
        topology = ClusterTopology(sim, Network(sim), config)
        assert topology.average_cpu_utilization(1.0) == 0.0
