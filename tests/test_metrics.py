"""Tests for latency recording, run-level aggregation and overhead counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.collectors import MetricsRegistry
from repro.metrics.latency import LatencyRecorder, LatencySummary, percentile
from repro.sim.costs import OverheadCounters


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.99) == 0.0

    def test_bounds(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0

    def test_median_of_odd_list(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_p99_close_to_max(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.99) in (99.0, 100.0)


class TestLatencyRecorder:
    def test_summary_of_empty_recorder(self):
        summary = LatencyRecorder().summary()
        assert summary == LatencySummary.empty()
        assert summary.count == 0

    def test_mean_and_max_in_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        recorder.record(0.003)
        summary = recorder.summary()
        assert summary.count == 2
        assert summary.mean_ms == pytest.approx(2.0)
        assert summary.max_ms == pytest.approx(3.0)

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record(0.001)
        b.record(0.002)
        a.merge(b)
        assert a.count == 2

    def test_samples_ms(self):
        recorder = LatencyRecorder()
        recorder.record(0.0005)
        assert recorder.samples_ms() == [pytest.approx(0.5)]

    @given(st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_are_ordered(self, samples):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        summary = recorder.summary()
        assert summary.p50_ms <= summary.p95_ms <= summary.p99_ms <= summary.max_ms
        # Tolerate float summation rounding when all samples are equal.
        assert summary.mean_ms <= summary.max_ms * (1 + 1e-12) + 1e-12


class TestMetricsRegistry:
    def test_warmup_operations_are_ignored(self):
        registry = MetricsRegistry(warmup_seconds=1.0)
        registry.record_rot(0.5, 0.9)     # completes during warmup
        registry.record_rot(0.9, 1.5)     # completes after warmup
        registry.record_put(0.2, 0.4)
        assert registry.rots_completed == 1
        assert registry.puts_completed == 0

    def test_note_issue_counters(self):
        registry = MetricsRegistry()
        registry.note_issue(is_put=True)
        registry.note_issue(is_put=False)
        registry.note_issue(is_put=False)
        assert registry.puts_issued == 1
        assert registry.rots_issued == 2

    def test_finalize_produces_run_result(self):
        registry = MetricsRegistry(warmup_seconds=0.0)
        for start in range(10):
            registry.record_rot(start * 0.1, start * 0.1 + 0.002)
        registry.record_put(0.0, 0.001)
        result = registry.finalize(protocol="contrarian", num_dcs=1, clients=4,
                                   measurement_seconds=2.0,
                                   overhead=OverheadCounters(),
                                   cpu_utilization=0.5, label="test")
        assert result.throughput_kops == pytest.approx(11 / 2.0 / 1000.0)
        assert result.rot_mean_ms == pytest.approx(2.0)
        assert result.put_mean_ms == pytest.approx(1.0)
        assert result.rots_completed == 10
        assert result.label == "test"

    def test_as_row_is_flat_and_rounded(self):
        registry = MetricsRegistry()
        registry.record_rot(0.0, 0.001)
        result = registry.finalize(protocol="cure", num_dcs=2, clients=8,
                                   measurement_seconds=1.0,
                                   overhead=OverheadCounters(),
                                   cpu_utilization=0.25)
        row = result.as_row()
        assert row["protocol"] == "cure"
        assert row["dcs"] == 2
        assert isinstance(row["throughput_kops"], float)
        assert "rot_avg_ms" in row and "rot_p99_ms" in row

    def test_zero_measurement_window(self):
        registry = MetricsRegistry()
        result = registry.finalize(protocol="x", num_dcs=1, clients=1,
                                   measurement_seconds=0.0,
                                   overhead=OverheadCounters(),
                                   cpu_utilization=0.0)
        assert result.throughput_kops == 0.0


class TestOverheadCounters:
    def test_record_readers_check(self):
        counters = OverheadCounters()
        counters.record_readers_check(distinct_ids=10, cumulative_ids=25,
                                      partitions_contacted=3)
        counters.record_readers_check(distinct_ids=20, cumulative_ids=35,
                                      partitions_contacted=5)
        assert counters.readers_checks == 2
        assert counters.average_distinct_ids_per_check() == pytest.approx(15.0)
        assert counters.average_cumulative_ids_per_check() == pytest.approx(30.0)
        assert counters.average_partitions_per_check() == pytest.approx(4.0)

    def test_averages_with_no_checks(self):
        counters = OverheadCounters()
        assert counters.average_distinct_ids_per_check() == 0.0
        assert counters.average_cumulative_ids_per_check() == 0.0
        assert counters.average_partitions_per_check() == 0.0

    def test_merge_accumulates_everything(self):
        a, b = OverheadCounters(), OverheadCounters()
        a.messages_sent = 10
        a.record_readers_check(5, 8, 2)
        b.messages_sent = 7
        b.blocked_reads = 3
        b.record_readers_check(1, 1, 1)
        a.merge(b)
        assert a.messages_sent == 17
        assert a.blocked_reads == 3
        assert a.readers_checks == 2
        assert a.per_check_distinct == [5, 1]
