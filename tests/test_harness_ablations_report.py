"""Tests for harness/report.py formatting and harness/ablations.py studies."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.harness.ablations import (
    cclo_gc_ablation,
    clock_mode_ablation,
    rot_rounds_ablation,
    stabilization_interval_ablation,
)
from repro.harness.report import (
    crossover_load,
    format_series,
    format_table,
    latency_at_lowest_load,
    peak_throughput,
)
from repro.metrics.collectors import RunResult
from repro.metrics.latency import LatencySummary
from repro.sim.costs import OverheadCounters


def _result(clients: int, throughput: float, rot_mean: float) -> RunResult:
    summary = LatencySummary(count=100, mean_ms=rot_mean, p50_ms=rot_mean,
                             p95_ms=rot_mean * 2, p99_ms=rot_mean * 3,
                             max_ms=rot_mean * 4)
    return RunResult(protocol="x", num_dcs=1, clients=clients,
                     throughput_kops=throughput, rot_latency=summary,
                     put_latency=summary, rots_completed=100,
                     puts_completed=10, overhead=OverheadCounters(),
                     cpu_utilization=0.5)


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "long-name" in lines[3]

    def test_header_wider_than_cells(self):
        text = format_table(["a-wide-header"], [["x"]])
        assert "a-wide-header" in text


class TestFormatSeries:
    def test_one_row_per_result(self):
        series = {"sys-a": [_result(4, 10.0, 0.5), _result(8, 20.0, 0.6)],
                  "sys-b": [_result(4, 5.0, 0.4)]}
        text = format_series(series)
        assert text.count("sys-a") == 2
        assert text.count("sys-b") == 1
        assert "ROT avg (ms)" in text
        assert "ROT p99 (ms)" not in text

    def test_p99_column_is_optional(self):
        text = format_series({"s": [_result(4, 10.0, 0.5)]}, include_p99=True)
        assert "ROT p99 (ms)" in text
        assert "1.500" in text  # p99 = mean * 3


class TestSweepStatistics:
    def test_peak_throughput(self):
        sweep = [_result(4, 10.0, 0.5), _result(16, 30.0, 0.8),
                 _result(64, 25.0, 2.0)]
        assert peak_throughput(sweep) == 30.0
        assert peak_throughput([]) == 0.0

    def test_latency_at_lowest_load(self):
        sweep = [_result(16, 30.0, 0.8), _result(4, 10.0, 0.5)]
        assert latency_at_lowest_load(sweep) == 0.5
        assert latency_at_lowest_load([]) == 0.0

    def test_crossover_load_found(self):
        reference = [_result(4, 10.0, 0.5), _result(16, 30.0, 1.0)]
        challenger = [_result(4, 9.0, 0.8), _result(16, 28.0, 0.9)]
        assert crossover_load(reference, challenger) == 28.0

    def test_crossover_load_absent(self):
        reference = [_result(4, 10.0, 0.5)]
        challenger = [_result(4, 9.0, 0.8)]
        assert crossover_load(reference, challenger) is None


#: Tiny configuration so each ablation study stays a sub-second simulation
#: (4 partitions minimum: the default workload reads 4 partitions per ROT).
TINY = ClusterConfig.test_scale(clients_per_dc=3, keys_per_partition=32,
                                warmup_seconds=0.05, duration_seconds=0.25)


@pytest.mark.slow
class TestAblations:
    def test_rot_rounds_ablation_shapes(self):
        study = rot_rounds_ablation(client_counts=(2, 4), config=TINY)
        assert set(study) == {"1.5-rounds", "2-rounds"}
        for results in study.values():
            assert [result.clients for result in results] == [2, 4]
            assert all(result.rots_completed > 0 for result in results)

    def test_clock_mode_ablation_covers_all_modes(self):
        study = clock_mode_ablation(clients=2, config=TINY)
        assert set(study) == {"hlc", "logical", "physical"}
        # Physical clocks block ROTs on skew; HLC must not.
        assert study["hlc"].overhead.blocked_reads == 0
        assert study["physical"].overhead.blocked_reads > 0

    def test_cclo_gc_ablation_variants(self):
        study = cclo_gc_ablation(clients=3, config=TINY)
        assert set(study) == {"optimized", "long-gc", "no-compression"}
        assert all(result.protocol == "cc-lo" for result in study.values())
        # Without compression a readers check carries at least as many ids.
        assert (study["no-compression"].overhead.average_cumulative_ids_per_check()
                >= study["optimized"].overhead.average_cumulative_ids_per_check())

    def test_stabilization_interval_ablation_keys(self):
        study = stabilization_interval_ablation(
            clients=2, intervals_ms=(5.0, 20.0), config=TINY)
        assert set(study) == {5.0, 20.0}
        for result in study.values():
            assert result.overhead.stabilization_messages > 0
