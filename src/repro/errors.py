"""Exception hierarchy for the ``repro`` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a cluster, workload or protocol configuration is invalid."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class ClockError(ReproError):
    """Raised when a clock is used incorrectly (e.g. non-monotonic update)."""


class StorageError(ReproError):
    """Raised on invalid multi-version storage operations."""


class ProtocolError(ReproError):
    """Raised when a protocol implementation observes an impossible message."""


class ConsistencyViolation(ReproError):
    """Raised by the causal-consistency checker when a history is invalid.

    The checker raises this exception when a read-only transaction observed a
    snapshot that is not causally consistent, or when a session guarantee
    (read-your-writes / monotonic reads) is violated.
    """


class WorkloadError(ReproError):
    """Raised when a workload specification cannot be generated."""


class TheoryError(ReproError):
    """Raised by the theoretical machinery (execution construction) on misuse."""


class RuntimeBackendError(ReproError):
    """A failure of the real-time (asyncio) backend: an operation timed out,
    a task died, or the runtime was used after :meth:`close`."""


class WireFormatError(ReproError):
    """Raised by the wire codec on malformed, truncated or unknown-version
    frames, and on attempts to encode unregistered or unencodable values."""


class TransportError(ReproError):
    """Raised by a message transport: an unroutable destination, a peer that
    cannot be reached, or a connection that failed mid-run."""
