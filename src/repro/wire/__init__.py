"""Wire layer: a versioned codec plus stream framing.

The wire layer is the bottom of the three-layer message path
(wire -> transport -> runtime): it turns the protocol message dataclasses of
:mod:`repro.core.common.messages` — and any dataclass registered through
:func:`register_wire_type` — into self-describing bytes and back, and splits
byte streams into length-prefixed frames.  It knows nothing about sockets,
event loops or protocols; the transports in :mod:`repro.runtime.transport`
own the I/O.

Exports resolve lazily (PEP 562) to keep this package importable without any
heavyweight sibling.
"""

from repro._lazy import make_lazy

_EXPORTS = {
    "BatchFrame": "repro.wire.batch",
    "DEFAULT_FLUSH_POLICY": "repro.wire.batch",
    "FORMAT_BATCH": "repro.wire.codec",
    "FORMAT_BINARY": "repro.wire.codec",
    "FORMAT_JSON": "repro.wire.codec",
    "FlushPolicy": "repro.wire.batch",
    "FrameDecoder": "repro.wire.framing",
    "LENGTH_BYTES": "repro.wire.framing",
    "MAX_BATCH_MESSAGES": "repro.wire.batch",
    "MAX_FRAME_BYTES": "repro.wire.framing",
    "SUPPORTED_WIRE_VERSIONS": "repro.wire.codec",
    "WIRE_VERSION": "repro.wire.codec",
    "decode": "repro.wire.codec",
    "encode": "repro.wire.codec",
    "encode_batch": "repro.wire.batch",
    "frame": "repro.wire.framing",
    "intern_key": "repro.wire.intern",
    "read_frame": "repro.wire.framing",
    "register_wire_type": "repro.wire.codec",
    "registered_wire_types": "repro.wire.codec",
    "write_frame": "repro.wire.framing",
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
