"""Versioned, self-describing wire codec for protocol messages.

Every value that crosses a process boundary is encoded into a *frame body*::

    [magic 0xA7] [wire version] [format tag] [payload ...]

Two payload formats share that header:

* **binary** (:data:`FORMAT_BINARY`, the default) — a compact msgpack-style
  tagged encoding written from scratch (no third-party dependency): small
  integers, strings and containers use single-byte tags with embedded
  lengths; registered dataclasses are encoded as a ``STRUCT`` tag plus a
  16-bit type id plus their field values in declaration order.
* **JSON debug** (:data:`FORMAT_JSON`) — the same object graph rendered as
  human-readable JSON (``{"__wire__": "VectorPutRequest", "fields": {...}}``)
  for protocol debugging (``tcpdump``/log inspection); byte-for-byte bigger,
  value-for-value identical after decoding.

The codec is *self-describing*: a decoder needs only the frame bytes — type
tags identify every registered dataclass, and the header pins the wire
version so incompatible peers fail loudly
(:class:`~repro.errors.WireFormatError`) instead of mis-parsing.

Type registration
-----------------
:func:`register_wire_type` assigns each dataclass a stable numeric id.  All
message types from :mod:`repro.core.common.messages` are registered here (ids
derived from their position in ``WIRE_MESSAGES``); runtime-internal types
(addresses, envelopes, control-plane messages, checker records) register
themselves in their defining modules.  Registration happens at import time in
deterministic order, so every process of a cluster agrees on the id space.

Sequences decode as tuples (the message dataclasses use tuples throughout),
which is what makes ``decode(encode(msg)) == msg`` hold exactly.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import sys
from array import array
from itertools import chain, repeat
from typing import Any, Optional

from repro.core.common import messages as _messages
from repro.errors import WireFormatError
from repro.wire.intern import intern_key

#: First byte of every frame.
MAGIC = 0xA7
#: Current wire version; bumped on payload-layout changes.  Version 2 added
#: trailing optional struct fields (Envelope trace ids, worker trace-event
#: shipping); version-1 frames remain decodable because missing trailing
#: fields fall back to their dataclass defaults.  Version 3 added the batch
#: frame format (:data:`FORMAT_BATCH`, see :mod:`repro.wire.batch`) with
#: columnar struct arrays; versions 1 and 2 remain decodable because no
#: existing tag changed meaning.
WIRE_VERSION = 3
#: Every version this codec can decode.
SUPPORTED_WIRE_VERSIONS = (1, 2, 3)
#: Format tags (third header byte).
FORMAT_BINARY = 0x01
FORMAT_JSON = 0x02
#: Batch frames (wire v3+): N envelopes coalesced into one flush, with
#: homogeneous runs encoded column-wise (see :mod:`repro.wire.batch`).
FORMAT_BATCH = 0x03

_FORMATS = {"binary": FORMAT_BINARY, "json": FORMAT_JSON}

# Binary type tags (msgpack-inspired; fix-ranges inline small values).
_NIL = 0xC0
_FALSE = 0xC2
_TRUE = 0xC3
_BIN8 = 0xC4
_BIN16 = 0xC5
_BIN32 = 0xC6
_BIGINT = 0xC7          # 1-byte length + signed big-endian two's complement
_FLOAT64 = 0xCB
_INT64 = 0xD3           # 8-byte signed big-endian
_STRUCT = 0xD8          # 2-byte type id + field-value array
_STR8 = 0xD9
_STR16 = 0xDA
_STR32 = 0xDB
_ARR16 = 0xDC
_ARR32 = 0xDD
_MAP16 = 0xDE
_MAP32 = 0xDF
_FIXSTR = 0xA0          # 0xA0..0xBF: str, length in low 5 bits
_FIXARR = 0x90          # 0x90..0x9F: array, length in low 4 bits
_FIXMAP = 0x80          # 0x80..0x8F: map, length in low 4 bits

_pack_u16 = struct.Struct(">H").pack
_pack_u32 = struct.Struct(">I").pack
_pack_i64 = struct.Struct(">q").pack
_pack_f64 = struct.Struct(">d").pack
_unpack_u16 = struct.Struct(">H").unpack_from
_unpack_u32 = struct.Struct(">I").unpack_from
_unpack_i64 = struct.Struct(">q").unpack_from
_unpack_f64 = struct.Struct(">d").unpack_from


# --------------------------------------------------------------------------
# Type registry
# --------------------------------------------------------------------------

#: Dynamic registrations start here; ids below are reserved for the built-in
#: message set so the two ranges can grow independently.
DYNAMIC_TYPE_ID_BASE = 1024

_CLASS_TO_ID: dict[type, int] = {}
_ID_TO_CLASS: dict[int, type] = {}
_NAME_TO_CLASS: dict[str, type] = {}
_FIELDS: dict[type, tuple[str, ...]] = {}
_next_dynamic_id = DYNAMIC_TYPE_ID_BASE


def register_wire_type(cls: type, *, type_id: Optional[int] = None) -> type:
    """Register a dataclass for wire encoding under a stable numeric id.

    Without an explicit ``type_id`` the next free dynamic id is assigned;
    since registration runs at import time in deterministic module order,
    every process derives the same id space.  Returns ``cls`` so the function
    doubles as a decorator.  Re-registering the same class is a no-op;
    claiming an id or name another class holds raises
    :class:`~repro.errors.WireFormatError`.
    """
    global _next_dynamic_id
    if not dataclasses.is_dataclass(cls):
        raise WireFormatError(f"{cls!r} is not a dataclass")
    if cls in _CLASS_TO_ID:
        return cls
    if type_id is None:
        type_id = _next_dynamic_id
        _next_dynamic_id += 1
    if type_id in _ID_TO_CLASS:
        raise WireFormatError(
            f"wire type id {type_id} already taken by "
            f"{_ID_TO_CLASS[type_id].__name__}")
    name = cls.__name__
    if name in _NAME_TO_CLASS:
        raise WireFormatError(f"wire type name {name!r} already registered")
    _CLASS_TO_ID[cls] = type_id
    _ID_TO_CLASS[type_id] = cls
    _NAME_TO_CLASS[name] = cls
    _FIELDS[cls] = tuple(f.name for f in dataclasses.fields(cls))
    return cls


def registered_wire_types() -> tuple[type, ...]:
    """Every registered class, in ascending type-id order."""
    return tuple(cls for _tid, cls in sorted(_ID_TO_CLASS.items()))


for _index, _cls in enumerate(_messages.WIRE_MESSAGES):
    register_wire_type(_cls, type_id=_index)


# --------------------------------------------------------------------------
# Binary encoding
# --------------------------------------------------------------------------

def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_NIL)
    elif value is True:
        out.append(_TRUE)
    elif value is False:
        out.append(_FALSE)
    elif type(value) is int:
        if 0 <= value <= 0x7F:
            out.append(value)
        elif -32 <= value < 0:
            out.append(value & 0xFF)
        elif -(2 ** 63) <= value < 2 ** 63:
            out.append(_INT64)
            out += _pack_i64(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big",
                                 signed=True)
            if len(raw) > 255:
                raise WireFormatError("integer too large for the wire")
            out.append(_BIGINT)
            out.append(len(raw))
            out += raw
    elif type(value) is float:
        out.append(_FLOAT64)
        out += _pack_f64(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        n = len(raw)
        if n < 32:
            out.append(_FIXSTR | n)
        elif n < 256:
            out.append(_STR8)
            out.append(n)
        elif n < 65536:
            out.append(_STR16)
            out += _pack_u16(n)
        else:
            out.append(_STR32)
            out += _pack_u32(n)
        out += raw
    elif type(value) is bytes:
        n = len(value)
        if n < 256:
            out.append(_BIN8)
            out.append(n)
        elif n < 65536:
            out.append(_BIN16)
            out += _pack_u16(n)
        else:
            out.append(_BIN32)
            out += _pack_u32(n)
        out += value
    elif type(value) in (tuple, list):
        n = len(value)
        if n < 16:
            out.append(_FIXARR | n)
        elif n < 65536:
            out.append(_ARR16)
            out += _pack_u16(n)
        else:
            out.append(_ARR32)
            out += _pack_u32(n)
        for item in value:
            _encode_value(item, out)
    elif type(value) is dict:
        n = len(value)
        if n < 16:
            out.append(_FIXMAP | n)
        elif n < 65536:
            out.append(_MAP16)
            out += _pack_u16(n)
        else:
            out.append(_MAP32)
            out += _pack_u32(n)
        for key, item in value.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        type_id = _CLASS_TO_ID.get(type(value))
        if type_id is None:
            raise WireFormatError(
                f"cannot encode {type(value).__name__!r}: not a registered "
                f"wire type (see repro.wire.register_wire_type)")
        out.append(_STRUCT)
        out += _pack_u16(type_id)
        _encode_value(tuple(getattr(value, name)
                            for name in _FIELDS[type(value)]), out)


class _Reader:
    """Cursor over a frame payload with bounds-checked reads."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireFormatError(
                f"truncated frame: needed {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise WireFormatError("truncated frame: ran out of bytes")
        value = self.data[self.pos]
        self.pos += 1
        return value


def _decode_value(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag <= 0x7F:
        return tag
    if tag >= 0xE0:
        return tag - 256
    if tag == _NIL:
        return None
    if tag == _TRUE:
        return True
    if tag == _FALSE:
        return False
    if tag == _INT64:
        return _unpack_i64(reader.take(8))[0]
    if tag == _BIGINT:
        length = reader.byte()
        return int.from_bytes(reader.take(length), "big", signed=True)
    if tag == _FLOAT64:
        return _unpack_f64(reader.take(8))[0]
    if _FIXSTR <= tag <= 0xBF:
        return reader.take(tag & 0x1F).decode("utf-8")
    if tag == _STR8:
        return reader.take(reader.byte()).decode("utf-8")
    if tag == _STR16:
        return reader.take(_unpack_u16(reader.take(2))[0]).decode("utf-8")
    if tag == _STR32:
        return reader.take(_unpack_u32(reader.take(4))[0]).decode("utf-8")
    if tag == _BIN8:
        return reader.take(reader.byte())
    if tag == _BIN16:
        return reader.take(_unpack_u16(reader.take(2))[0])
    if tag == _BIN32:
        return reader.take(_unpack_u32(reader.take(4))[0])
    if _FIXARR <= tag <= 0x9F:
        return tuple(_decode_value(reader) for _ in range(tag & 0x0F))
    if tag == _ARR16:
        n = _unpack_u16(reader.take(2))[0]
        return tuple(_decode_value(reader) for _ in range(n))
    if tag == _ARR32:
        n = _unpack_u32(reader.take(4))[0]
        return tuple(_decode_value(reader) for _ in range(n))
    if _FIXMAP <= tag <= 0x8F:
        return {_decode_value(reader): _decode_value(reader)
                for _ in range(tag & 0x0F)}
    if tag == _MAP16:
        n = _unpack_u16(reader.take(2))[0]
        return {_decode_value(reader): _decode_value(reader)
                for _ in range(n)}
    if tag == _MAP32:
        n = _unpack_u32(reader.take(4))[0]
        return {_decode_value(reader): _decode_value(reader)
                for _ in range(n)}
    if tag == _STRUCT:
        type_id = _unpack_u16(reader.take(2))[0]
        cls = _ID_TO_CLASS.get(type_id)
        if cls is None:
            raise WireFormatError(f"unknown wire type id {type_id}")
        values = _decode_value(reader)
        if not isinstance(values, tuple):
            raise WireFormatError(
                f"struct {cls.__name__} payload is not a field array")
        names = _FIELDS[cls]
        if len(values) > len(names):
            raise WireFormatError(
                f"struct {cls.__name__} carries {len(values)} fields, "
                f"expected at most {len(names)}")
        # Fewer values than fields is tolerated when the class declares
        # defaults for the missing trailing fields — that is how frames from
        # older wire versions decode after a field was appended.
        try:
            return cls(*values)
        except (TypeError, ValueError) as exc:
            raise WireFormatError(
                f"cannot reconstruct {cls.__name__} from {len(values)} "
                f"of its {len(names)} fields: {exc}") from exc
    raise WireFormatError(f"unknown binary tag 0x{tag:02X}")


# --------------------------------------------------------------------------
# JSON debug encoding
# --------------------------------------------------------------------------

def _jsonify(value: Any) -> Any:
    if value is None or type(value) in (bool, int, float, str):
        return value
    if type(value) is bytes:
        return {"__bytes__": value.hex()}
    if type(value) in (tuple, list):
        return [_jsonify(item) for item in value]
    if type(value) is dict:
        return {"__map__": [[_jsonify(k), _jsonify(v)]
                            for k, v in value.items()]}
    cls = type(value)
    if cls not in _CLASS_TO_ID:
        raise WireFormatError(
            f"cannot encode {cls.__name__!r}: not a registered wire type "
            f"(see repro.wire.register_wire_type)")
    return {"__wire__": cls.__name__,
            "fields": {name: _jsonify(getattr(value, name))
                       for name in _FIELDS[cls]}}


def _dejsonify(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return tuple(_dejsonify(item) for item in value)
    if isinstance(value, dict):
        if "__bytes__" in value:
            return bytes.fromhex(value["__bytes__"])
        if "__map__" in value:
            return {_dejsonify(k): _dejsonify(v)
                    for k, v in value["__map__"]}
        if "__wire__" in value:
            cls = _NAME_TO_CLASS.get(value["__wire__"])
            if cls is None:
                raise WireFormatError(
                    f"unknown wire type name {value['__wire__']!r}")
            fields = value.get("fields", {})
            names = _FIELDS[cls]
            unknown = set(fields) - set(names)
            if unknown:
                raise WireFormatError(
                    f"struct {cls.__name__} field mismatch: "
                    f"{sorted(fields)} != {sorted(names)}")
            # Absent fields (older wire versions) fall back to dataclass
            # defaults, mirroring the binary decoder's trailing-field rule.
            try:
                return cls(**{name: _dejsonify(fields[name])
                              for name in names if name in fields})
            except (TypeError, ValueError) as exc:
                raise WireFormatError(
                    f"cannot reconstruct {cls.__name__}: {exc}") from exc
        raise WireFormatError(
            f"malformed JSON wire object with keys {sorted(value)}")
    raise WireFormatError(f"unencodable JSON value {value!r}")


# --------------------------------------------------------------------------
# Columnar struct arrays (wire v3)
# --------------------------------------------------------------------------
# A *struct array* encodes N instances of one registered dataclass column by
# column instead of instance by instance.  Per column the encoder picks the
# cheapest of six layouts; the decoder reconstructs instances with one
# ``map(cls, *columns)`` sweep.  Integer columns are raw little-endian int64
# arrays read back through ``array.frombytes`` over a ``memoryview`` (no
# per-value tag dispatch, no intermediate copies); string columns are one
# UTF-8 blob plus a uint16 length array, decoded straight off the
# ``memoryview`` and interned for key-shaped fields.
#
#     struct_array := u16 type_id, u32 count, u8 n_fields, column...
#     column       := u8 kind, payload
#       KIND_GENERIC 0: count standard-encoded values
#       KIND_CONST   1: one standard-encoded value (all N are equal)
#       KIND_I64     2: count * 8 bytes, little-endian signed
#       KIND_STR     3: count * u16 UTF-8 lengths (LE), then the blob
#       KIND_ITUP    4: u16 tuple length L, then count * L int64 (LE)
#       KIND_STRUCT  5: a nested struct array (same count)

KIND_GENERIC = 0
KIND_CONST = 1
KIND_I64 = 2
KIND_STR = 3
KIND_ITUP = 4
KIND_STRUCT = 5

#: Upper bound on one struct array's element count (also the upper bound on
#: envelopes per batch frame; a prefix beyond it means corruption).
MAX_STRUCT_ARRAY = 1 << 16

#: Fields whose decoded strings are interned (bounded key/writer spaces;
#: trace ids and ROT ids are unique per operation and must stay out of the
#: intern cache).
_INTERNED_FIELDS = frozenset({"key", "put_key", "writer"})

_I64_MIN, _I64_MAX = -(2 ** 63), 2 ** 63
_IS_LITTLE_ENDIAN = sys.byteorder == "little"
_SCALARS = (int, float, str, bytes)


def _column_kind(values: list) -> int:
    """Pick the cheapest lossless column layout for ``values``."""
    first = values[0]
    first_type = type(first)
    if first is None or first_type in (bool, *_SCALARS):
        # Constant folding compares types too: 0 == 0.0 and (1,) == (1.0,)
        # are Python-equal but decode to different objects.
        if all(type(v) is first_type and v == first for v in values):
            return KIND_CONST
    elif all(v is first for v in values):
        return KIND_CONST
    if first_type is int:
        if all(type(v) is int and _I64_MIN <= v < _I64_MAX for v in values):
            return KIND_I64
        return KIND_GENERIC
    if first_type is str:
        if all(type(v) is str for v in values):
            return KIND_STR
        return KIND_GENERIC
    if first_type is tuple and first:
        length = len(first)
        if all(type(v) is tuple and len(v) == length
               and all(type(item) is int and _I64_MIN <= item < _I64_MAX
                       for item in v)
               for v in values):
            return KIND_ITUP
        return KIND_GENERIC
    if first_type in _CLASS_TO_ID:
        if all(type(v) is first_type for v in values):
            return KIND_STRUCT
    return KIND_GENERIC


def encode_struct_array(values: list, out: bytearray) -> None:
    """Append the struct-array encoding of ``values`` (same-type, >= 1)."""
    cls = type(values[0])
    type_id = _CLASS_TO_ID.get(cls)
    if type_id is None:
        raise WireFormatError(
            f"cannot encode {cls.__name__!r}: not a registered wire type "
            f"(see repro.wire.register_wire_type)")
    count = len(values)
    if count > MAX_STRUCT_ARRAY:
        raise WireFormatError(
            f"struct array of {count} {cls.__name__} elements exceeds the "
            f"{MAX_STRUCT_ARRAY}-element limit")
    names = _FIELDS[cls]
    out += _pack_u16(type_id)
    out += _pack_u32(count)
    out.append(len(names))
    for name in names:
        column = [getattr(v, name) for v in values]
        kind = _column_kind(column)
        out.append(kind)
        if kind == KIND_CONST:
            _encode_value(column[0], out)
        elif kind == KIND_I64:
            out += struct.pack(f"<{count}q", *column)
        elif kind == KIND_STR:
            blobs = [v.encode("utf-8") for v in column]
            if any(len(blob) > 0xFFFF for blob in blobs):
                out[-1] = KIND_GENERIC
                for value in column:
                    _encode_value(value, out)
                continue
            out += struct.pack(f"<{count}H", *map(len, blobs))
            for blob in blobs:
                out += blob
        elif kind == KIND_ITUP:
            length = len(column[0])
            out += _pack_u16(length)
            out += struct.pack(f"<{count * length}q",
                               *chain.from_iterable(column))
        elif kind == KIND_STRUCT:
            encode_struct_array(column, out)
        else:
            for value in column:
                _encode_value(value, out)


def _take_i64_array(mv: memoryview, pos: int, count: int) -> tuple[array, int]:
    end = pos + count * 8
    if end > len(mv):
        raise WireFormatError(
            f"truncated struct array: int64 column needs {count * 8} bytes "
            f"at offset {pos}, have {len(mv) - pos}")
    values = array("q")
    values.frombytes(mv[pos:end])
    if not _IS_LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        values.byteswap()
    return values, end


def decode_struct_array(data, mv: memoryview, pos: int) -> tuple[list, int]:
    """Decode one struct array at ``pos``; returns ``(instances, new_pos)``.

    ``data`` is the underlying buffer (for the generic-column fallback
    decoder); ``mv`` a memoryview over it, so integer and string columns
    come straight off the receive buffer without intermediate copies.
    """
    if pos + 7 > len(mv):
        raise WireFormatError("truncated struct array header")
    type_id = _unpack_u16(mv, pos)[0]
    count = _unpack_u32(mv, pos + 2)[0]
    n_fields = mv[pos + 6]
    pos += 7
    cls = _ID_TO_CLASS.get(type_id)
    if cls is None:
        raise WireFormatError(f"unknown wire type id {type_id}")
    if count == 0:
        raise WireFormatError(
            f"empty struct array of {cls.__name__} (count must be >= 1)")
    if count > MAX_STRUCT_ARRAY:
        raise WireFormatError(
            f"struct array count {count} exceeds the "
            f"{MAX_STRUCT_ARRAY}-element limit (corrupt frame?)")
    names = _FIELDS[cls]
    if n_fields != len(names):
        raise WireFormatError(
            f"struct array of {cls.__name__} carries {n_fields} columns, "
            f"expected {len(names)}")
    columns = []
    for name in names:
        if pos >= len(mv):
            raise WireFormatError("truncated struct array column header")
        kind = mv[pos]
        pos += 1
        if kind == KIND_CONST:
            reader = _Reader(data, pos)
            value = _decode_value(reader)
            pos = reader.pos
            if name in _INTERNED_FIELDS and type(value) is str:
                value = intern_key(value)
            columns.append(repeat(value, count))
        elif kind == KIND_I64:
            values, pos = _take_i64_array(mv, pos, count)
            columns.append(values)
        elif kind == KIND_STR:
            lengths, end = pos + 2 * count, 0
            if lengths > len(mv):
                raise WireFormatError("truncated struct array string column")
            sizes = array("H")
            sizes.frombytes(mv[pos:lengths])
            if not _IS_LITTLE_ENDIAN:  # pragma: no cover
                sizes.byteswap()
            pos, end = lengths, lengths + sum(sizes)
            if end > len(mv):
                raise WireFormatError("truncated struct array string blob")
            strings: list[str] = []
            if name in _INTERNED_FIELDS:
                for size in sizes:
                    strings.append(intern_key(str(mv[pos:pos + size],
                                                  "utf-8")))
                    pos += size
            else:
                for size in sizes:
                    strings.append(str(mv[pos:pos + size], "utf-8"))
                    pos += size
            columns.append(strings)
        elif kind == KIND_ITUP:
            if pos + 2 > len(mv):
                raise WireFormatError("truncated struct array tuple column")
            length = _unpack_u16(mv, pos)[0]
            values, pos = _take_i64_array(mv, pos + 2, count * length)
            it = iter(values)
            columns.append([tuple(row) for row in zip(*([it] * length))])
        elif kind == KIND_STRUCT:
            values, pos = decode_struct_array(data, mv, pos)
            columns.append(values)
        elif kind == KIND_GENERIC:
            reader = _Reader(data, pos)
            columns.append([_decode_value(reader) for _ in range(count)])
            pos = reader.pos
        else:
            raise WireFormatError(
                f"unknown struct array column kind {kind} "
                f"(field {cls.__name__}.{name})")
    try:
        return list(map(cls, *columns)), pos
    except (TypeError, ValueError) as exc:
        raise WireFormatError(
            f"cannot reconstruct {cls.__name__} column-wise: {exc}") from exc


# --------------------------------------------------------------------------
# Frame API
# --------------------------------------------------------------------------

#: Lazily bound :func:`repro.wire.batch.decode_batch_payload` (the batch
#: module imports this one, so the binding happens on first batch decode).
_decode_batch = None


def encode(value: Any, *, format: str = "binary") -> bytes:
    """Encode ``value`` into a self-contained frame body.

    ``format`` is ``"binary"`` (compact, default) or ``"json"`` (debug).
    """
    try:
        format_tag = _FORMATS[format]
    except KeyError:
        raise WireFormatError(
            f"unknown wire format {format!r}; known: "
            f"{sorted(_FORMATS)}") from None
    out = bytearray((MAGIC, WIRE_VERSION, format_tag))
    if format_tag == FORMAT_BINARY:
        _encode_value(value, out)
    else:
        out += json.dumps(_jsonify(value), separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
    return bytes(out)


def decode(data: bytes) -> Any:
    """Decode one frame body produced by :func:`encode` (either format)."""
    if len(data) < 3:
        raise WireFormatError(
            f"frame too short ({len(data)} bytes); need at least the "
            f"3-byte header")
    if data[0] != MAGIC:
        raise WireFormatError(
            f"bad frame magic 0x{data[0]:02X} (expected 0x{MAGIC:02X})")
    if data[1] not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"unsupported wire version {data[1]} (this codec speaks "
            f"versions {SUPPORTED_WIRE_VERSIONS})")
    format_tag = data[2]
    if format_tag == FORMAT_BINARY:
        reader = _Reader(data, 3)
        value = _decode_value(reader)
        if reader.pos != len(data):
            raise WireFormatError(
                f"{len(data) - reader.pos} trailing bytes after the "
                f"frame payload")
        return value
    if format_tag == FORMAT_BATCH:
        if data[1] < 3:
            raise WireFormatError(
                f"batch frames require wire version >= 3, got {data[1]}")
        global _decode_batch
        if _decode_batch is None:
            from repro.wire.batch import decode_batch_payload
            _decode_batch = decode_batch_payload
        return _decode_batch(data)
    if format_tag == FORMAT_JSON:
        try:
            payload = json.loads(data[3:].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"malformed JSON frame: {exc}") from exc
        return _dejsonify(payload)
    raise WireFormatError(f"unknown wire format tag 0x{format_tag:02X}")


__all__ = [
    "DYNAMIC_TYPE_ID_BASE",
    "FORMAT_BATCH",
    "FORMAT_BINARY",
    "FORMAT_JSON",
    "MAGIC",
    "MAX_STRUCT_ARRAY",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "decode",
    "decode_struct_array",
    "encode",
    "encode_struct_array",
    "register_wire_type",
    "registered_wire_types",
]
