"""Length-prefixed framing for byte streams.

A *frame* on a stream is a 4-byte big-endian payload length followed by the
payload (a codec frame body, see :mod:`repro.wire.codec`).  Two consumers
share the format:

* the asyncio helpers (:func:`read_frame` / :func:`write_frame`) used by the
  TCP transport and the process-cluster control plane; and
* the sans-I/O :class:`FrameDecoder`, an incremental splitter that turns an
  arbitrary chunking of the byte stream back into complete frames (used by
  tests and any non-asyncio integration).

Oversized length prefixes are rejected before any allocation: a corrupted or
hostile peer must not be able to make the receiver reserve gigabytes.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional

from repro.errors import WireFormatError

#: Size of the length prefix.
LENGTH_BYTES = 4
#: Upper bound on a single frame's payload.  Generous for this system (the
#: largest messages are replication updates with small values); a prefix
#: beyond it means stream corruption, not a big message.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_pack_len = struct.Struct(">I").pack
_unpack_len = struct.Struct(">I").unpack


def frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its 4-byte big-endian length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _pack_len(len(payload)) + payload


class FrameDecoder:
    """Incremental frame splitter (sans-I/O).

    Feed arbitrary byte chunks; get back every frame completed so far::

        decoder = FrameDecoder()
        for chunk in stream:
            for payload in decoder.feed(chunk):
                handle(payload)
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append ``data`` and return the payloads of all complete frames."""
        self._buffer += data
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < LENGTH_BYTES:
                break
            (length,) = _unpack_len(self._buffer[:LENGTH_BYTES])
            if length > MAX_FRAME_BYTES:
                raise WireFormatError(
                    f"frame length prefix {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte limit (corrupt stream?)")
            if len(self._buffer) < LENGTH_BYTES + length:
                break
            frames.append(bytes(self._buffer[LENGTH_BYTES:
                                             LENGTH_BYTES + length]))
            del self._buffer[:LENGTH_BYTES + length]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame payload; ``None`` on clean EOF at a frame boundary.

    EOF in the middle of a frame raises :class:`~repro.errors.WireFormatError`
    — a peer that vanished mid-message is an error, not a shutdown.
    """
    try:
        prefix = await reader.readexactly(LENGTH_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireFormatError(
            f"stream ended inside a frame length prefix "
            f"({len(exc.partial)}/{LENGTH_BYTES} bytes)") from exc
    (length,) = _unpack_len(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame length prefix {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt stream?)")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError(
            f"stream ended inside a frame payload "
            f"({len(exc.partial)}/{length} bytes)") from exc


async def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Write one frame and drain the writer's buffer."""
    writer.write(frame(payload))
    await writer.drain()


__all__ = [
    "FrameDecoder",
    "LENGTH_BYTES",
    "MAX_FRAME_BYTES",
    "frame",
    "read_frame",
    "write_frame",
]
