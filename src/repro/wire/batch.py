"""Batch frames: N envelopes coalesced into one length-prefixed flush.

The replication hot path used to pay the full per-message toll — one codec
frame, one length prefix, one queue hop, one socket write — for every
update.  A *batch frame* amortises all of that: the transport coalesces the
envelopes bound for one peer and flushes them as a single frame whose
payload is::

    [magic 0xA7] [wire version 3] [format 0x03]
    [u32 envelope count] [u16 section count]
    section ...

    section := [u8 1] struct-array            -- columnar run (see below)
             | [u8 0] [u32 count] value ...   -- generic run

Consecutive envelopes whose payloads share one message type (the normal
case: replication and heartbeat streams are homogeneous) become a *columnar*
section — one :func:`repro.wire.codec.encode_struct_array` of the envelopes,
which stores each field as an array (raw int64 columns, one UTF-8 blob per
string column, constants folded to a single value) instead of per-message
tagged dicts.  The receive side decodes integer columns through
``memoryview`` casts straight off the buffer and reconstructs messages with
one C-level ``map`` sweep, interning key fields as it goes.  Short
heterogeneous runs fall back to the generic per-value encoding.

Batch frames are a wire **version 3** format: a v2 peer rejects the format
tag loudly instead of mis-parsing, and a v3 peer still decodes every v1/v2
frame (nothing batched is ever required — batching is a transport policy,
see :class:`FlushPolicy` and :mod:`repro.runtime.transport`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import WireFormatError
from repro.wire.codec import (
    FORMAT_BATCH,
    MAGIC,
    MAX_STRUCT_ARRAY,
    WIRE_VERSION,
    _decode_value,
    _encode_value,
    _pack_u16,
    _pack_u32,
    _Reader,
    _unpack_u16,
    _unpack_u32,
    decode_struct_array,
    encode_struct_array,
)

#: Upper bound on envelopes per batch frame (mirrors the struct-array limit;
#: a count beyond it means stream corruption, not a big batch).
MAX_BATCH_MESSAGES = MAX_STRUCT_ARRAY

#: Minimum run length worth a columnar section; shorter runs pay the
#: column headers without amortising them.
MIN_COLUMNAR_RUN = 4

_SECTION_GENERIC = 0
_SECTION_COLUMNAR = 1


@dataclass(frozen=True)
class BatchFrame:
    """The decoded form of one batch frame: the coalesced envelopes, in
    send order.  Transports fan these back out to per-node delivery."""

    envelopes: tuple

    def __len__(self) -> int:
        return len(self.envelopes)


@dataclass(frozen=True)
class FlushPolicy:
    """When a batching transport flushes its pending envelopes.

    A flush happens at whichever comes first:

    * ``max_messages`` envelopes are pending for one peer, or
    * the pending envelopes' estimated size reaches ``max_bytes``, or
    * the event loop goes idle (the transport schedules a ``call_soon``
      flush with the first buffered envelope, so a batch never waits on
      future traffic — worst-case added latency is one loop iteration).
    """

    max_messages: int = 128
    max_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.max_messages < 1 or self.max_messages > MAX_BATCH_MESSAGES:
            raise ValueError(
                f"max_messages must be in [1, {MAX_BATCH_MESSAGES}], "
                f"got {self.max_messages}")
        if self.max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {self.max_bytes}")


#: The default policy of batching transports (``batch=True`` call sites).
DEFAULT_FLUSH_POLICY = FlushPolicy()


def encode_batch(envelopes: Sequence) -> bytes:
    """Encode ``envelopes`` into one self-contained batch frame body.

    Every envelope must be a registered wire dataclass with a ``payload``
    attribute (the run splitter groups by payload type); in practice they
    are :class:`repro.runtime.transport.Envelope` instances.
    """
    count = len(envelopes)
    if count > MAX_BATCH_MESSAGES:
        raise WireFormatError(
            f"batch of {count} envelopes exceeds the "
            f"{MAX_BATCH_MESSAGES}-envelope limit")
    out = bytearray((MAGIC, WIRE_VERSION, FORMAT_BATCH))
    out += _pack_u32(count)
    sections_at = len(out)
    out += _pack_u16(0)  # patched once the section count is known
    n_sections = 0
    start = 0
    while start < count:
        run_type = type(envelopes[start].payload)
        end = start + 1
        while end < count and type(envelopes[end].payload) is run_type:
            end += 1
        if end - start >= MIN_COLUMNAR_RUN:
            out.append(_SECTION_COLUMNAR)
            encode_struct_array(list(envelopes[start:end]), out)
        else:
            # Also swallow the following short runs: adjacent generic
            # sections would only repeat the section header.
            while end < count:
                next_type = type(envelopes[end].payload)
                run_to = end + 1
                while (run_to < count
                       and type(envelopes[run_to].payload) is next_type):
                    run_to += 1
                if run_to - end >= MIN_COLUMNAR_RUN:
                    break
                end = run_to
            out.append(_SECTION_GENERIC)
            out += _pack_u32(end - start)
            for envelope in envelopes[start:end]:
                _encode_value(envelope, out)
        n_sections += 1
        start = end
    out[sections_at:sections_at + 2] = _pack_u16(n_sections)
    return bytes(out)


def encode_record_batch(records: Sequence) -> bytes:
    """Encode a homogeneous record sequence as one compact blob.

    The observation-streaming path ships ``RecordedPut``/``RecordedRot``
    chunks from worker processes with the same columnar struct-array layout
    batch frames use for envelope runs — a u32 total count followed by one
    struct array per ``MAX_STRUCT_ARRAY``-bounded slice.  An empty sequence
    encodes as zero bytes (chunks are routinely one-sided: a drain interval
    may carry only puts or only rots).
    """
    if not records:
        return b""
    out = bytearray(_pack_u32(len(records)))
    start = 0
    while start < len(records):
        end = min(start + MAX_STRUCT_ARRAY, len(records))
        encode_struct_array(list(records[start:end]), out)
        start = end
    return bytes(out)


def decode_record_batch(blob: bytes) -> list:
    """Decode one :func:`encode_record_batch` blob back into records."""
    if not blob:
        return []
    if len(blob) < 4:
        raise WireFormatError(
            f"record batch too short ({len(blob)} bytes); need the 4-byte "
            f"count prefix")
    count = _unpack_u32(blob, 0)[0]
    mv = memoryview(blob)
    pos = 4
    records: list = []
    while len(records) < count:
        values, pos = decode_struct_array(blob, mv, pos)
        records.extend(values)
    if len(records) != count:
        raise WireFormatError(
            f"record batch announced {count} records but carries "
            f"{len(records)}")
    if pos != len(blob):
        raise WireFormatError(
            f"{len(blob) - pos} trailing bytes after the record batch")
    return records


def decode_batch_payload(data: bytes) -> BatchFrame:
    """Decode one batch frame body (header already validated by ``decode``)."""
    if len(data) < 9:
        raise WireFormatError(
            f"batch frame too short ({len(data)} bytes); need at least the "
            f"9-byte batch header")
    count = _unpack_u32(data, 3)[0]
    n_sections = _unpack_u16(data, 7)[0]
    if count > MAX_BATCH_MESSAGES:
        raise WireFormatError(
            f"batch count {count} exceeds the {MAX_BATCH_MESSAGES}-envelope "
            f"limit (corrupt frame?)")
    mv = memoryview(data)
    pos = 9
    envelopes: list = []
    for _section in range(n_sections):
        if pos >= len(data):
            raise WireFormatError("truncated batch frame: missing section")
        kind = data[pos]
        pos += 1
        if kind == _SECTION_COLUMNAR:
            values, pos = decode_struct_array(data, mv, pos)
            envelopes.extend(values)
        elif kind == _SECTION_GENERIC:
            if pos + 4 > len(data):
                raise WireFormatError(
                    "truncated batch frame: generic section header")
            section_count = _unpack_u32(data, pos)[0]
            if section_count > MAX_BATCH_MESSAGES:
                raise WireFormatError(
                    f"batch section count {section_count} exceeds the "
                    f"{MAX_BATCH_MESSAGES}-envelope limit (corrupt frame?)")
            reader = _Reader(data, pos + 4)
            for _ in range(section_count):
                envelopes.append(_decode_value(reader))
            pos = reader.pos
        else:
            raise WireFormatError(f"unknown batch section kind {kind}")
    if pos != len(data):
        raise WireFormatError(
            f"{len(data) - pos} trailing bytes after the batch payload")
    if len(envelopes) != count:
        raise WireFormatError(
            f"batch frame announced {count} envelopes but carries "
            f"{len(envelopes)}")
    return BatchFrame(envelopes=tuple(envelopes))


__all__ = [
    "BatchFrame",
    "DEFAULT_FLUSH_POLICY",
    "FlushPolicy",
    "MAX_BATCH_MESSAGES",
    "MIN_COLUMNAR_RUN",
    "encode_batch",
    "decode_batch_payload",
    "decode_record_batch",
    "encode_record_batch",
]
