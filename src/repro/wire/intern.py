"""Bounded key interning for the replication hot path.

Replication traffic repeats a bounded key space at a high rate: every
decoded ``ReplicateUpdate`` used to allocate a fresh ``str`` for a key the
server has seen thousands of times, and every downstream dict lookup
(store install, partitioner hashing, readers-check indexes) re-hashed it.
:func:`intern_key` maps equal key strings onto one canonical object, so

* decode allocates each distinct key once instead of once per message, and
* downstream ``dict``/``set`` operations hit the pointer-equality fast path
  (CPython compares identical string objects without touching the bytes).

The cache is a plain dict bounded by :data:`MAX_INTERNED_KEYS`: once full it
stops admitting new entries (returning the argument unchanged) instead of
evicting, because the workload key space is fixed per run — eviction churn
would only help adversarial streams, which simply degrade to no interning.
``sys.intern`` is deliberately not used: it pins strings for the process
lifetime and is reserved for identifier-shaped strings.
"""

from __future__ import annotations

#: Upper bound on distinct cached keys (~64k entries; a few MB worst case).
MAX_INTERNED_KEYS = 1 << 16

_CACHE: dict[str, str] = {}


def intern_key(key: str) -> str:
    """The canonical object for ``key`` (``key`` itself on cache overflow)."""
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if len(_CACHE) < MAX_INTERNED_KEYS:
        _CACHE[key] = key
    return key


def interned_count() -> int:
    """Number of keys currently cached (for tests and diagnostics)."""
    return len(_CACHE)


def clear_interned() -> None:
    """Drop the cache (tests only; never needed on the hot path)."""
    _CACHE.clear()


__all__ = ["MAX_INTERNED_KEYS", "clear_interned", "intern_key",
           "interned_count"]
