"""Cluster topology, configuration and key partitioning.

Exports resolve lazily: :mod:`repro.cluster.partitioning` is pure (the
kernels use it), while :mod:`repro.cluster.config` pulls in the simulator's
cost/latency models — laziness keeps the former importable without the
latter.
"""

from repro._lazy import make_lazy

_EXPORTS = {
    "ClusterConfig": "repro.cluster.config",
    "HashPartitioner": "repro.cluster.partitioning",
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
