"""Cluster topology, configuration and key partitioning."""

from repro.cluster.config import ClusterConfig
from repro.cluster.partitioning import HashPartitioner

__all__ = ["ClusterConfig", "HashPartitioner"]
