"""Initial-keyspace seeding shared by the cluster builders.

Both backends preload every partition's store with an initial version of
every key before serving traffic (the paper preloads 1M keys per partition
before measuring).  The invariant lives here, once: initial versions carry
timestamp 0, an all-zero dependency vector and no dependencies, so they
belong to every snapshot and never trigger readers checks.  The simulated
builder (:mod:`repro.harness.builder`) and the real-time one
(:mod:`repro.runtime.cluster`) both call :func:`preload_initial_keyspace`.

This module must stay importable without ``repro.sim``.
"""

from __future__ import annotations

import random
from typing import Iterable, Tuple

from repro.causal.vectors import zero_vector
from repro.cluster.partitioning import HashPartitioner
from repro.storage.mvstore import MultiVersionStore
from repro.storage.version import Version


def derive_node_seed(master_seed: object, *scope: object) -> str:
    """The deterministic per-node seed string ``"<master>:<scope...>"``.

    Every source of randomness in a cluster (clock skew draws, client
    kernels, workload generators) is seeded from the master seed plus a
    structural scope such as ``("client", dc, index)``.  Centralising the
    derivation means a node constructed in a worker process draws *exactly*
    the same stream as the same node constructed in-process.
    """
    return ":".join(str(part) for part in (master_seed, *scope))


def node_rng(master_seed: object, *scope: object) -> random.Random:
    """A :class:`random.Random` seeded with :func:`derive_node_seed`."""
    return random.Random(derive_node_seed(master_seed, *scope))


def preload_initial_keyspace(stores: Iterable[Tuple[int, MultiVersionStore]],
                             *, num_dcs: int, keys_per_partition: int,
                             value_size: int) -> None:
    """Install an initial version of every key into every given store.

    ``stores`` yields ``(partition_index, store)`` pairs — one per
    (DC, partition) server; keys follow the partitioner's structured-key
    scheme.
    """
    initial_vector = zero_vector(num_dcs)
    for partition_index, store in stores:
        versions = (
            Version(key=HashPartitioner.structured_key(partition_index, index),
                    value=None, timestamp=0, origin_dc=0,
                    size_bytes=value_size,
                    dependency_vector=initial_vector, visible=True)
            for index in range(keys_per_partition))
        store.preload(versions)


__all__ = ["derive_node_seed", "node_rng", "preload_initial_keyspace"]
