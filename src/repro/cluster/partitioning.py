"""Deterministic key-to-partition assignment.

The paper's system model (Section 2.3) shards the data set into ``N > 1``
partitions by a hash function; each key is deterministically assigned to one
partition, a PUT is sent to that partition and a ROT fans out to the
partitions storing the requested keys.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError


class HashPartitioner:
    """Maps keys to partition indices with a stable hash.

    Python's built-in ``hash`` is randomised per process, so a stable digest
    (blake2b) is used instead; partition assignment must be identical across
    runs for experiments to be reproducible.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ConfigurationError(
                f"need at least one partition, got {num_partitions}")
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    @staticmethod
    def structured_key(partition: int, index: int) -> str:
        """Build a key whose partition assignment is explicit.

        The workload generator mirrors the paper's setup of "one key per
        partition per ROT, 1M keys per partition"; generating millions of keys
        by rejection sampling against a hash would be wasteful, so structured
        keys encode their partition directly (``"<partition>:<index>"``) and
        :meth:`partition_of` honours the encoding.
        """
        return f"{partition}:{index}"

    def partition_of(self, key: str) -> int:
        """Partition index that stores ``key``."""
        head, separator, _ = key.partition(":")
        if separator and head.isdigit():
            return int(head) % self._num_partitions
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self._num_partitions

    def group_by_partition(self, keys: list[str]) -> dict[int, list[str]]:
        """Group ``keys`` by the partition that stores them (order preserved)."""
        groups: dict[int, list[str]] = {}
        for key in keys:
            groups.setdefault(self.partition_of(key), []).append(key)
        return groups

    def keys_for_partition(self, partition: int, num_keys: int,
                           prefix: str = "key") -> list[str]:
        """Generate ``num_keys`` distinct keys that hash to ``partition``.

        Used by the workload generator so that a ROT spanning ``p`` partitions
        can pick exactly one key on each of ``p`` distinct partitions, as in
        the paper's workloads.
        """
        if not 0 <= partition < self._num_partitions:
            raise ConfigurationError(
                f"partition {partition} out of range [0, {self._num_partitions})")
        found: list[str] = []
        candidate = 0
        while len(found) < num_keys:
            key = f"{prefix}-{candidate}"
            if self.partition_of(key) == partition:
                found.append(key)
            candidate += 1
        return found


__all__ = ["HashPartitioner"]
