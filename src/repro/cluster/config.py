"""Cluster and run configuration.

:class:`ClusterConfig` gathers every knob an experiment needs: topology
(partitions, data centers, clients), the CPU cost model, the network latency
model, the clock-skew model, protocol timers (stabilization period, CC-LO
reader GC window) and the run durations.  The defaults are the *bench-scale*
configuration documented in EXPERIMENTS.md: a scaled-down version of the
paper's 32-partition / 2-DC testbed that preserves the qualitative behaviour
while staying cheap enough to simulate in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.clocks.physical import SkewModel
from repro.errors import ConfigurationError
from repro.sim.costs import CostModel
from repro.sim.network import LatencyModel


@dataclass(frozen=True)
class ClusterConfig:
    """Full configuration of a simulated cluster run.

    Attributes
    ----------
    num_partitions:
        Number of partitions per DC (the paper uses 32; the bench-scale
        default is 8).
    num_dcs:
        Number of data centers (1 or 2 in the paper's evaluation).
    clients_per_dc:
        Number of closed-loop client threads per DC.
    keys_per_partition:
        Size of the keyspace on each partition (paper: 1M; scaled down so the
        zipfian sampler and store stay small).
    stabilization_interval_ms:
        Period of the GSS stabilization protocol (paper: 5 ms).
    heartbeat_interval_ms:
        Idle partitions advertise their clock at this period so the GSS keeps
        progressing (folded into the stabilization broadcast).
    cclo_gc_window_ms:
        CC-LO old-reader garbage-collection window (paper's optimised value:
        500 ms; the original COPS-SNOW used 5000 ms).
    cclo_one_id_per_client:
        Whether readers-check responses are compressed to at most one ROT id
        per client (the paper's second optimisation).
    warmup_seconds / duration_seconds:
        Measurement window; operations completing before the warmup are
        excluded from the statistics.
    rot_rounds:
        Contrarian only: 1.5 (one-and-a-half rounds, default) or 2.0.
    clock_mode:
        Contrarian only: "hlc" (default), "logical" or "physical"; used by the
        clock ablation.  Cure always uses physical clocks, CC-LO logical ones.
    server_threads:
        Hardware-thread multiplier of each partition server's CPU.
    max_versions_per_key:
        Version-chain retention limit of the multi-version store.
    seed:
        Master seed for all randomness in the run.
    """

    num_partitions: int = 8
    num_dcs: int = 1
    clients_per_dc: int = 32
    keys_per_partition: int = 1000
    cost_model: CostModel = field(default_factory=CostModel)
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    skew_model: SkewModel = field(default_factory=SkewModel)
    stabilization_interval_ms: float = 5.0
    heartbeat_interval_ms: float = 5.0
    cclo_gc_window_ms: float = 500.0
    cclo_one_id_per_client: bool = True
    warmup_seconds: float = 0.25
    duration_seconds: float = 1.5
    rot_rounds: float = 1.5
    clock_mode: str = "hlc"
    server_threads: int = 1
    max_versions_per_key: int = 16
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        if self.num_dcs < 1:
            raise ConfigurationError("num_dcs must be >= 1")
        if self.clients_per_dc < 1:
            raise ConfigurationError("clients_per_dc must be >= 1")
        if self.keys_per_partition < 1:
            raise ConfigurationError("keys_per_partition must be >= 1")
        if self.duration_seconds <= self.warmup_seconds:
            raise ConfigurationError(
                "duration_seconds must be greater than warmup_seconds")
        if self.rot_rounds not in (1.5, 2.0):
            raise ConfigurationError("rot_rounds must be 1.5 or 2.0")
        if self.clock_mode not in ("hlc", "logical", "physical"):
            raise ConfigurationError(
                f"clock_mode must be 'hlc', 'logical' or 'physical', got {self.clock_mode!r}")
        if self.stabilization_interval_ms <= 0:
            raise ConfigurationError("stabilization_interval_ms must be positive")
        if self.cclo_gc_window_ms <= 0:
            raise ConfigurationError("cclo_gc_window_ms must be positive")

    # ------------------------------------------------------------ convenience
    @property
    def total_clients(self) -> int:
        """Total number of closed-loop clients across all DCs."""
        return self.clients_per_dc * self.num_dcs

    @property
    def measurement_seconds(self) -> float:
        """Length of the measurement window (duration minus warmup)."""
        return self.duration_seconds - self.warmup_seconds

    def with_changes(self, **changes: object) -> "ClusterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @staticmethod
    def paper_scale(**overrides: object) -> "ClusterConfig":
        """The configuration closest to the paper's testbed.

        32 partitions, 1M keys per partition and 90-second runs; only usable
        for targeted experiments because a full load sweep at this scale is
        slow in pure Python.
        """
        base = ClusterConfig(num_partitions=32, keys_per_partition=1_000_000,
                             clients_per_dc=256, warmup_seconds=5.0,
                             duration_seconds=90.0)
        return base.with_changes(**overrides) if overrides else base

    @staticmethod
    def bench_scale(**overrides: object) -> "ClusterConfig":
        """The configuration used by the benchmark suite.

        Uses the default 8-partition topology but scales the CPU cost model up
        by 4x so that load sweeps saturate after a few thousand operations —
        cheap enough to re-simulate every figure in pure Python while keeping
        the relative costs of the protocols (and hence every qualitative
        result) unchanged.  See EXPERIMENTS.md for the mapping to the paper's
        absolute numbers.
        """
        base = ClusterConfig(cost_model=CostModel().scaled(4.0),
                             keys_per_partition=400,
                             warmup_seconds=0.2, duration_seconds=1.0)
        return base.with_changes(**overrides) if overrides else base

    @staticmethod
    def test_scale(**overrides: object) -> "ClusterConfig":
        """A tiny configuration for unit and integration tests."""
        base = ClusterConfig(num_partitions=4, clients_per_dc=8,
                             keys_per_partition=64, warmup_seconds=0.1,
                             duration_seconds=0.6)
        return base.with_changes(**overrides) if overrides else base


__all__ = ["ClusterConfig"]
