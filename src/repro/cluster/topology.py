"""Cluster topology container.

A :class:`ClusterTopology` holds the simulated pieces of one run: the
simulator, the network, the partition servers of every DC and the closed-loop
clients.  It is populated by the harness builder
(:mod:`repro.harness.builder`) once the protocol is chosen; protocol code only
uses the lookup methods (``server_for_key``, ``replicas_of`` ...), never the
construction details.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.partitioning import HashPartitioner
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.common.client import BaseClient
    from repro.core.common.server import PartitionServer


class ActiveRotRegistry:
    """Tracks in-flight ROTs per data center (min-active-snapshot GC input).

    When fault scenarios run, version collection must not evict versions an
    in-flight ROT can still legally read: under a partition (or while the
    post-heal replication backlog drains) the stable snapshot freezes while
    writes keep truncating hot-key version chains, so unconstrained eviction
    fabricates unreadable snapshots that the real protocols do not have.
    Protocol clients register a ROT when it is issued (vector coordinators
    attach the chosen snapshot vector once it is computed) and deregister it
    on completion; retention policies query the registry for the active
    floor.  The registry is only created by the fault controller — on the
    healthy path ``ClusterTopology.rot_registry`` stays ``None`` and the
    protocols take none of these code paths.
    """

    def __init__(self, num_dcs: int) -> None:
        self._active: list[dict[str, Optional[tuple[int, ...]]]] = \
            [{} for _ in range(num_dcs)]

    def register(self, dc: int, rot_id: str,
                 snapshot: Optional[tuple[int, ...]] = None) -> None:
        """Record an in-flight ROT (optionally with its snapshot vector)."""
        self._active[dc][rot_id] = snapshot

    def attach_snapshot(self, dc: int, rot_id: str,
                        snapshot: tuple[int, ...]) -> None:
        """Attach the coordinator-chosen snapshot to a registered ROT."""
        if rot_id in self._active[dc]:
            self._active[dc][rot_id] = snapshot

    def deregister(self, dc: int, rot_id: str) -> None:
        """Drop a completed ROT."""
        self._active[dc].pop(rot_id, None)

    def active_count(self, dc: int) -> int:
        """Number of in-flight ROTs in ``dc`` (diagnostics)."""
        return len(self._active[dc])

    def snapshot_floor(self, dc: int,
                       base: tuple[int, ...]) -> tuple[int, ...]:
        """Entrywise min of ``base`` and every active snapshot in ``dc``."""
        floor = list(base)
        for snapshot in self._active[dc].values():
            if snapshot is None:
                continue
            for index, entry in enumerate(snapshot):
                if entry < floor[index]:
                    floor[index] = entry
        return tuple(floor)

    def any_active(self, dc: int, rot_ids: Iterable[str]) -> bool:
        """Whether any of ``rot_ids`` belongs to an in-flight ROT in ``dc``."""
        active = self._active[dc]
        return any(rot_id in active for rot_id in rot_ids)


class ClusterTopology:
    """All simulated nodes of one run, indexed by DC and partition."""

    def __init__(self, sim: Simulator, network: Network,
                 config: ClusterConfig) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.partitioner = HashPartitioner(config.num_partitions)
        self._servers: dict[tuple[int, int], "PartitionServer"] = {}
        self._clients: list["BaseClient"] = []
        self._clients_by_id: dict[str, "BaseClient"] = {}
        #: In-flight ROT tracking; ``None`` on the healthy path, created via
        #: :meth:`enable_rot_tracking` when a fault scenario is installed.
        self.rot_registry: Optional[ActiveRotRegistry] = None

    def enable_rot_tracking(self) -> ActiveRotRegistry:
        """Create (or return) the in-flight ROT registry."""
        if self.rot_registry is None:
            self.rot_registry = ActiveRotRegistry(self.config.num_dcs)
        return self.rot_registry

    # ---------------------------------------------------------------- servers
    def add_server(self, server: "PartitionServer") -> None:
        """Register a partition server at ``(server.dc_id, server.partition_index)``."""
        slot = (server.dc_id, server.partition_index)
        if slot in self._servers:
            raise ConfigurationError(f"duplicate server for DC/partition {slot}")
        self._servers[slot] = server

    def server(self, dc: int, partition: int) -> "PartitionServer":
        """The server hosting ``partition`` in data center ``dc``."""
        try:
            return self._servers[(dc, partition)]
        except KeyError as exc:
            raise ConfigurationError(
                f"no server registered for DC {dc} partition {partition}") from exc

    def server_for_key(self, dc: int, key: str) -> "PartitionServer":
        """The server storing ``key`` in data center ``dc``."""
        return self.server(dc, self.partitioner.partition_of(key))

    def servers_in_dc(self, dc: int) -> list["PartitionServer"]:
        """All partition servers in data center ``dc``, ordered by partition."""
        return [self._servers[(dc, partition)]
                for partition in range(self.config.num_partitions)
                if (dc, partition) in self._servers]

    def all_servers(self) -> Iterator["PartitionServer"]:
        """All partition servers across every DC."""
        return iter(self._servers.values())

    def replicas_of(self, dc: int, partition: int) -> list["PartitionServer"]:
        """The replicas of ``partition`` in every data center other than ``dc``."""
        return [self._servers[(other_dc, partition)]
                for other_dc in range(self.config.num_dcs)
                if other_dc != dc and (other_dc, partition) in self._servers]

    def cross_dc_links(self, dc: int) -> list[tuple[int, int]]:
        """Directed ``(src_dc, dst_dc)`` link pairs between ``dc`` and the rest.

        Used by the fault controller to sever or degrade every link a DC
        partition affects (both directions of each pair).
        """
        links: list[tuple[int, int]] = []
        for other in range(self.config.num_dcs):
            if other != dc:
                links.append((dc, other))
                links.append((other, dc))
        return links

    # ---------------------------------------------------------------- clients
    def add_client(self, client: "BaseClient") -> None:
        """Register a closed-loop client."""
        self._clients.append(client)
        self._clients_by_id[client.node_id] = client

    def client_by_id(self, node_id: str) -> "BaseClient":
        """Look up a client by its node identifier (used to route replies)."""
        try:
            return self._clients_by_id[node_id]
        except KeyError as exc:
            raise ConfigurationError(f"unknown client {node_id!r}") from exc

    @property
    def clients(self) -> list["BaseClient"]:
        return list(self._clients)

    def clients_in_dc(self, dc: int) -> list["BaseClient"]:
        """Clients attached to data center ``dc``."""
        return [client for client in self._clients if client.dc_id == dc]

    # ------------------------------------------------------------------ stats
    def total_server_busy_time(self) -> float:
        """Sum of CPU busy time across all partition servers."""
        return sum(server.stats.busy_time for server in self._servers.values())

    def average_cpu_utilization(self, elapsed: float) -> float:
        """Mean CPU utilisation across partition servers."""
        servers = list(self._servers.values())
        if not servers or elapsed <= 0:
            return 0.0
        return sum(server.stats.utilization(elapsed) for server in servers) / len(servers)


__all__ = ["ActiveRotRegistry", "ClusterTopology"]
