"""Exporters: Chrome-trace/Perfetto timelines and Prometheus text snapshots.

Two output formats, both dependency-free:

* :func:`write_chrome_trace` renders event streams as Chrome trace-event JSON
  (``{"traceEvents": [...]}``) — open it at ``chrome://tracing`` or
  https://ui.perfetto.dev.  Client operations with matched start/finish
  events become complete (``"X"``) spans; every other event is an instant
  (``"i"``).  Each group of events (one per protocol, or just one for a
  single run) maps to a Perfetto *process* row and each emitting node to a
  *thread* row, named via ``"M"`` metadata records.
* :func:`prometheus_snapshot` renders run counters, latency summaries and
  bus health as Prometheus text exposition format (``# TYPE`` + samples),
  greppable and scrapable without a client library.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Mapping, Optional, Sequence

from repro.metrics.latency import LatencySummary
from repro.obs.events import OP_FINISH, OP_START, TraceEvent

#: Quantile labels for LatencySummary → Prometheus summary conversion.
_SUMMARY_QUANTILES = (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms"))


def chrome_trace_events(events: Sequence[TraceEvent], *, pid: int = 0,
                        group: str = "") -> List[dict]:
    """Convert one event stream into Chrome trace-event records.

    ``pid`` is the Perfetto process row; ``group`` its display name.
    Timestamps are microseconds relative to the stream's first event, so
    sim (virtual-time) and realtime (wall-clock) streams both start at 0.
    """
    records: List[dict] = []
    if group:
        records.append({"ph": "M", "pid": pid, "name": "process_name",
                        "args": {"name": group}})
    if not events:
        return records
    origin = min(event.ts for event in events)
    tids: Dict[str, int] = {}
    # One span per in-flight client operation: op_start opens, the next
    # op_finish on the same (node, trace) closes.
    open_spans: Dict[tuple, dict] = {}
    for event in events:
        tid = tids.get(event.node)
        if tid is None:
            tid = tids[event.node] = len(tids) + 1
            records.append({"ph": "M", "pid": pid, "tid": tid,
                            "name": "thread_name",
                            "args": {"name": event.node}})
        ts_us = (event.ts - origin) * 1e6
        args = {key: value for key, value in event.data}
        if event.trace is not None:
            args["trace"] = event.trace
        if event.kind == OP_START:
            open_spans[(event.node, event.trace)] = {
                "ph": "X", "pid": pid, "tid": tid, "cat": "op",
                "name": event.name or event.kind, "ts": ts_us, "dur": 0.0,
                "args": args}
        elif event.kind == OP_FINISH:
            span = open_spans.pop((event.node, event.trace), None)
            if span is not None:
                span["dur"] = max(ts_us - span["ts"], 0.0)
                records.append(span)
            else:
                records.append({"ph": "i", "pid": pid, "tid": tid, "s": "t",
                                "cat": event.kind, "name": event.name or
                                event.kind, "ts": ts_us, "args": args})
        else:
            records.append({"ph": "i", "pid": pid, "tid": tid, "s": "t",
                            "cat": event.kind,
                            "name": event.name or event.kind,
                            "ts": ts_us, "args": args})
    # Operations still in flight at the end of the stream export as
    # zero-duration spans rather than disappearing.
    records.extend(open_spans.values())
    return records


def write_chrome_trace(path: str,
                       groups: Mapping[str, Sequence[TraceEvent]],
                       *, metadata: Optional[dict] = None) -> dict:
    """Write a Chrome-trace JSON file merging one or more event groups.

    ``groups`` maps a display label (e.g. protocol name) to its events; each
    label becomes one Perfetto process row.  Returns summary statistics
    (events and spans per group) for benchmark reports.
    """
    trace_events: List[dict] = []
    stats: Dict[str, int] = {}
    for pid, (label, events) in enumerate(sorted(groups.items()), start=1):
        records = chrome_trace_events(events, pid=pid, group=label or "run")
        trace_events.extend(records)
        stats[label or "run"] = len(events)
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if metadata:
        document["metadata"] = metadata
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return {"path": path, "records": len(trace_events),
            "events_per_group": stats}


def _metric(lines: List[str], name: str, kind: str, value,
            help_text: str = "") -> None:
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    lines.append(f"{name} {value}")


def _summary_metric(lines: List[str], name: str, summary: LatencySummary,
                    help_text: str = "") -> None:
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} summary")
    payload = asdict(summary)
    for quantile, field_name in _SUMMARY_QUANTILES:
        lines.append(f'{name}{{quantile="{quantile}"}} {payload[field_name]}')
    lines.append(f"{name}_count {summary.count}")
    lines.append(f"{name}_max {summary.max_ms}")
    lines.append(f"{name}_mean {summary.mean_ms}")


def prometheus_snapshot(*, metrics=None, overhead=None, bus=None,
                        assembler=None, result=None,
                        prefix: str = "repro") -> str:
    """Render current counters/gauges/summaries as Prometheus text format.

    Every argument is optional; pass whichever telemetry sources exist:
    a live :class:`~repro.metrics.collectors.MetricsRegistry`, merged
    :class:`~repro.metrics.overheads.OverheadCounters`, an
    :class:`~repro.obs.bus.EventBus`, a
    :class:`~repro.obs.trace.TraceAssembler`, or a finalized
    :class:`~repro.metrics.collectors.RunResult`.
    """
    lines: List[str] = []
    if metrics is not None:
        _metric(lines, f"{prefix}_rots_completed_total", "counter",
                metrics.rots_completed, "Completed ROTs after warmup")
        _metric(lines, f"{prefix}_puts_completed_total", "counter",
                metrics.puts_completed, "Completed PUTs after warmup")
        _metric(lines, f"{prefix}_rots_issued_total", "counter",
                metrics.rots_issued, "Issued ROTs including warmup")
        _metric(lines, f"{prefix}_puts_issued_total", "counter",
                metrics.puts_issued, "Issued PUTs including warmup")
        _summary_metric(lines, f"{prefix}_rot_latency_ms",
                        metrics.rot_latencies.summary(),
                        "ROT latency distribution (milliseconds)")
        _summary_metric(lines, f"{prefix}_put_latency_ms",
                        metrics.put_latencies.summary(),
                        "PUT latency distribution (milliseconds)")
    if result is not None:
        _metric(lines, f"{prefix}_throughput_kops", "gauge",
                result.throughput_kops, "Run throughput in kops/s")
        _metric(lines, f"{prefix}_cpu_utilization", "gauge",
                result.cpu_utilization, "Average server CPU utilization")
        visibility = getattr(result, "visibility_trace", None)
        if visibility is not None:
            _summary_metric(lines, f"{prefix}_visibility_lag_ms", visibility,
                            "Per-write issue-to-remote-visible lag "
                            "(milliseconds)")
    if overhead is not None:
        for field_name in ("messages_sent", "bytes_sent", "readers_checks",
                           "readers_check_messages", "rot_ids_distinct",
                           "rot_ids_cumulative", "dependency_entries_sent",
                           "stabilization_messages", "replication_messages",
                           "blocked_reads"):
            _metric(lines, f"{prefix}_{field_name}_total", "counter",
                    getattr(overhead, field_name))
        _metric(lines, f"{prefix}_block_time_seconds_total", "counter",
                overhead.total_block_time)
    if bus is not None:
        _metric(lines, f"{prefix}_trace_events_emitted_total", "counter",
                bus.next_seq, "Trace events emitted on this bus")
        _metric(lines, f"{prefix}_trace_events_dropped_total", "counter",
                bus.dropped, "Trace events evicted by the ring buffer")
        _metric(lines, f"{prefix}_trace_events_buffered", "gauge", len(bus))
    if assembler is not None:
        _metric(lines, f"{prefix}_trace_sources", "gauge",
                len(assembler.sources), "Event streams merged into the "
                "global timeline")
        _metric(lines, f"{prefix}_trace_events_total", "counter",
                len(assembler.events()))
        _metric(lines, f"{prefix}_trace_events_lost_total", "counter",
                assembler.total_dropped(),
                "Sequence gaps detected across all sources")
        _summary_metric(lines, f"{prefix}_visibility_lag_assembled_ms",
                        assembler.visibility_summary(),
                        "Assembled per-write remote-visibility lag "
                        "(milliseconds)")
    return "\n".join(lines) + "\n"


__all__ = ["chrome_trace_events", "prometheus_snapshot", "write_chrome_trace"]
