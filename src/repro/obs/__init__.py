"""Observability: structured event bus, causal traces, and exporters.

The paper's central claim is a *tradeoff between operation latency and
update-visibility latency*; this package makes that tradeoff observable per
write instead of only as end-of-run aggregates.  A low-overhead
:class:`~repro.obs.bus.EventBus` collects typed
:class:`~repro.obs.events.TraceEvent` records (op start/finish, message
send/recv, replication apply, GSS advance, remote visibility), each optionally
tagged with a compact trace id minted at the issuing client.  A
:class:`~repro.obs.trace.TraceAssembler` merges event streams from the sim,
an in-process realtime cluster, or many TCP worker processes into one global
timeline, reconstructs per-write lifecycle chains
(issue → send → apply → visible), and summarises remote-visibility lag — the
paper's Fig. 2 metric measured directly.  Exporters render the timeline as
Chrome-trace/Perfetto JSON and the counters as a Prometheus text snapshot.

Tracing is strictly opt-in: with no bus attached every emit site is a single
attribute load plus a ``None`` check, and trace metadata threaded through the
simulator is pure annotation (no RNG draws, no event reordering), so
scenario-free sim runs stay bit-identical to untraced runs.
"""

from repro.obs.bus import DEFAULT_BUS_CAPACITY, EventBus
from repro.obs.events import (
    EFFECT,
    EVENT_KINDS,
    GSS_ADVANCE,
    MSG_RECV,
    MSG_SEND,
    OP_FINISH,
    OP_START,
    REPLICATE_APPLY,
    TraceEvent,
    VISIBLE,
)
from repro.obs.export import (
    chrome_trace_events,
    prometheus_snapshot,
    write_chrome_trace,
)
from repro.obs.trace import TraceAssembler, WriteChain, render_span_tree

__all__ = [
    "DEFAULT_BUS_CAPACITY",
    "EFFECT",
    "EVENT_KINDS",
    "EventBus",
    "GSS_ADVANCE",
    "MSG_RECV",
    "MSG_SEND",
    "OP_FINISH",
    "OP_START",
    "REPLICATE_APPLY",
    "TraceAssembler",
    "TraceEvent",
    "VISIBLE",
    "WriteChain",
    "chrome_trace_events",
    "prometheus_snapshot",
    "render_span_tree",
    "write_chrome_trace",
]
