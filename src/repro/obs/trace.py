"""Global timeline assembly and write-lifecycle chains.

A :class:`TraceAssembler` merges event streams from any number of sources —
the single sim bus, an in-process realtime bus, or one bus per TCP worker
process — into one globally ordered timeline.  Per source it verifies the
bus sequence numbers are contiguous (ring overflow and transport loss both
surface as gaps), and across the merged stream it reconstructs each traced
write's lifecycle chain::

    op_start (issue, origin DC)
      └─ msg_send ReplicateUpdate / CcloReplicateUpdate   (send)
           └─ replicate_apply @ remote DC                 (apply)
                └─ visible @ remote DC                    (visible)

The issue→visible gap per remote DC is the paper's update-visibility latency;
:meth:`TraceAssembler.visibility_summary` folds those lags into the same
:class:`~repro.metrics.latency.LatencySummary` shape the rest of the metrics
stack uses, which is what lands in ``RunResult.visibility_trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.obs.events import (
    MSG_SEND,
    OP_FINISH,
    OP_START,
    REPLICATE_APPLY,
    TraceEvent,
    VISIBLE,
)

#: Message class names that carry a write to remote DCs (vector protocols
#: and CC-LO respectively); a trace's first such send is its "send" step.
REPLICATION_MESSAGES = ("ReplicateUpdate", "CcloReplicateUpdate")


@dataclass
class WriteChain:
    """Lifecycle milestones of one traced write, keyed by trace id."""

    trace: str
    key: str = ""
    origin_dc: int = -1
    issue_ts: Optional[float] = None
    send_ts: Optional[float] = None
    finish_ts: Optional[float] = None
    applies: Dict[int, float] = field(default_factory=dict)
    visibles: Dict[int, float] = field(default_factory=dict)

    def visibility_lags(self) -> Dict[int, float]:
        """Per-remote-DC issue→visible lag in seconds (empty until issued)."""
        if self.issue_ts is None:
            return {}
        return {dc: ts - self.issue_ts for dc, ts in self.visibles.items()}

    def is_complete(self, num_remote_dcs: int) -> bool:
        """Whether the full issue→send→apply→visible chain was observed
        for ``num_remote_dcs`` remote data centers."""
        return (self.issue_ts is not None
                and self.send_ts is not None
                and len(self.applies) >= num_remote_dcs
                and len(self.visibles) >= num_remote_dcs)


@dataclass
class _SourceStream:
    events: List[TraceEvent] = field(default_factory=list)
    declared_dropped: int = 0


class TraceAssembler:
    """Merges per-process event streams into one verified global timeline."""

    def __init__(self) -> None:
        self._sources: Dict[str, _SourceStream] = {}

    # ------------------------------------------------------------- ingestion
    def add_events(self, events: Iterable[TraceEvent], *,
                   source: str = "local", dropped: int = 0) -> None:
        """Fold one batch of events from ``source`` into the timeline.

        ``dropped`` is the emitting bus's cumulative drop counter (not a
        per-batch delta), so repeated ingestion from the same source keeps
        the maximum.
        """
        stream = self._sources.setdefault(source, _SourceStream())
        stream.events.extend(events)
        stream.declared_dropped = max(stream.declared_dropped, dropped)

    def ingest_bus(self, bus, *, source: Optional[str] = None) -> None:
        """Drain an :class:`~repro.obs.bus.EventBus` into the timeline."""
        self.add_events(bus.drain(), source=source or bus.source,
                        dropped=bus.dropped)

    # ------------------------------------------------------------- integrity
    def sequence_gaps(self) -> Dict[str, int]:
        """Per-source count of missing sequence numbers (0 = gap-free).

        Counts both declared ring drops and silent losses: the seq range a
        source covered minus the events that actually arrived.
        """
        gaps: Dict[str, int] = {}
        for source, stream in self._sources.items():
            if not stream.events:
                gaps[source] = stream.declared_dropped
                continue
            seqs = sorted(event.seq for event in stream.events)
            span = seqs[-1] - seqs[0] + 1
            missing = span - len(seqs)
            # seqs start at 0 on every bus; a stream whose first seq is > 0
            # lost its head (ring eviction).
            missing += seqs[0]
            gaps[source] = max(missing, stream.declared_dropped)
        return gaps

    def total_dropped(self) -> int:
        """Events lost across all sources (assembler-level gap check)."""
        return sum(self.sequence_gaps().values())

    @property
    def sources(self) -> Tuple[str, ...]:
        return tuple(sorted(self._sources))

    # --------------------------------------------------------------- queries
    def events(self) -> Tuple[TraceEvent, ...]:
        """The merged timeline ordered by timestamp (source/seq tiebreak)."""
        merged = [(event.ts, source, event.seq, event)
                  for source, stream in self._sources.items()
                  for event in stream.events]
        merged.sort(key=lambda item: item[:3])
        return tuple(item[3] for item in merged)

    def events_for(self, trace: str) -> Tuple[TraceEvent, ...]:
        """Timeline slice for one trace id."""
        return tuple(event for event in self.events() if event.trace == trace)

    def write_chains(self) -> Dict[str, WriteChain]:
        """Reconstruct the lifecycle chain of every traced write."""
        chains: Dict[str, WriteChain] = {}
        for event in self.events():
            trace = event.trace
            if trace is None:
                continue
            kind = event.kind
            if kind == OP_START and event.name == "put":
                chain = chains.setdefault(trace, WriteChain(trace=trace))
                if chain.issue_ts is None:
                    chain.issue_ts = event.ts
                    chain.origin_dc = event.dc
            elif kind == MSG_SEND and event.name in REPLICATION_MESSAGES:
                chain = chains.get(trace)
                if chain is not None and chain.send_ts is None:
                    chain.send_ts = event.ts
            elif kind == REPLICATE_APPLY:
                chain = chains.get(trace)
                if chain is not None:
                    chain.applies.setdefault(event.dc, event.ts)
                    if not chain.key:
                        chain.key = event.name
            elif kind == VISIBLE:
                chain = chains.get(trace)
                if chain is not None:
                    chain.visibles.setdefault(event.dc, event.ts)
                    if not chain.key:
                        chain.key = event.name
            elif kind == OP_FINISH and event.name == "put":
                chain = chains.get(trace)
                if chain is not None and chain.finish_ts is None:
                    chain.finish_ts = event.ts
        return chains

    def complete_chains(self, num_remote_dcs: int) -> List[WriteChain]:
        """Writes whose full issue→send→apply→visible chain was captured."""
        return [chain for chain in self.write_chains().values()
                if chain.is_complete(num_remote_dcs)]

    def visibility_lags(self) -> List[Tuple[str, int, float]]:
        """Every observed ``(trace, remote_dc, issue→visible seconds)``."""
        lags: List[Tuple[str, int, float]] = []
        for chain in self.write_chains().values():
            for dc, lag in sorted(chain.visibility_lags().items()):
                lags.append((chain.trace, dc, lag))
        return lags

    def visibility_summary(self) -> LatencySummary:
        """Distribution of per-write remote-visibility lag (Fig. 2 metric)."""
        recorder = LatencyRecorder()
        recorder.extend(lag for _trace, _dc, lag in self.visibility_lags())
        return recorder.summary()


def render_span_tree(events: Sequence[TraceEvent], *,
                     unit: str = "ms") -> str:
    """Render one trace's events as an annotated, chronologically nested tree.

    Events are grouped into spans per node (a node's consecutive events form
    one branch) with each line annotated with the offset from the trace's
    first event.  ``unit`` is ``"ms"`` (default) or ``"us"``.
    """
    if not events:
        return "(no events)"
    scale, suffix = (1e3, "ms") if unit == "ms" else (1e6, "µs")
    ordered = sorted(events, key=lambda event: (event.ts, event.node, event.seq))
    origin = ordered[0].ts
    trace = ordered[0].trace
    lines = [f"trace {trace}" if trace else "trace (untraced events)"]
    current_node = None
    for event in ordered:
        offset = (event.ts - origin) * scale
        if event.node != current_node:
            current_node = event.node
            dc = f" (dc{event.dc})" if event.dc >= 0 else ""
            lines.append(f"├─ {event.node}{dc}")
        detail = f" {event.name}" if event.name else ""
        extra = "".join(f" {key}={value}" for key, value in event.data)
        lines.append(f"│   ├─ +{offset:9.3f}{suffix}  {event.kind}{detail}{extra}")
    # Close the tree with rounded corners on the last branch.
    for index in range(len(lines) - 1, 0, -1):
        if lines[index].startswith("│   ├─"):
            lines[index] = "│   └─" + lines[index][len("│   ├─"):]
            break
    for index in range(len(lines) - 1, 0, -1):
        if lines[index].startswith("├─"):
            tail = [lines[index].replace("├─", "└─", 1)]
            for line in lines[index + 1:]:
                tail.append("    " + line[len("│   "):] if line.startswith("│   ")
                            else line)
            lines[index:] = tail
            break
    return "\n".join(lines)


__all__ = ["REPLICATION_MESSAGES", "TraceAssembler", "WriteChain",
           "render_span_tree"]
