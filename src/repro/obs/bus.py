"""Bounded, time-source-pluggable event bus.

One :class:`EventBus` instance serves one process (or, in the simulator, one
run): every instrumented node holds a reference and calls :meth:`EventBus.emit`
behind a ``tracer is not None`` guard, so a disabled bus costs exactly one
attribute load per potential emit site.  The buffer is a bounded ring — a
runaway run cannot exhaust memory — and the sequence counter keeps advancing
when the ring evicts, so the :class:`~repro.obs.trace.TraceAssembler`'s
sequence-gap check catches overflow the same way it catches transport loss.

Timestamps come from a pluggable time source (anything with a ``.now``
float attribute — the :class:`~repro.sim.engine.Simulator` itself, a
:class:`~repro.clocks.timesource.WallClock`, or a test
:class:`~repro.clocks.timesource.FixedClock`), so simulated runs emit
virtual-time events and realtime runs emit run-relative wall-clock events
that are comparable across processes synced to one wall epoch.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.clocks.timesource import TimeSource
from repro.obs.events import TraceEvent

#: Default ring capacity; ~260k events bounds a trace-enabled smoke run
#: while capping the buffer at tens of megabytes.
DEFAULT_BUS_CAPACITY = 1 << 18


class EventBus:
    """Collects :class:`~repro.obs.events.TraceEvent` records from one process."""

    __slots__ = ("time_source", "source", "capacity", "next_seq", "dropped",
                 "_events")

    def __init__(self, time_source: TimeSource, *,
                 capacity: int = DEFAULT_BUS_CAPACITY,
                 source: str = "local") -> None:
        if capacity < 1:
            raise ValueError(f"bus capacity must be positive, got {capacity}")
        self.time_source = time_source
        self.source = source
        self.capacity = capacity
        self.next_seq = 0
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, node: str, kind: str, *, trace: Optional[str] = None,
             name: str = "", dc: int = -1,
             data: Tuple[Tuple[str, object], ...] = ()) -> None:
        """Record one event stamped with the current time-source reading.

        Callers guard this with ``if tracer is not None`` so a disabled bus
        never reaches here; the emit itself is one dataclass construction
        and a deque append.
        """
        seq = self.next_seq
        self.next_seq = seq + 1
        events = self._events
        if len(events) == self.capacity:
            # The deque evicts the oldest entry on append; count it so the
            # assembler can report the loss even before it sees the seq gap.
            self.dropped += 1
        events.append(TraceEvent(seq=seq, ts=self.time_source.now, node=node,
                                 kind=kind, trace=trace, name=name, dc=dc,
                                 data=data))

    def events(self) -> Tuple[TraceEvent, ...]:
        """Snapshot of the buffered events, oldest first."""
        return tuple(self._events)

    def drain(self) -> Tuple[TraceEvent, ...]:
        """Snapshot the buffer and clear it (used when shipping to a parent)."""
        events = tuple(self._events)
        self._events.clear()
        return events

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"EventBus(source={self.source!r}, buffered={len(self)}, "
                f"emitted={self.next_seq}, dropped={self.dropped})")


__all__ = ["DEFAULT_BUS_CAPACITY", "EventBus"]
