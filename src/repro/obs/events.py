"""Typed trace events: the vocabulary of the observability layer.

One frozen dataclass, :class:`TraceEvent`, covers the whole taxonomy; the
``kind`` field names the lifecycle step.  The taxonomy follows a write's life
through the system:

``op_start`` / ``op_finish``
    A client issued / completed an operation (``name`` is ``"put"`` or
    ``"rot"``).  ``op_start`` is where the trace id is minted.
``msg_send`` / ``msg_recv``
    A node handed a protocol message to the network / started handling one
    (``name`` is the message class name).
``effect``
    A kernel side effect other than a send — currently timer arming
    (``name`` is ``set-timer:<tag>``).
``replicate_apply``
    A remote DC's partition server installed a replicated version
    (``name`` is the key).
``gss_advance``
    A partition's Global Stable Snapshot moved forward (vector protocols).
``visible``
    A replicated version became readable in a remote DC — for the vector
    protocols the moment the GSS covers its dependency vector, for CC-LO the
    moment its readers check finalises.  The gap between a trace's
    ``op_start`` and its ``visible`` events is the paper's update-visibility
    latency, measured directly.

Events are wire-registered (type id 524) so TCP worker processes can ship
their buffers back to the parent over the existing control plane.  ``data``
is a tuple of ``(key, value)`` pairs rather than a dict to keep the dataclass
hashable and the encoding compact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.wire.codec import register_wire_type

#: Reserved wire type id for :class:`TraceEvent` (runtime-internal range).
TRACE_EVENT_TYPE_ID = 524

OP_START = "op_start"
OP_FINISH = "op_finish"
EFFECT = "effect"
MSG_SEND = "msg_send"
MSG_RECV = "msg_recv"
BATCH_FLUSH = "batch_flush"
BATCH_RECV = "batch_recv"
REPLICATE_APPLY = "replicate_apply"
GSS_ADVANCE = "gss_advance"
VISIBLE = "visible"
WINDOW_SEAL = "window_seal"
WINDOW_RETIRE = "window_retire"

#: Every event kind the bus emits, in rough lifecycle order.  The batch
#: kinds are transport-level: a batching transport emits one ``batch_flush``
#: per coalesced frame it writes and one ``batch_recv`` per frame it fans
#: back out (``data`` carries the envelope count), while the per-message
#: ``msg_send``/``msg_recv`` events keep being emitted by the nodes
#: themselves — so traces stay gap-free whether or not batching is on.
#: The window kinds are validation-side: the streaming checker emits one
#: ``window_seal`` when a verification window is handed to the checkers and
#: one ``window_retire`` when its versions leave the live set (``data``
#: carries op/version counts and the live-set size, so a timeline shows the
#: checker's memory ceiling directly).
EVENT_KINDS = (OP_START, OP_FINISH, EFFECT, MSG_SEND, MSG_RECV,
               BATCH_FLUSH, BATCH_RECV, REPLICATE_APPLY, GSS_ADVANCE,
               VISIBLE, WINDOW_SEAL, WINDOW_RETIRE)


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation from a node.

    ``seq`` is the emitting bus's monotonic sequence number (it advances even
    when the ring buffer drops, so losses show up as gaps).  ``ts`` is the
    bus's time source at emission: virtual seconds in the simulator,
    wall-clock run seconds in realtime clusters.  ``trace`` carries the
    causal trace id of the operation this event belongs to, or ``None`` for
    background activity (stabilization broadcasts, heartbeats).
    """

    seq: int
    ts: float
    node: str
    kind: str
    trace: Optional[str] = None
    name: str = ""
    dc: int = -1
    data: Tuple[Tuple[str, object], ...] = ()

    def datum(self, key: str, default: object = None) -> object:
        """Look up one ``data`` pair by key."""
        for name, value in self.data:
            if name == key:
                return value
        return default


register_wire_type(TraceEvent, type_id=TRACE_EVENT_TYPE_ID)

__all__ = [
    "BATCH_FLUSH",
    "BATCH_RECV",
    "EFFECT",
    "EVENT_KINDS",
    "GSS_ADVANCE",
    "MSG_RECV",
    "MSG_SEND",
    "OP_FINISH",
    "OP_START",
    "REPLICATE_APPLY",
    "TRACE_EVENT_TYPE_ID",
    "TraceEvent",
    "VISIBLE",
    "WINDOW_RETIRE",
    "WINDOW_SEAL",
]
