"""Fault injection and dynamic scenarios.

This package turns a static simulation run into a *scenario lab*: a
:class:`Scenario` is a deterministic, picklable schedule of fault events
(DC partitions, link degradation with message loss, slow or paused servers,
load spikes, workload shifts, hot-key churn) and a :class:`FaultController`
executes it against a built cluster, slicing the run's metrics into
per-phase :class:`~repro.metrics.collectors.PhaseSlice` rows along the way.

Quick start::

    from repro.faults import Scenario
    from repro.harness import run_experiment

    scenario = Scenario.at(0.8).partition_dc(1).at(1.6).heal()
    outcome = run_experiment("contrarian", config, scenario=scenario,
                             check_consistency=True)
    for phase in outcome.result.phases:
        print(phase.name, phase.throughput_kops, phase.rot_latency.mean_ms)

Canned scenarios live in :mod:`repro.faults.library` and are resolvable by
name through :func:`get_scenario` (used by the benchmark CLIs).
"""

from repro.faults.controller import BASELINE_PHASE, FaultController
from repro.faults.library import SCENARIOS, get_scenario
from repro.faults.scenario import ACTIONS, FaultEvent, Scenario

__all__ = [
    "ACTIONS",
    "BASELINE_PHASE",
    "FaultController",
    "FaultEvent",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
]
