"""Time-scripted fault scenarios.

A :class:`Scenario` is an immutable, picklable schedule of
:class:`FaultEvent` entries — "at simulated time *t*, do *action* with these
parameters".  Scenarios are pure data: they carry no references to a
simulator or cluster, so the same scenario object can be executed by the
serial runner, pickled into a :class:`~repro.harness.parallel.RunSpec` and
shipped to a worker process, or stored next to a benchmark result.  The
:class:`~repro.faults.controller.FaultController` interprets the events
against a built cluster.

Scenarios are written with a small chainable builder::

    scenario = (Scenario.at(1.0).partition_dc(1)
                        .at(2.0).heal()
                        .named("dc1-partition"))

``Scenario.at(t)`` (on the class or on an instance) opens a clause at time
``t``; the clause methods append one event and return the extended scenario,
so clauses chain naturally.  Each event optionally starts a named *phase*
(defaulting to a name derived from the action); phases drive the per-phase
metric slices of :class:`~repro.metrics.collectors.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError

#: Actions a scenario event may carry, with the phase name each one starts by
#: default (``None`` means the event does not open a new phase by itself).
ACTIONS: dict[str, Optional[str]] = {
    "partition_dc": "partition",
    "partition_link": "partition",
    "heal": "healed",
    "degrade_link": "degraded",
    "slow_dc": "degraded",
    "slow_server": "degraded",
    "pause_server": "paused",
    "resume_server": "resumed",
    "load_factor": "load-shift",
    "workload": "workload-shift",
    "rotate_keys": "hot-key-churn",
    "mark_phase": None,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    event stays hashable and picklable; values must be plain picklable types.
    ``phase`` is the name of the metric phase the event opens ("" = none).
    """

    at: float
    action: str
    params: tuple[tuple[str, object], ...] = ()
    phase: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(
                f"fault events cannot be scheduled before t=0, got {self.at}")
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"known: {', '.join(sorted(ACTIONS))}")

    def kwargs(self) -> dict[str, object]:
        """The event parameters as a keyword dictionary."""
        return dict(self.params)

    def describe(self) -> str:
        """One-line human-readable rendition (used in logs and reports)."""
        args = ", ".join(f"{name}={value!r}" for name, value in self.params)
        phase = f" [phase {self.phase!r}]" if self.phase else ""
        return f"t={self.at:g}s {self.action}({args}){phase}"


class _AtDescriptor:
    """Makes ``Scenario.at(t)`` work on both the class and instances.

    On the class it opens a clause against a fresh empty scenario, so
    schedules can start with ``Scenario.at(1.0)...``; on an instance it
    extends that instance, which is what the chained ``...at(2.0).heal()``
    calls resolve to.
    """

    def __get__(self, obj, objtype=None):
        scenario = obj if obj is not None else objtype()

        def at(time: float) -> "_Clause":
            return _Clause(scenario, float(time))

        return at


@dataclass(frozen=True)
class Scenario:
    """An immutable schedule of fault events.

    Events are kept sorted by time (stable for equal times, preserving the
    order clauses were written in), so execution order is independent of the
    order the schedule was built in.
    """

    events: tuple[FaultEvent, ...] = ()
    name: str = ""

    at = _AtDescriptor()

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def duration(self) -> float:
        """Time of the last scheduled event (0.0 for an empty scenario)."""
        return self.events[-1].at if self.events else 0.0

    def named(self, name: str) -> "Scenario":
        """Return a copy carrying a display name."""
        return replace(self, name=name)

    def with_event(self, event: FaultEvent) -> "Scenario":
        """Return a copy with ``event`` merged into the (sorted) schedule."""
        events = sorted(self.events + (event,), key=lambda entry: entry.at)
        return replace(self, events=tuple(events))

    def phases(self) -> list[tuple[float, str]]:
        """The ``(start_time, phase_name)`` boundaries the scenario defines."""
        return [(event.at, event.phase) for event in self.events if event.phase]

    def describe(self) -> str:
        """Multi-line human-readable rendition of the schedule."""
        title = self.name or "scenario"
        lines = [f"{title} ({len(self.events)} events)"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)


@dataclass(frozen=True)
class _Clause:
    """A pending ``at(t)`` clause; each method appends one event."""

    scenario: Scenario
    time: float

    # ------------------------------------------------------------------ plumbing
    def _add(self, action: str, phase: Optional[str] = None,
             **params: object) -> Scenario:
        if phase is None:
            phase = ACTIONS[action] or ""
        event = FaultEvent(at=self.time, action=action,
                           params=tuple(sorted(params.items())), phase=phase)
        return self.scenario.with_event(event)

    # ------------------------------------------------------------------ network
    def partition_dc(self, dc: int, *, phase: Optional[str] = None) -> Scenario:
        """Sever every link between data center ``dc`` and the rest."""
        return self._add("partition_dc", phase, dc=int(dc))

    def partition_link(self, dc_a: int, dc_b: int, *,
                       phase: Optional[str] = None) -> Scenario:
        """Sever the links between two specific data centers (both ways)."""
        return self._add("partition_link", phase, dc_a=int(dc_a), dc_b=int(dc_b))

    def heal(self, *, phase: Optional[str] = None) -> Scenario:
        """Restore the infrastructure: unblock and un-degrade every link,
        reset node slowdowns and resume paused nodes.  Workload shifts are
        *not* reverted (use another ``workload`` clause for that)."""
        return self._add("heal", phase)

    def degrade_link(self, dc_a: int, dc_b: int, *,
                     latency_factor: float = 1.0, extra_us: float = 0.0,
                     jitter_factor: float = 1.0, drop_probability: float = 0.0,
                     redelivery_timeout_us: float = 2000.0,
                     phase: Optional[str] = None) -> Scenario:
        """Degrade the links between two DCs (both directions): multiply the
        base latency, add a fixed extra delay, amplify jitter, and drop
        messages with probability ``drop_probability`` (each drop costs one
        ``redelivery_timeout_us`` retransmission delay — channels stay
        reliable and FIFO, like TCP under loss)."""
        return self._add("degrade_link", phase, dc_a=int(dc_a), dc_b=int(dc_b),
                         latency_factor=float(latency_factor),
                         extra_us=float(extra_us),
                         jitter_factor=float(jitter_factor),
                         drop_probability=float(drop_probability),
                         redelivery_timeout_us=float(redelivery_timeout_us))

    # -------------------------------------------------------------------- nodes
    def slow_dc(self, dc: int, factor: float, *,
                phase: Optional[str] = None) -> Scenario:
        """Inflate the CPU service time of every server in ``dc``."""
        return self._add("slow_dc", phase, dc=int(dc), factor=float(factor))

    def slow_server(self, dc: int, partition: int, factor: float, *,
                    phase: Optional[str] = None) -> Scenario:
        """Inflate the CPU service time of one partition server."""
        return self._add("slow_server", phase, dc=int(dc),
                         partition=int(partition), factor=float(factor))

    def pause_server(self, dc: int, partition: int, *,
                     phase: Optional[str] = None) -> Scenario:
        """Pause one partition server's CPU (a GC-stall-style freeze):
        messages queue up but none is served until ``resume_server``."""
        return self._add("pause_server", phase, dc=int(dc),
                         partition=int(partition))

    def resume_server(self, dc: int, partition: int, *,
                      phase: Optional[str] = None) -> Scenario:
        """Resume a paused partition server."""
        return self._add("resume_server", phase, dc=int(dc),
                         partition=int(partition))

    # ----------------------------------------------------------------- workload
    def load_factor(self, fraction: float, *,
                    phase: Optional[str] = None) -> Scenario:
        """Set the fraction of closed-loop clients actively issuing
        operations (per DC).  Start a run below 1.0 and raise it to script a
        load spike; lower it to script a load drop."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"load_factor must be in [0, 1], got {fraction}")
        return self._add("load_factor", phase, fraction=float(fraction))

    def workload(self, *, phase: Optional[str] = None,
                 **changes: object) -> Scenario:
        """Shift workload parameters (``write_ratio=``, ``skew=``,
        ``value_size=``, ``rot_size=``) for every client from this point on."""
        if not changes:
            raise ConfigurationError("a workload shift needs at least one change")
        return self._add("workload", phase, **changes)

    def rotate_keys(self, offset: int, *,
                    phase: Optional[str] = None) -> Scenario:
        """Shift every client's key popularity by ``offset`` positions
        (hot-key churn: the hottest keys move elsewhere in the keyspace)."""
        return self._add("rotate_keys", phase, offset=int(offset))

    # ------------------------------------------------------------------- phases
    def mark_phase(self, name: str) -> Scenario:
        """Open a named metric phase without injecting any fault."""
        return self._add("mark_phase", name)


__all__ = ["ACTIONS", "FaultEvent", "Scenario"]
