"""Canned fault scenarios.

Named, parameterised scenario factories used by the benchmarks, the CI fault
smoke job and the examples.  Each factory returns a plain
:class:`~repro.faults.scenario.Scenario`; :func:`get_scenario` resolves a
factory by name (the ``--scenario`` flag of the benchmark CLIs).

All times are absolute simulated seconds and default to fitting a run of
roughly 2.5 simulated seconds (baseline, fault, recovery); pass explicit
times to match longer runs.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.scenario import Scenario


def dc_partition(start: float = 0.8, heal: float = 1.6, dc: int = 1) -> Scenario:
    """Partition one data center away from the rest, then heal it."""
    if heal <= start:
        raise ConfigurationError("heal time must come after the partition start")
    return (Scenario.at(start).partition_dc(dc)
                    .at(heal).heal()
                    .named(f"dc{dc}-partition"))


def flaky_wan(start: float = 0.8, heal: float = 1.6, dc_a: int = 0,
              dc_b: int = 1, drop_probability: float = 0.05,
              latency_factor: float = 4.0) -> Scenario:
    """Degrade the inter-DC links: higher latency, jitter and message loss
    (with TCP-style retransmission delays), then heal."""
    return (Scenario.at(start).degrade_link(
                dc_a, dc_b, latency_factor=latency_factor, jitter_factor=4.0,
                drop_probability=drop_probability)
                    .at(heal).heal()
                    .named("flaky-wan"))


def slow_dc(start: float = 0.8, heal: float = 1.6, dc: int = 0,
            factor: float = 4.0) -> Scenario:
    """Inflate the CPU service time of every server in one DC (e.g. noisy
    neighbours or thermal throttling), then heal."""
    return (Scenario.at(start).slow_dc(dc, factor)
                    .at(heal).heal()
                    .named(f"slow-dc{dc}"))


def gc_stall(start: float = 0.8, resume: float = 1.2, dc: int = 0,
             partition: int = 0) -> Scenario:
    """Freeze one partition server's CPU for a while (a long GC pause)."""
    if resume <= start:
        raise ConfigurationError("resume time must come after the pause start")
    return (Scenario.at(start).pause_server(dc, partition)
                    .at(resume).resume_server(dc, partition)
                    .named(f"gc-stall-dc{dc}-p{partition}"))


def load_spike(baseline_fraction: float = 0.25, spike: float = 0.8,
               relax: float = 1.6) -> Scenario:
    """Run at a fraction of the configured clients, spike to all of them,
    then fall back to the baseline fraction."""
    return (Scenario.at(0.0).load_factor(baseline_fraction, phase="")
                    .at(spike).load_factor(1.0, phase="spike")
                    .at(relax).load_factor(baseline_fraction, phase="relaxed")
                    .named("load-spike"))


def write_surge(start: float = 0.8, relax: float = 1.6,
                write_ratio: float = 0.5) -> Scenario:
    """Shift the workload to write-heavy, then back to the paper default."""
    return (Scenario.at(start).workload(write_ratio=write_ratio)
                    .at(relax).workload(write_ratio=0.05, phase="relaxed")
                    .named("write-surge"))


def hot_key_churn(period: float = 0.5, rotations: int = 3,
                  offset: int = 17) -> Scenario:
    """Rotate the key-popularity mapping every ``period`` seconds so the hot
    set keeps moving (cache-busting churn)."""
    scenario = Scenario(name="hot-key-churn")
    for index in range(1, rotations + 1):
        scenario = scenario.at(index * period).rotate_keys(offset)
    return scenario


#: Registry of scenario factories, resolvable by CLI name.
SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "dc-partition": dc_partition,
    "flaky-wan": flaky_wan,
    "slow-dc": slow_dc,
    "gc-stall": gc_stall,
    "load-spike": load_spike,
    "write-surge": write_surge,
    "hot-key-churn": hot_key_churn,
}


def get_scenario(name: str, **overrides: object) -> Scenario:
    """Resolve a canned scenario by name (``none`` returns an empty one)."""
    if name in ("", "none"):
        return Scenario()
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: none, "
            f"{', '.join(sorted(SCENARIOS))}")
    return factory(**overrides)  # type: ignore[arg-type]


__all__ = [
    "SCENARIOS",
    "dc_partition",
    "flaky_wan",
    "gc_stall",
    "get_scenario",
    "hot_key_churn",
    "load_spike",
    "slow_dc",
    "write_surge",
]
