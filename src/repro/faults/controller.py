"""Executes a :class:`~repro.faults.scenario.Scenario` against a built cluster.

The controller is registered on a cluster *before* the run starts: it
schedules one simulator event per fault event and a periodic gauge sampler.
Each fault event is translated into calls on the injection hooks the
simulation layers expose:

* network faults — :meth:`repro.sim.network.Network.block_link` /
  :meth:`~repro.sim.network.Network.set_link_fault` (per-link degradation
  table consulted in the send path);
* node faults — :meth:`repro.sim.node.Node.set_service_factor` /
  :meth:`~repro.sim.node.Node.pause` (GC-stall-style service inflation);
* workload shifts — :meth:`repro.workload.generator.WorkloadGenerator
  .set_parameters`, key rotation and client suspension.

Alongside the schedule the controller drives the *phase-sliced* metrics:
every event that names a phase calls
:meth:`~repro.metrics.collectors.MetricsRegistry.begin_phase`, and the
sampler records fault gauges (stalled ROTs, remote-visibility lag, held
messages, CC-LO reader-record size) into the current phase.

A cluster run without a controller takes none of these code paths, so
scenario-free runs remain bit-identical to a build without this module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.clocks.hlc import LOGICAL_BITS
from repro.errors import ConfigurationError
from repro.faults.scenario import FaultEvent, Scenario
from repro.metrics.collectors import MetricsRegistry
from repro.sim.engine import PeriodicTask, milliseconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology

#: Phase name the controller opens at t=0 before any event fires.
BASELINE_PHASE = "baseline"


def _timestamp_to_us(clock_mode: str, value: int) -> Optional[float]:
    """Convert a protocol timestamp to microseconds, if it is time-based."""
    if clock_mode == "hlc":
        return float(value >> LOGICAL_BITS)
    if clock_mode == "physical":
        return float(value)
    return None  # Plain logical clocks carry no wall-clock meaning.


class FaultController:
    """Injects a scenario's faults into one simulated cluster run.

    Parameters
    ----------
    topology:
        The built cluster's topology (gives access to the simulator, the
        network, the servers and the clients).
    metrics:
        The run's metric registry; receives phase boundaries and gauges.
    scenario:
        The schedule to execute.
    sample_interval_ms:
        Period of the fault-gauge sampler.
    stall_threshold_ms:
        An in-flight ROT older than this counts as *stalled* in the
        ``stalled_rots`` gauge.
    """

    def __init__(self, topology: "ClusterTopology", metrics: MetricsRegistry,
                 scenario: Scenario, *, sample_interval_ms: float = 10.0,
                 stall_threshold_ms: float = 25.0) -> None:
        self.topology = topology
        self.metrics = metrics
        self.scenario = scenario
        self.sim = topology.sim
        self.network = topology.network
        self.config = topology.config
        self.sample_interval_ms = sample_interval_ms
        self.stall_threshold_s = milliseconds(stall_threshold_ms)
        self.applied_events: list[FaultEvent] = []
        self._sampler: Optional[PeriodicTask] = None
        self._installed = False
        self._num_dcs = topology.config.num_dcs
        for event in scenario.events:
            self._validate(event)

    # -------------------------------------------------------------- lifecycle
    def install(self) -> None:
        """Schedule the fault events and start the gauge sampler.

        Must be called before the simulation runs (the schedule is expressed
        in absolute simulated time).
        """
        if self._installed:
            raise ConfigurationError("fault controller installed twice")
        self._installed = True
        self._install_retention_policies()
        self.metrics.begin_phase(BASELINE_PHASE, self.sim.now)
        for event in self.scenario.events:
            self.sim.call_at(event.at, self._make_apply(event),
                             label=f"fault:{event.action}")
        interval = milliseconds(self.sample_interval_ms)
        self._sampler = PeriodicTask(self.sim, interval, self._sample,
                                     start_delay=interval / 2,
                                     label="fault-sampler")

    def shutdown(self) -> None:
        """Cancel the gauge sampler (called once the run is over)."""
        if self._sampler is not None:
            self._sampler.cancel()

    # ------------------------------------------------------------ version GC
    def _install_retention_policies(self) -> None:
        """Gate version collection on what in-flight reads can still need.

        Under faults the stable snapshot freezes (a partition) or lags for a
        long time (the replication backlog draining after a heal) while
        writes keep truncating hot-key version chains; the stores' plain
        keep-newest-N eviction would then evict the last version a stale
        snapshot (or an old-reader-barred CC-LO ROT) can read, fabricating
        consistency violations the real protocols do not have.  Real causal
        stores gate GC on the stable snapshot and the oldest active read; we
        install exactly that per protocol family:

        * vector servers (Contrarian/Cure): a version may become the oldest
          retained one only if its dependency vector is at or below the
          entrywise min of every GSS view in the DC *and* of every in-flight
          snapshot vector (min-active-snapshot GC);
        * CC-LO servers: only if it is visible and bars no in-flight ROT
          (the version every barred ROT falls back to stays available).

        Chains may temporarily exceed the retention cap while a fault is
        active — that growth is itself a measured cost of the fault.
        """
        registry = self.topology.enable_rot_tracking()
        topology = self.topology
        for server in topology.all_servers():
            if hasattr(server, "gss"):
                server.store.set_retention_policy(
                    self._vector_retention_policy(server, registry, topology))
            elif hasattr(server, "readers"):
                server.store.set_retention_policy(
                    self._cclo_retention_policy(server, registry))
                # Same-key replicated versions must become visible in order,
                # or dependency checks satisfied by a newer visible version
                # expose updates whose exact dependency is still invisible
                # (a window the post-heal backlog stretches to hundreds of
                # milliseconds).
                server.enable_ordered_replication()

    @staticmethod
    def _vector_retention_policy(server, registry, topology):
        def policy(chain, excess: int) -> int:
            floor = None
            for peer in topology.servers_in_dc(server.dc_id):
                gss = peer.gss
                floor = gss if floor is None else tuple(
                    min(ours, theirs) for ours, theirs in zip(floor, gss))
            floor = registry.snapshot_floor(server.dc_id, floor)
            cut = excess
            while cut > 0:
                boundary = chain[cut]
                dependency = boundary.dependency_vector
                if dependency is not None and boundary.is_visible() and all(
                        entry <= floor_entry for entry, floor_entry
                        in zip(dependency, floor)):
                    break
                cut -= 1
            return cut
        return policy

    @staticmethod
    def _cclo_retention_policy(server, registry):
        def policy(chain, excess: int) -> int:
            cut = excess
            # Never collect a version whose readers check is still pending.
            for index in range(excess):
                if not chain[index].is_visible():
                    cut = index
                    break
            while cut > 0:
                boundary = chain[cut]
                if boundary.is_visible() and not (
                        boundary.old_readers
                        and registry.any_active(server.dc_id,
                                                boundary.old_readers)):
                    break
                cut -= 1
            return cut
        return policy

    # -------------------------------------------------------------- validation
    def _validate(self, event: FaultEvent) -> None:
        params = event.kwargs()
        for name in ("dc", "dc_a", "dc_b"):
            dc = params.get(name)
            if dc is not None and not 0 <= int(dc) < self._num_dcs:  # type: ignore[arg-type]
                raise ConfigurationError(
                    f"event {event.describe()} names DC {dc} but the cluster "
                    f"has {self._num_dcs} DCs")
        partition = params.get("partition")
        if partition is not None and \
                not 0 <= int(partition) < self.config.num_partitions:  # type: ignore[arg-type]
            raise ConfigurationError(
                f"event {event.describe()} names partition {partition} but "
                f"the cluster has {self.config.num_partitions} partitions")

    # --------------------------------------------------------------- execution
    def _make_apply(self, event: FaultEvent):
        def apply() -> None:
            self.apply(event)
        return apply

    def apply(self, event: FaultEvent) -> None:
        """Apply one fault event now (normally called by the scheduler)."""
        handler = getattr(self, f"_apply_{event.action}")
        handler(**event.kwargs())
        if event.phase:
            self.metrics.begin_phase(event.phase, self.sim.now)
        self.applied_events.append(event)

    # ------------------------------------------------------- network handlers
    def _apply_partition_dc(self, dc: int) -> None:
        for src_dc, dst_dc in self.topology.cross_dc_links(dc):
            self.network.block_link(src_dc, dst_dc)

    def _apply_partition_link(self, dc_a: int, dc_b: int) -> None:
        self.network.block_link(dc_a, dc_b)
        self.network.block_link(dc_b, dc_a)

    def _apply_degrade_link(self, dc_a: int, dc_b: int, **degradation: float) -> None:
        self.network.set_link_fault(dc_a, dc_b, **degradation)
        self.network.set_link_fault(dc_b, dc_a, **degradation)

    def _apply_heal(self) -> None:
        self.network.clear_link_faults()
        for server in self.topology.all_servers():
            server.set_service_factor(1.0)
            server.resume()

    # ---------------------------------------------------------- node handlers
    def _apply_slow_dc(self, dc: int, factor: float) -> None:
        for server in self.topology.servers_in_dc(dc):
            server.set_service_factor(factor)

    def _apply_slow_server(self, dc: int, partition: int, factor: float) -> None:
        self.topology.server(dc, partition).set_service_factor(factor)

    def _apply_pause_server(self, dc: int, partition: int) -> None:
        self.topology.server(dc, partition).pause()

    def _apply_resume_server(self, dc: int, partition: int) -> None:
        self.topology.server(dc, partition).resume()

    # ------------------------------------------------------ workload handlers
    def _apply_load_factor(self, fraction: float) -> None:
        for dc in range(self._num_dcs):
            clients = self.topology.clients_in_dc(dc)
            active = round(fraction * len(clients))
            for index, client in enumerate(clients):
                if index < active:
                    client.resume()
                else:
                    client.suspend()

    def _apply_workload(self, **changes: object) -> None:
        for client in self.topology.clients:
            client.generator.set_parameters(
                client.generator.parameters.with_changes(**changes))

    def _apply_rotate_keys(self, offset: int) -> None:
        for client in self.topology.clients:
            client.generator.rotate_keys(offset)

    def _apply_mark_phase(self) -> None:
        """Phase bookkeeping only; the phase itself is opened by ``apply``."""

    # ----------------------------------------------------------------- gauges
    def _sample(self) -> None:
        metrics = self.metrics
        stalled = 0
        for client in self.topology.clients:
            in_flight = client.in_flight_operation()
            if in_flight is not None and in_flight[0] == "rot" \
                    and in_flight[1] > self.stall_threshold_s:
                stalled += 1
        metrics.record_gauge("stalled_rots", float(stalled))
        metrics.record_gauge("held_messages",
                             float(self.network.held_message_count))
        visibility_lag_us = 0.0
        readers_entries = 0
        waiting_checks = 0
        for server in self.topology.all_servers():
            vector = getattr(server, "version_vector", None)
            clock = getattr(server, "clock", None)
            if vector is not None and clock is not None and self._num_dcs > 1:
                local_us = _timestamp_to_us(clock.mode, clock.read())
                if local_us is not None:
                    for dc, entry in enumerate(vector):
                        if dc == server.dc_id:
                            continue
                        entry_us = _timestamp_to_us(clock.mode, entry)
                        if entry_us is not None:
                            visibility_lag_us = max(visibility_lag_us,
                                                    local_us - entry_us)
            readers = getattr(server, "readers", None)
            if readers is not None:
                readers_entries += readers.total_tracked_entries()
            waiting = getattr(server, "_waiting_remote_checks", None)
            if waiting is not None:
                waiting_checks += len(waiting)
        if self._num_dcs > 1:
            metrics.record_gauge("visibility_lag_ms", visibility_lag_us / 1000.0)
        if readers_entries or waiting_checks:
            metrics.record_gauge("readers_entries", float(readers_entries))
            metrics.record_gauge("waiting_remote_checks", float(waiting_checks))


__all__ = ["BASELINE_PHASE", "FaultController"]
