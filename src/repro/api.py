"""High-level public API.

Most users interact with the library through three entry points:

* :class:`CausalStore` — an in-process facade over a simulated cluster that
  exposes the paper's API (``put``, ``get``, ``rot``) for a chosen protocol.
  It drives the simulator under the hood, so calls return immediately with
  the values the protocol would produce, and the simulated latency of every
  operation is available for inspection.
* :func:`repro.harness.run_experiment` / :func:`repro.harness.load_sweep` —
  workload-driven performance runs (what the figures use) — and their
  process-pool counterparts :func:`repro.harness.parallel_load_sweep` /
  :class:`repro.harness.ParallelRunner`, re-exported here for convenience.
* :mod:`repro.harness.figures` / :mod:`repro.harness.tables` — regenerate the
  paper's evaluation (both now fan their run grids over worker processes).

``CausalStore`` is meant for correctness-oriented exploration (examples,
tests, teaching); the harness is meant for performance studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.causal.checker import CheckerReport
from repro.cluster.config import ClusterConfig
from repro.core.common.messages import ReadResult
from repro.errors import ConfigurationError
from repro.faults import Scenario, get_scenario
from repro.harness.builder import BuiltCluster, build_cluster
from repro.harness.parallel import (
    ParallelRunner,
    RunSpec,
    parallel_load_sweep,
)
from repro.harness.runner import load_sweep, run_experiment
from repro.workload.parameters import WorkloadParameters


@dataclass(frozen=True)
class OperationResult:
    """Outcome of one facade operation."""

    kind: str
    keys: tuple[str, ...]
    values: dict[str, Optional[int]]
    latency_ms: float


class CausalStore:
    """A causally consistent key-value store driven step-by-step.

    The facade creates a single "interactive" client per session.  Every call
    advances the simulation until the operation completes, then returns.  The
    store validates the recorded history on demand via :meth:`check`.

    Parameters
    ----------
    protocol:
        ``"contrarian"`` (default), ``"cure"`` or ``"cc-lo"``.
    num_partitions / num_dcs:
        Topology of the simulated cluster.
    config:
        Full configuration; overrides the two convenience parameters.
    """

    def __init__(self, protocol: str = "contrarian", *,
                 num_partitions: int = 4, num_dcs: int = 1,
                 config: Optional[ClusterConfig] = None) -> None:
        self.protocol = protocol
        base = config or ClusterConfig.test_scale(num_partitions=num_partitions,
                                                  num_dcs=num_dcs,
                                                  clients_per_dc=1)
        # The facade issues operations itself, so the built-in workload-driven
        # clients must stay idle: one client per DC is created but never
        # started.
        self._cluster: BuiltCluster = build_cluster(
            protocol, base, WorkloadParameters(rot_size=1), enable_checker=True)
        for server in self._cluster.topology.all_servers():
            server.start()
        self._clients = {dc: self._cluster.topology.clients_in_dc(dc)[0]
                         for dc in range(base.num_dcs)}
        self._results: list[OperationResult] = []

    # ------------------------------------------------------------------ sugar
    @property
    def cluster(self) -> BuiltCluster:
        """The underlying simulated cluster (for inspection)."""
        return self._cluster

    @property
    def history(self) -> list[OperationResult]:
        """Every operation performed through this facade, in order."""
        return list(self._results)

    def _client(self, dc: int):
        try:
            return self._clients[dc]
        except KeyError as exc:
            raise ConfigurationError(f"no client attached to DC {dc}") from exc

    # ------------------------------------------------------------- operations
    def put(self, key: str, value_size: int = 8, *, dc: int = 0) -> OperationResult:
        """Create a new version of ``key`` and wait for the PUT to complete."""
        client = self._client(dc)
        operation = _SyntheticOperation(kind="put", keys=(key,),
                                        value_size=value_size)
        return self._drive(client, operation)

    def rot(self, keys: Sequence[str], *, dc: int = 0) -> OperationResult:
        """Read ``keys`` from a causally consistent snapshot."""
        client = self._client(dc)
        operation = _SyntheticOperation(kind="rot", keys=tuple(keys),
                                        value_size=8)
        return self._drive(client, operation)

    def get(self, key: str, *, dc: int = 0) -> Optional[int]:
        """Read a single key (a ROT of size one); returns the version timestamp."""
        return self.rot([key], dc=dc).values[key]

    def _drive(self, client, operation) -> OperationResult:
        sim = self._cluster.sim
        started = sim.now
        done: dict[str, object] = {}

        original_complete_rot = client.complete_rot
        original_complete_put = client.complete_put
        original_issue_next = client._issue_next

        def capture_rot(rot_id: str, results: dict[str, ReadResult]) -> None:
            done["values"] = {result.key: result.timestamp
                              for result in results.values()}
            original_complete_rot(rot_id, results)

        def capture_put(key: str, timestamp: int, origin_dc: int) -> None:
            done["values"] = {key: timestamp}
            original_complete_put(key, timestamp, origin_dc)

        def no_next() -> None:
            # The facade issues operations explicitly; suppress the closed loop.
            return None

        client.complete_rot = capture_rot
        client.complete_put = capture_put
        client._issue_next = no_next
        try:
            client.sequence += 1
            client.metrics.note_issue(operation.kind == "put")
            client._op_started_at = sim.now
            if operation.kind == "put":
                client.issue_put(operation)
            else:
                client.issue_rot(operation)
            guard = 0
            while "values" not in done:
                if not sim.step():
                    raise ConfigurationError(
                        "the simulation ran out of events before the operation "
                        "completed; this indicates a protocol bug")
                guard += 1
                if guard > 5_000_000:
                    raise ConfigurationError("operation did not complete")
        finally:
            client.complete_rot = original_complete_rot
            client.complete_put = original_complete_put
            client._issue_next = original_issue_next
        result = OperationResult(kind=operation.kind, keys=operation.keys,
                                 values=dict(done["values"]),
                                 latency_ms=(sim.now - started) * 1000.0)
        self._results.append(result)
        return result

    # ------------------------------------------------------------------ audit
    def advance(self, seconds: float) -> None:
        """Advance simulated time (lets replication and stabilization run)."""
        self._cluster.sim.run(until=self._cluster.sim.now + seconds)

    def check(self) -> CheckerReport:
        """Validate the recorded history against causal consistency."""
        assert self._cluster.checker is not None
        return self._cluster.checker.check()


@dataclass(frozen=True)
class _SyntheticOperation:
    """Minimal stand-in for a workload operation used by the facade."""

    kind: str
    keys: tuple[str, ...]
    value_size: int

    @property
    def is_put(self) -> bool:
        return self.kind == "put"

    @property
    def is_rot(self) -> bool:
        return self.kind == "rot"


__all__ = [
    "CausalStore",
    "OperationResult",
    "ParallelRunner",
    "RunSpec",
    "Scenario",
    "get_scenario",
    "load_sweep",
    "parallel_load_sweep",
    "run_experiment",
]
