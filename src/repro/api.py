"""High-level public API.

Most users interact with the library through three entry points:

* :class:`CausalStore` — an in-process facade exposing the paper's API
  (``put``, ``get``, ``rot``) for a chosen protocol, on a chosen *backend*:
  ``backend="sim"`` (default) drives the discrete-event simulator and
  returns the values the protocol would produce together with the simulated
  latency; ``backend="realtime"`` serves the same protocol kernels from real
  asyncio tasks on wall-clock time.  Both record the operation history for
  the causal-consistency checker (:meth:`CausalStore.check`), and both
  support deterministic teardown (:meth:`CausalStore.close` or use the
  store as a context manager).
* :func:`repro.harness.run_experiment` / :func:`repro.harness.load_sweep` —
  workload-driven performance runs (what the figures use) — their
  process-pool counterparts :func:`repro.harness.parallel_load_sweep` /
  :class:`repro.harness.ParallelRunner`, and the wall-clock sibling
  :func:`repro.runtime.run_realtime_experiment`, re-exported here.
* :mod:`repro.harness.figures` / :mod:`repro.harness.tables` — regenerate the
  paper's evaluation (both fan their run grids over worker processes).

``CausalStore`` is meant for correctness-oriented exploration (examples,
tests, teaching); the harness is meant for performance studies.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.causal.checker import CheckerReport
from repro.causal.streaming import StreamingChecker
from repro.cluster.config import ClusterConfig
from repro.core.common.messages import ReadResult
from repro.errors import ConfigurationError, RuntimeBackendError
from repro.faults import Scenario, get_scenario
from repro.harness.builder import BuiltCluster, build_cluster
from repro.harness.parallel import (
    ParallelRunner,
    RunSpec,
    parallel_load_sweep,
)
from repro.harness.runner import load_sweep, run_experiment
from repro.obs.export import write_chrome_trace
from repro.obs.trace import TraceAssembler
from repro.runtime.cluster import RealtimeCluster
from repro.runtime.experiment import run_realtime_experiment
from repro.runtime.process import ProcessCluster
from repro.runtime.transport import TRANSPORTS
from repro.workload.parameters import WorkloadParameters

#: Backends :class:`CausalStore` can run on.
BACKENDS = ("sim", "realtime")


@dataclass(frozen=True)
class OperationResult:
    """Outcome of one facade operation.

    ``latency_ms`` is simulated milliseconds on the ``sim`` backend and
    wall-clock milliseconds on the ``realtime`` backend.
    """

    kind: str
    keys: tuple[str, ...]
    values: dict[str, Optional[int]]
    latency_ms: float


class CausalStore:
    """A causally consistent key-value store driven step-by-step.

    The facade creates a single "interactive" client per data center.  Every
    call advances the backend until the operation completes, then returns.
    The store validates the recorded history on demand via :meth:`check`.

    Parameters
    ----------
    protocol:
        ``"contrarian"`` (default), ``"cure"``, ``"cc-lo"``, or any protocol
        added through :func:`repro.core.registry.register_protocol`.
    backend:
        ``"sim"`` (default) — operations run on the deterministic
        discrete-event simulator; ``"realtime"`` — operations are served by
        asyncio tasks on wall-clock time (the store owns a private event
        loop and steps it while an operation is in flight).
    transport:
        Realtime backend only.  ``"inproc"`` (default) keeps every node on
        the store's private event loop; ``"tcp"`` spawns each partition
        server in its own OS process and the store's interactive clients
        talk to them over wire-encoded TCP frames.
    num_partitions / num_dcs:
        Topology of the cluster.
    config:
        Full configuration; overrides the two convenience parameters.
    trace:
        Record every operation's causal span chain on the repro.obs event
        bus; inspect via :meth:`trace_timeline` or export a Perfetto/Chrome
        timeline with :meth:`dump_trace`.
    checker:
        Realtime backend only.  ``"monolithic"`` (default) buffers the
        whole history for :meth:`check`; ``"streaming"`` validates it
        incrementally in GSS-bounded windows with bounded memory (see
        :mod:`repro.causal.streaming`) — over TCP the worker processes then
        also stream their observation logs during the run.

    The store is a context manager; :meth:`close` (idempotent) tears down
    the built cluster — periodic simulator tasks or asyncio tasks, worker
    processes on the TCP transport, and the private event loop.
    """

    def __init__(self, protocol: str = "contrarian", *,
                 backend: str = "sim", transport: str = "inproc",
                 num_partitions: int = 4, num_dcs: int = 1,
                 config: Optional[ClusterConfig] = None,
                 trace: bool = False,
                 checker: str = "monolithic") -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; known: {list(BACKENDS)}")
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; known: {list(TRANSPORTS)}")
        if transport != "inproc" and backend != "realtime":
            raise ConfigurationError(
                f"transport {transport!r} requires backend='realtime' "
                f"(the sim backend has no wire)")
        if checker not in ("monolithic", "streaming"):
            raise ConfigurationError(
                f"unknown checker {checker!r}; known: "
                f"['monolithic', 'streaming']")
        if checker == "streaming" and backend != "realtime":
            raise ConfigurationError(
                "checker='streaming' requires backend='realtime' (the sim "
                "backend records its history in the monolithic checker)")
        self.checker_kind = checker
        self.protocol = protocol
        self.backend = backend
        self.transport = transport
        base = config or ClusterConfig.test_scale(num_partitions=num_partitions,
                                                  num_dcs=num_dcs,
                                                  clients_per_dc=1)
        self._results: list[OperationResult] = []
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._trace = trace
        self._trace_assembler: Optional[TraceAssembler] = None
        if backend == "realtime":
            self._init_realtime(base)
        else:
            self._init_sim(base)

    # ------------------------------------------------------------------ build
    def _init_sim(self, base: ClusterConfig) -> None:
        # The facade issues operations itself, so the built-in workload-driven
        # clients must stay idle: one client per DC is created but never
        # started.
        self._cluster: BuiltCluster = build_cluster(
            self.protocol, base, WorkloadParameters(rot_size=1),
            enable_checker=True, trace=self._trace)
        for server in self._cluster.topology.all_servers():
            server.start()
        self._clients = {dc: self._cluster.topology.clients_in_dc(dc)[0]
                         for dc in range(base.num_dcs)}

    def _init_realtime(self, base: ClusterConfig) -> None:
        # Build (and thereby validate) the cluster before creating the event
        # loop, so a bad protocol name cannot leak an unclosed loop.
        streaming = self.checker_kind == "streaming"
        if self.transport == "tcp":
            self._rt_cluster = ProcessCluster(
                self.protocol, base, WorkloadParameters(rot_size=1),
                enable_checker=True,
                checker="streaming" if streaming else None,
                workload_clients=False, trace=self._trace)
        else:
            self._rt_cluster = RealtimeCluster(
                self.protocol, base, WorkloadParameters(rot_size=1),
                enable_checker=True,
                checker=StreamingChecker() if streaming else None,
                workload_clients=False, trace=self._trace)
        # Interactive clients must exist before start(): on the TCP
        # transport the peer table is distributed exactly once.
        self._clients = {dc: self._rt_cluster.add_client(dc, 0)
                         for dc in range(base.num_dcs)}
        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(self._rt_cluster.start())
        except BaseException:
            # A failed start must not leak worker processes (TCP transport)
            # or the private loop.
            try:
                self._loop.run_until_complete(self._rt_cluster.stop())
            except Exception:  # noqa: BLE001 - the start failure wins
                pass
            self._loop.close()
            raise

    # ------------------------------------------------------------------ sugar
    @property
    def cluster(self):
        """The underlying cluster (for inspection): a
        :class:`~repro.harness.builder.BuiltCluster` on the ``sim`` backend,
        a :class:`~repro.runtime.cluster.RealtimeCluster` on ``realtime``."""
        return self._rt_cluster if self.backend == "realtime" else self._cluster

    @property
    def history(self) -> list[OperationResult]:
        """Every operation performed through this facade, in order."""
        return list(self._results)

    def _client(self, dc: int):
        try:
            return self._clients[dc]
        except KeyError as exc:
            raise ConfigurationError(f"no client attached to DC {dc}") from exc

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError("this CausalStore has been closed")

    # ------------------------------------------------------------- operations
    def put(self, key: str, value_size: int = 8, *, dc: int = 0) -> OperationResult:
        """Create a new version of ``key`` and wait for the PUT to complete."""
        operation = _SyntheticOperation(kind="put", keys=(key,),
                                        value_size=value_size)
        return self._drive(self._client(dc), operation)

    def rot(self, keys: Sequence[str], *, dc: int = 0) -> OperationResult:
        """Read ``keys`` from a causally consistent snapshot."""
        operation = _SyntheticOperation(kind="rot", keys=tuple(keys),
                                        value_size=8)
        return self._drive(self._client(dc), operation)

    def get(self, key: str, *, dc: int = 0) -> Optional[int]:
        """Read a single key (a ROT of size one); returns the version timestamp."""
        return self.rot([key], dc=dc).values[key]

    def _drive(self, client, operation) -> OperationResult:
        self._ensure_open()
        if self.backend == "realtime":
            result = self._drive_realtime(client, operation)
        else:
            result = self._drive_sim(client, operation)
        self._results.append(result)
        return result

    def _drive_realtime(self, client, operation) -> OperationResult:
        clock = self._rt_cluster.clock
        started = clock.now
        try:
            outcome = self._loop.run_until_complete(client.perform(operation))
        except RuntimeBackendError:
            # A timed-out operation usually means a node task died; surface
            # that root cause instead of the generic timeout.
            failure = self._rt_cluster.first_failure()
            if failure is not None:
                raise failure
            raise
        if operation.kind == "put":
            values: dict[str, Optional[int]] = {outcome.key: outcome.timestamp}
        else:
            values = {result.key: result.timestamp
                      for result in outcome.results.values()}
        return OperationResult(kind=operation.kind, keys=operation.keys,
                               values=values,
                               latency_ms=(clock.now - started) * 1000.0)

    def _drive_sim(self, client, operation) -> OperationResult:
        sim = self._cluster.sim
        started = sim.now
        done: dict[str, object] = {}

        original_complete_rot = client.complete_rot
        original_complete_put = client.complete_put
        original_issue_next = client._issue_next

        def capture_rot(rot_id: str, results: dict[str, ReadResult]) -> None:
            done["values"] = {result.key: result.timestamp
                              for result in results.values()}
            original_complete_rot(rot_id, results)

        def capture_put(key: str, timestamp: int, origin_dc: int,
                        dependencies: tuple = ()) -> None:
            done["values"] = {key: timestamp}
            original_complete_put(key, timestamp, origin_dc, dependencies)

        def no_next() -> None:
            # The facade issues operations explicitly; suppress the closed loop.
            return None

        client.complete_rot = capture_rot
        client.complete_put = capture_put
        client._issue_next = no_next
        try:
            client.sequence += 1
            client.metrics.note_issue(operation.kind == "put")
            tracer = client._tracer
            if tracer is not None:
                client._begin_trace(tracer, operation)
            client._op_started_at = sim.now
            if operation.kind == "put":
                client.issue_put(operation)
            else:
                client.issue_rot(operation)
            guard = 0
            while "values" not in done:
                if not sim.step():
                    raise ConfigurationError(
                        "the simulation ran out of events before the operation "
                        "completed; this indicates a protocol bug")
                guard += 1
                if guard > 5_000_000:
                    raise ConfigurationError("operation did not complete")
        finally:
            client.complete_rot = original_complete_rot
            client.complete_put = original_complete_put
            client._issue_next = original_issue_next
        return OperationResult(kind=operation.kind, keys=operation.keys,
                               values=dict(done["values"]),
                               latency_ms=(sim.now - started) * 1000.0)

    # ------------------------------------------------------------------ audit
    def advance(self, seconds: float) -> None:
        """Advance time (lets replication and stabilization run).

        Simulated seconds on the ``sim`` backend; *wall-clock* seconds on
        ``realtime`` (the call genuinely sleeps while the cluster serves).
        """
        self._ensure_open()
        if self.backend == "realtime":
            self._loop.run_until_complete(asyncio.sleep(seconds))
        else:
            self._cluster.sim.run(until=self._cluster.sim.now + seconds)

    def trace_timeline(self) -> TraceAssembler:
        """The assembled repro.obs timeline of everything traced so far.

        Requires ``trace=True``.  On the ``tcp`` transport the worker-side
        server events only arrive when the store is closed (they ship over
        the control plane at shutdown), so close first for a complete
        timeline; ``sim`` and ``inproc`` timelines are complete at any time.
        """
        if not self._trace:
            raise ConfigurationError(
                "this CausalStore was created without trace=True")
        if self.backend == "realtime" and self.transport == "tcp":
            return self._rt_cluster.collect_trace()
        bus = (self._rt_cluster.trace_bus if self.backend == "realtime"
               else self._cluster.trace_bus)
        if self._trace_assembler is None:
            self._trace_assembler = TraceAssembler()
        self._trace_assembler.ingest_bus(bus)
        return self._trace_assembler

    def dump_trace(self, path) -> dict:
        """Write the timeline as a Chrome-trace JSON (open in Perfetto)."""
        assembler = self.trace_timeline()
        return write_chrome_trace(path, {self.protocol: assembler.events()})

    def check(self) -> CheckerReport:
        """Validate the recorded history against causal consistency."""
        checker = (self._rt_cluster.checker if self.backend == "realtime"
                   else self._cluster.checker)
        assert checker is not None
        return checker.check()

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Tear down the built cluster; safe to call more than once.

        On the ``sim`` backend this stops the idle clients and cancels the
        servers' periodic tasks so the event queue can drain; on
        ``realtime`` it cancels every asyncio task and closes the private
        event loop.
        """
        if self._closed:
            return
        self._closed = True
        if self.backend == "realtime":
            self._loop.run_until_complete(self._rt_cluster.stop())
            self._loop.close()
        else:
            self._cluster.stop()

    def __enter__(self) -> "CausalStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        del exc_type, exc_value, traceback
        self.close()


@dataclass(frozen=True)
class _SyntheticOperation:
    """Minimal stand-in for a workload operation used by the facade."""

    kind: str
    keys: tuple[str, ...]
    value_size: int

    @property
    def is_put(self) -> bool:
        return self.kind == "put"

    @property
    def is_rot(self) -> bool:
        return self.kind == "rot"


__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "CausalStore",
    "OperationResult",
    "ParallelRunner",
    "RunSpec",
    "Scenario",
    "get_scenario",
    "load_sweep",
    "parallel_load_sweep",
    "run_experiment",
    "run_realtime_experiment",
]
