"""Replication overhead accounting.

Section 5.4 of the paper explains CC-LO's poorer scaling from one to two DCs
(1.6x versus Contrarian's 1.9x) by the extra work replication triggers: the
dependency list travels with each update and the readers check is repeated in
every remote DC.  This module condenses the per-server overhead counters into
a per-update view so the experiment reports can show that difference
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.sim.costs import OverheadCounters


@dataclass(frozen=True)
class ReplicationOverhead:
    """Replication cost summary for one run."""

    replication_messages: int
    dependency_entries_sent: int
    readers_checks: int
    rot_ids_exchanged: int

    @property
    def dependencies_per_update(self) -> float:
        """Average number of dependency entries shipped per replicated update."""
        if self.replication_messages == 0:
            return 0.0
        return self.dependency_entries_sent / self.replication_messages

    @property
    def rot_ids_per_check(self) -> float:
        """Average number of ROT ids exchanged per readers check."""
        if self.readers_checks == 0:
            return 0.0
        return self.rot_ids_exchanged / self.readers_checks


def summarize_replication(counters: Iterable[OverheadCounters]) -> ReplicationOverhead:
    """Aggregate per-server counters into a :class:`ReplicationOverhead`."""
    merged = OverheadCounters()
    for counter in counters:
        merged.merge(counter)
    return ReplicationOverhead(
        replication_messages=merged.replication_messages,
        dependency_entries_sent=merged.dependency_entries_sent,
        readers_checks=merged.readers_checks,
        rot_ids_exchanged=merged.rot_ids_cumulative,
    )


__all__ = ["ReplicationOverhead", "summarize_replication"]
