"""Geo-replication helpers.

The replication *mechanics* (sending updates to remote replicas, installing
them, deciding visibility) live inside the protocol servers because they are
protocol-specific: Contrarian and Cure gate visibility on the GSS computed by
the stabilization protocol, while CC-LO repeats the dependency check and the
readers check in every remote DC.  This package holds the protocol-agnostic
pieces: the accounting of replication overhead used by the experiment reports.
"""

from repro.replication.accounting import ReplicationOverhead, summarize_replication

__all__ = ["ReplicationOverhead", "summarize_replication"]
