"""Cure baseline (Akkoorath et al., ICDCS 2016).

Cure uses the same coordinator-based design and GSS stabilization protocol as
Contrarian, but timestamps events with loosely synchronised *physical* clocks
and always runs ROTs in two rounds.  Because a physical clock cannot be moved
forward to match an incoming snapshot timestamp, a partition whose clock lags
the snapshot must wait — making ROTs blocking and adding a latency penalty of
the order of the clock skew (Figure 4 of the paper).

The paper adapts Cure to the API of Section 2; this implementation does the
same (the original Cure exposes CRDT objects, which are irrelevant to the
latency/throughput dynamics studied here).
"""

from __future__ import annotations

from repro.core.vector.client import VectorClient
from repro.core.vector.kernel import CureClientKernel, CureKernel
from repro.core.vector.server import VectorServer

PROTOCOL_NAME = "cure"


class CureServer(VectorServer):
    """Cure partition server: physical clocks, hence blocking ROTs.

    A thin driver: the protocol state machine is
    :class:`~repro.core.vector.kernel.CureKernel`.
    """

    kernel_class = CureKernel


class CureClient(VectorClient):
    """Cure client: always two rounds of client-server communication."""

    kernel_class = CureClientKernel


__all__ = ["CureClient", "CureKernel", "CureServer", "PROTOCOL_NAME"]
