"""Cure baseline (Akkoorath et al., ICDCS 2016).

Cure uses the same coordinator-based design and GSS stabilization protocol as
Contrarian, but timestamps events with loosely synchronised *physical* clocks
and always runs ROTs in two rounds.  Because a physical clock cannot be moved
forward to match an incoming snapshot timestamp, a partition whose clock lags
the snapshot must wait — making ROTs blocking and adding a latency penalty of
the order of the clock skew (Figure 4 of the paper).

The paper adapts Cure to the API of Section 2; this implementation does the
same (the original Cure exposes CRDT objects, which are irrelevant to the
latency/throughput dynamics studied here).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.vector.client import VectorClient
from repro.core.vector.server import VectorServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.causal.checker import CausalConsistencyChecker
    from repro.cluster.topology import ClusterTopology
    from repro.metrics.collectors import MetricsRegistry
    from repro.workload.generator import WorkloadGenerator

PROTOCOL_NAME = "cure"


class CureServer(VectorServer):
    """Cure partition server: physical clocks, hence blocking ROTs."""

    def __init__(self, topology: "ClusterTopology", dc_id: int,
                 partition_index: int) -> None:
        super().__init__(topology, dc_id, partition_index,
                         clock_mode="physical",
                         protocol_name=PROTOCOL_NAME)


class CureClient(VectorClient):
    """Cure client: always two rounds of client-server communication."""

    def __init__(self, topology: "ClusterTopology", dc_id: int, client_index: int,
                 generator: "WorkloadGenerator", metrics: "MetricsRegistry",
                 checker: Optional["CausalConsistencyChecker"] = None) -> None:
        super().__init__(topology, dc_id, client_index, generator, metrics,
                         checker, two_round=True)


__all__ = ["CureClient", "CureServer", "PROTOCOL_NAME"]
