"""Simulated driver of the CC-LO (COPS-SNOW) client.

The one-round ROT exchange and the nearest-dependency context live in the
sans-I/O :class:`~repro.core.cclo.kernel.CcloClientKernel`; this driver
plugs one kernel into the closed-loop machinery of
:class:`~repro.core.common.client.BaseClient`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cclo.kernel import CcloClientKernel
from repro.core.common.client import BaseClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology


class CcloClient(BaseClient):
    """A closed-loop client speaking the latency-optimal protocol."""

    kernel_class: type[CcloClientKernel] = CcloClientKernel

    def __init__(self, topology: "ClusterTopology", dc_id: int, client_index: int,
                 generator, metrics, checker=None) -> None:
        super().__init__(topology, dc_id, client_index, generator, metrics, checker)
        self.attach_kernel(self.kernel_class.from_config(
            topology.config, self.node_id, dc_id,
            partitioner=topology.partitioner, rng=self.rng,
            rot_registry=lambda: topology.rot_registry))

    @property
    def dep_context(self):
        return self.kernel.dep_context


__all__ = ["CcloClient"]
