"""Client of CC-LO (the COPS-SNOW design).

ROTs are a single round: the client sends one read request per involved
partition (tagged with a globally unique ROT id) and completes once every
partition has answered.  PUTs carry the client's accumulated dependencies —
the versions it has read since its last PUT — which is exactly the information
the writing partition needs to run the readers check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.causal.dependencies import ClientDependencyContext
from repro.core.common.client import BaseClient
from repro.core.common.messages import (
    CcloPutReply,
    CcloPutRequest,
    OneRoundReadReply,
    OneRoundReadRequest,
    PendingRot,
    ReadResult,
)
from repro.errors import ProtocolError
from repro.workload.generator import Operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.sim.node import Node


class CcloClient(BaseClient):
    """A closed-loop client speaking the latency-optimal protocol."""

    def __init__(self, topology: "ClusterTopology", dc_id: int, client_index: int,
                 generator, metrics, checker=None) -> None:
        super().__init__(topology, dc_id, client_index, generator, metrics, checker)
        self.dep_context = ClientDependencyContext()
        self._pending_rot: Optional[PendingRot] = None

    # ------------------------------------------------------------------- ROT
    def issue_rot(self, operation: Operation) -> None:
        rot_id = self.next_rot_id()
        groups = self.partitioner.group_by_partition(list(operation.keys))
        self._pending_rot = PendingRot(rot_id=rot_id, keys=operation.keys,
                                       started_at=self.sim.now,
                                       expected_replies=len(groups))
        registry = self.topology.rot_registry
        if registry is not None:
            # Fault runs track in-flight ROTs so version GC never evicts the
            # versions an old-reader-barred ROT must fall back to.
            registry.register(self.dc_id, rot_id)
        for partition_index, keys in groups.items():
            server = self.topology.server(self.dc_id, partition_index)
            self.send(server, OneRoundReadRequest(rot_id=rot_id,
                                                  keys=tuple(keys),
                                                  client_id=self.node_id))

    def _handle_read_reply(self, message: OneRoundReadReply) -> None:
        pending = self._pending_rot
        if pending is None or pending.rot_id != message.rot_id:
            raise ProtocolError(
                f"{self.node_id} received a reply for unknown ROT {message.rot_id}")
        pending.record_reply(message.results)
        if not pending.complete:
            return
        self._pending_rot = None
        registry = self.topology.rot_registry
        if registry is not None:
            registry.deregister(self.dc_id, message.rot_id)
        for result in pending.results.values():
            if result.timestamp is not None:
                partition = self.partitioner.partition_of(result.key)
                self.dep_context.observe_read(result.key, result.timestamp,
                                              partition, result.origin_dc)
        self.complete_rot(message.rot_id, pending.results)

    # ------------------------------------------------------------------- PUT
    def issue_put(self, operation: Operation) -> None:
        key = operation.keys[0]
        server = self.topology.server_for_key(self.dc_id, key)
        dependencies = tuple(dep.as_triple()
                             for dep in self.dep_context.dependencies())
        request = CcloPutRequest(
            key=key, value_size=operation.value_size,
            dependencies=dependencies,
            dependency_partitions=self.dep_context.dependency_partitions(),
            client_id=self.node_id, sequence=self.sequence)
        self.send(server, request)

    def _handle_put_reply(self, message: CcloPutReply) -> None:
        self.complete_put(message.key, message.timestamp, self.dc_id)

    def after_put(self, key: str, timestamp: int, origin_dc: int) -> None:
        partition = self.partitioner.partition_of(key)
        self.dep_context.observe_write(key, timestamp, partition, origin_dc)

    # -------------------------------------------------------------- dispatch
    def handle_message(self, sender: "Node", message: object) -> None:
        del sender
        if isinstance(message, OneRoundReadReply):
            self._handle_read_reply(message)
        elif isinstance(message, CcloPutReply):
            self._handle_put_reply(message)
        else:
            raise ProtocolError(f"{self.node_id} cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------ misc
    def checker_dependencies(self) -> tuple[tuple[str, int, int], ...]:
        return tuple(dep.as_triple() for dep in self.dep_context.dependencies())

    def after_rot(self, rot_id: str, results: dict[str, ReadResult]) -> None:
        del rot_id, results  # dependencies already recorded in the reply handler


__all__ = ["CcloClient"]
