"""Simulated driver of the CC-LO (COPS-SNOW) partition server.

The readers check, the dependency check and the old-reader records live in
the sans-I/O :class:`~repro.core.cclo.kernel.CcloKernel`; this driver binds
one kernel to the discrete-event simulator and keeps the cost-model
accounting — including the per-ROT-id readers-check cost that is the paper's
central overhead.  State the tests and the fault controller inspect
(``clock``, ``readers``, the waiting-check queues) is surfaced from the
kernel as properties.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.cclo.kernel import CcloKernel, PendingCheck
from repro.core.common.messages import (
    CcloPutRequest,
    CcloReplicateUpdate,
    OneRoundReadRequest,
    ReadersCheckReply,
    ReadersCheckRequest,
)
from repro.core.common.server import PartitionServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.core.cclo.readers import ReaderRecords

PROTOCOL_NAME = "cc-lo"


class CcloServer(PartitionServer):
    """A partition server running the latency-optimal (COPS-SNOW) design."""

    kernel_class: type[CcloKernel] = CcloKernel

    def __init__(self, topology: "ClusterTopology", dc_id: int,
                 partition_index: int) -> None:
        super().__init__(topology, dc_id, partition_index)
        self.attach_kernel(self.kernel_class.from_config(
            topology.config, dc_id, partition_index,
            partitioner=topology.partitioner,
            rot_registry=lambda: topology.rot_registry))

    # --------------------------------------------------------- kernel state
    @property
    def clock(self):
        """The kernel's Lamport clock."""
        return self.kernel.clock

    @property
    def protocol_name(self) -> str:
        return self.kernel.protocol_name

    @property
    def readers(self) -> "ReaderRecords":
        """The kernel's old/current-reader records."""
        return self.kernel.readers

    @property
    def _pending_checks(self) -> dict[str, PendingCheck]:
        return self.kernel._pending_checks

    @property
    def _waiting_remote_checks(self):
        return self.kernel._waiting_remote_checks

    @property
    def _waiting_local_checks(self):
        return self.kernel._waiting_local_checks

    def enable_ordered_replication(self) -> None:
        """Forwarded to the kernel; see
        :meth:`repro.core.cclo.kernel.CcloKernel.enable_ordered_replication`."""
        self.kernel.enable_ordered_replication()

    # ------------------------------------------------------------------ costs
    def message_cost(self, message: object) -> float:
        cost = self.cost_model
        if isinstance(message, OneRoundReadRequest):
            keys = list(message.keys)
            # Checking whether the ROT id appears in a version's old-reader
            # record is a hash lookup, so the read path pays no per-id cost;
            # the readers check (PUT path) is where the id lists are scanned.
            return cost.read_cost(len(keys), self._stored_value_size(keys))
        if isinstance(message, CcloPutRequest):
            return (cost.put_cost(message.value_size)
                    + cost.dependency_cost(len(message.dependencies)))
        if isinstance(message, ReadersCheckRequest):
            ids = sum(self.readers.old_reader_count(key)
                      for key, _, _ in message.dependencies)
            return cost.readers_check_cost(ids) \
                + cost.dependency_cost(len(message.dependencies))
        if isinstance(message, ReadersCheckReply):
            return cost.readers_check_cost(len(message.old_readers))
        if isinstance(message, CcloReplicateUpdate):
            return cost.replication_cost(message.value_size, len(message.dependencies))
        return 0.0

    def _stored_value_size(self, keys: list[str]) -> int:
        for key in keys:
            version = self.store.latest_visible(key)
            if version is not None:
                return version.size_bytes
        return 0


__all__ = ["CcloServer", "PendingCheck", "PROTOCOL_NAME"]
