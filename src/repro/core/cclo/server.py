"""Partition server of CC-LO (the COPS-SNOW design).

The ROT path is latency-optimal: one round, one version, nonblocking.  The
PUT path carries the cost: before a new version becomes visible (and before
the client's PUT is acknowledged), the writing partition performs the
*readers check* — it asks every partition storing one of the PUT's causal
dependencies for the old readers of those keys, merges the returned ROT ids
into the version's old-reader record, and only then installs the version as
visible.  The same check is repeated in every remote DC when the update is
replicated, combined with the dependency check (the reply to a remote
readers-check request is delayed until the listed dependencies are installed
locally).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.clocks.lamport import LamportClock
from repro.core.cclo.readers import ReaderRecords
from repro.core.common.messages import (
    CcloPutReply,
    CcloPutRequest,
    CcloReplicateUpdate,
    OneRoundReadReply,
    OneRoundReadRequest,
    ReadResult,
    ReadersCheckReply,
    ReadersCheckRequest,
)
from repro.core.common.server import PartitionServer
from repro.errors import ProtocolError
from repro.sim.engine import PeriodicTask, milliseconds
from repro.storage.version import Version

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.sim.node import Node

PROTOCOL_NAME = "cc-lo"


@dataclass
class PendingCheck:
    """State of an in-progress readers check at the writing partition."""

    version: Version
    client: Optional["Node"]
    expected_replies: int
    collected: dict[str, int] = field(default_factory=dict)
    cumulative_ids: int = 0
    partitions_contacted: int = 0
    replicate_after: bool = True

    def merge(self, old_readers: tuple[tuple[str, int], ...]) -> None:
        self.cumulative_ids += len(old_readers)
        for rot_id, logical_time in old_readers:
            previous = self.collected.get(rot_id)
            if previous is None or logical_time > previous:
                self.collected[rot_id] = logical_time


@dataclass
class WaitingRemoteCheck:
    """A remote readers-check request waiting for dependencies to be installed."""

    sender: "Node"
    request: ReadersCheckRequest
    missing: set[tuple[str, int, int]]


@dataclass
class WaitingLocalCheck:
    """The local-partition leg of a readers check waiting for dependencies.

    Replicated updates must not become visible before their dependencies;
    the remote legs of the readers check enforce that with
    ``require_present``, and in fault-hardened mode the local leg (the
    dependencies stored on the written key's own partition) waits here under
    the same rule.
    """

    check_id: str
    keys: tuple[str, ...]
    missing: set[tuple[str, int, int]]


class CcloServer(PartitionServer):
    """A partition server running the latency-optimal (COPS-SNOW) design."""

    def __init__(self, topology: "ClusterTopology", dc_id: int,
                 partition_index: int) -> None:
        super().__init__(topology, dc_id, partition_index)
        self.clock = LamportClock()
        config = topology.config
        self.readers = ReaderRecords(
            gc_window_seconds=milliseconds(config.cclo_gc_window_ms),
            one_id_per_client=config.cclo_one_id_per_client)
        self._check_ids = itertools.count()
        self._pending_checks: dict[str, PendingCheck] = {}
        self._waiting_remote_checks: list[WaitingRemoteCheck] = []
        self._waiting_local_checks: list[WaitingLocalCheck] = []
        self._gc_task: Optional[PeriodicTask] = None
        self._ordered_replication = False
        self._parked_finalizes: dict[tuple[str, int], list[str]] = {}

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Start the periodic reader-record garbage collection."""
        window = milliseconds(self.config.cclo_gc_window_ms)
        self._gc_task = PeriodicTask(self.sim, max(window / 2, milliseconds(50)),
                                     lambda: self.readers.collect_garbage(self.sim.now),
                                     label="cclo-gc")

    def stop_background_tasks(self) -> None:
        """Cancel periodic tasks (lets the event queue drain at run end)."""
        if self._gc_task is not None:
            self._gc_task.cancel()

    # ------------------------------------------------------------------ costs
    def message_cost(self, message: object) -> float:
        cost = self.cost_model
        if isinstance(message, OneRoundReadRequest):
            keys = list(message.keys)
            # Checking whether the ROT id appears in a version's old-reader
            # record is a hash lookup, so the read path pays no per-id cost;
            # the readers check (PUT path) is where the id lists are scanned.
            return cost.read_cost(len(keys), self._stored_value_size(keys))
        if isinstance(message, CcloPutRequest):
            return (cost.put_cost(message.value_size)
                    + cost.dependency_cost(len(message.dependencies)))
        if isinstance(message, ReadersCheckRequest):
            ids = sum(self.readers.old_reader_count(key)
                      for key, _, _ in message.dependencies)
            return cost.readers_check_cost(ids) \
                + cost.dependency_cost(len(message.dependencies))
        if isinstance(message, ReadersCheckReply):
            return cost.readers_check_cost(len(message.old_readers))
        if isinstance(message, CcloReplicateUpdate):
            return cost.replication_cost(message.value_size, len(message.dependencies))
        return 0.0

    def _stored_value_size(self, keys: list[str]) -> int:
        for key in keys:
            version = self.store.latest_visible(key)
            if version is not None:
                return version.size_bytes
        return 0

    # --------------------------------------------------------------- dispatch
    def handle_message(self, sender: "Node", message: object) -> None:
        if isinstance(message, OneRoundReadRequest):
            self._handle_read(sender, message)
        elif isinstance(message, CcloPutRequest):
            self._handle_put(sender, message)
        elif isinstance(message, ReadersCheckRequest):
            self._handle_readers_check_request(sender, message)
        elif isinstance(message, ReadersCheckReply):
            self._handle_readers_check_reply(message)
        elif isinstance(message, CcloReplicateUpdate):
            self._handle_replicated_update(message)
        else:
            raise ProtocolError(f"{self.node_id} cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------- ROT
    def _handle_read(self, sender: "Node", message: OneRoundReadRequest) -> None:
        results = []
        for key in message.keys:
            results.append(self._read_key(key, message.rot_id, message.client_id))
        self.send(sender, OneRoundReadReply(rot_id=message.rot_id,
                                            results=tuple(results)))

    def _read_key(self, key: str, rot_id: str, client_id: str) -> ReadResult:
        latest_visible = self.store.latest_visible(key)
        chosen = self.store.latest(
            key, lambda v: v.is_visible() and not v.excludes_reader(rot_id))
        logical_time = self.clock.tick()
        now = self.sim.now
        if chosen is None:
            # Nothing readable (should only happen for never-written keys).
            return ReadResult(key=key, timestamp=None, origin_dc=self.dc_id,
                              value_size=0)
        if latest_visible is not None and chosen is latest_visible:
            self.readers.record_current_reader(key, rot_id, client_id,
                                               logical_time, now)
        else:
            # The ROT was barred from the latest version: it must also be
            # barred from any future version depending on what it missed.
            self.readers.record_old_reader(key, rot_id, client_id,
                                           logical_time, now)
        return ReadResult(key=key, timestamp=chosen.timestamp,
                          origin_dc=chosen.origin_dc,
                          value_size=chosen.size_bytes)

    # ------------------------------------------------------------------- PUT
    def _handle_put(self, sender: "Node", message: CcloPutRequest) -> None:
        timestamp = self.clock.tick()
        version = Version(key=message.key, value=None, timestamp=timestamp,
                          origin_dc=self.dc_id, size_bytes=message.value_size,
                          dependencies=tuple((key, ts) for key, ts, _ in
                                             message.dependencies),
                          dependency_origins=tuple(origin for _, _, origin in
                                                   message.dependencies),
                          visible=False, created_at=self.sim.now,
                          writer=message.client_id, sequence=message.sequence)
        self.store.install(version)
        self._start_readers_check(version, message.dependencies, client=sender,
                                  replicate_after=True)

    def _start_readers_check(self, version: Version,
                             dependencies: tuple[tuple[str, int, int], ...],
                             client: Optional["Node"],
                             replicate_after: bool) -> None:
        check_id = f"{self.node_id}:chk{next(self._check_ids)}"
        pending = PendingCheck(version=version, client=client,
                               expected_replies=0,
                               replicate_after=replicate_after)
        groups: dict[int, list[tuple[str, int, int]]] = {}
        for key, ts, origin in dependencies:
            groups.setdefault(self.partitioner.partition_of(key), []).append(
                (key, ts, origin))
        local_deps = groups.pop(self.partition_index, [])
        pending.expected_replies = len(groups)
        pending.partitions_contacted = len(groups)
        self._pending_checks[check_id] = pending
        if local_deps:
            require_present = version.origin_dc != self.dc_id
            missing = {dep for dep in local_deps
                       if not self._dependency_present(dep)} \
                if require_present and self._ordered_replication else set()
            if missing:
                # Fault-hardened mode: the local-partition leg obeys the same
                # dependency wait the remote legs get via ``require_present``
                # — without it a replicated update whose dependency lives on
                # its own partition becomes visible before that dependency.
                pending.expected_replies += 1
                self._waiting_local_checks.append(WaitingLocalCheck(
                    check_id=check_id,
                    keys=tuple(key for key, _, _ in local_deps),
                    missing=missing))
            else:
                pending.merge(tuple(self.readers.collect_for_response(
                    [key for key, _, _ in local_deps], self.sim.now)))
        if pending.expected_replies <= 0:
            self._finalize_check(check_id)
            return
        if not groups:
            return
        for partition_index, deps in groups.items():
            target = self.topology.server(self.dc_id, partition_index)
            self.counters.readers_check_messages += 1
            self.send(target, ReadersCheckRequest(
                check_id=check_id, dependencies=tuple(deps),
                put_key=version.key, put_timestamp=version.timestamp,
                require_present=version.origin_dc != self.dc_id))

    def _handle_readers_check_request(self, sender: "Node",
                                      message: ReadersCheckRequest) -> None:
        if message.require_present:
            missing = {dep for dep in message.dependencies
                       if not self._dependency_present(dep)}
            if missing:
                self._waiting_remote_checks.append(
                    WaitingRemoteCheck(sender=sender, request=message,
                                       missing=missing))
                return
        self._reply_readers_check(sender, message)

    def _dependency_present(self, dep: tuple[str, int, int]) -> bool:
        key, timestamp, origin = dep
        if origin == self.dc_id:
            # Dependencies created in this DC are trivially present.
            return True
        return any(version.origin_dc == origin and version.timestamp >= timestamp
                   and version.is_visible()
                   for version in self.store.versions(key))

    def _reply_readers_check(self, sender: "Node",
                             message: ReadersCheckRequest) -> None:
        collected = self.readers.collect_for_response(
            [key for key, _, _ in message.dependencies], self.sim.now)
        self.counters.readers_check_messages += 1
        self.send(sender, ReadersCheckReply(check_id=message.check_id,
                                            old_readers=tuple(collected)))

    def _handle_readers_check_reply(self, message: ReadersCheckReply) -> None:
        pending = self._pending_checks.get(message.check_id)
        if pending is None:
            raise ProtocolError(f"unknown readers check {message.check_id}")
        pending.merge(message.old_readers)
        pending.expected_replies -= 1
        if pending.expected_replies <= 0:
            self._finalize_check(message.check_id)

    def enable_ordered_replication(self) -> None:
        """Make replicated versions of a key become visible in order.

        Independent readers checks can complete out of order, letting a
        *newer* replicated version of a key become visible while an older one
        is still checking.  A remote dependency check satisfied by the newer
        version then exposes versions that causally depend on the
        still-invisible older one — a window that is sub-millisecond on a
        healthy cluster but grows to the whole backlog-drain period after a
        partition heals.  With ordering enabled, a replicated version whose
        same-key same-origin predecessor is still invisible parks its
        finalize until the predecessor completes.  The fault controller
        enables this (like the retention policies); the healthy path keeps
        the seed behaviour bit-for-bit.
        """
        self._ordered_replication = True

    def _finalize_check(self, check_id: str) -> None:
        if self._ordered_replication:
            pending = self._pending_checks[check_id]
            version = pending.version
            if version.origin_dc != self.dc_id \
                    and self._has_invisible_predecessor(version):
                slot = (version.key, version.origin_dc)
                parked = self._parked_finalizes.setdefault(slot, [])
                if check_id not in parked:
                    parked.append(check_id)
                return
        pending = self._pending_checks.pop(check_id)
        version = pending.version
        version.old_readers.update(pending.collected)
        version.visible = True
        self.readers.on_version_visible(version.key, self.sim.now)
        # Old-reader inheritance: a ROT barred from this version must also be
        # barred from any future version that causally depends on it, so the
        # collected ids become old readers of this key as well.
        for rot_id, logical_time in pending.collected.items():
            client_id = rot_id.rsplit("#", 1)[0]
            self.readers.record_old_reader(version.key, rot_id, client_id,
                                           logical_time, self.sim.now)
        self.counters.record_readers_check(
            distinct_ids=len(pending.collected),
            cumulative_ids=pending.cumulative_ids,
            partitions_contacted=pending.partitions_contacted)
        self._notify_version_visible(version)
        if pending.client is not None:
            self.send(pending.client, CcloPutReply(key=version.key,
                                                   timestamp=version.timestamp))
        if pending.replicate_after:
            self._replicate(version)
        if self._ordered_replication:
            self._release_parked_finalizes(version.key, version.origin_dc)

    def _has_invisible_predecessor(self, version: Version) -> bool:
        """An older same-key same-origin version still awaiting its check."""
        return any(other.origin_dc == version.origin_dc
                   and other.timestamp < version.timestamp
                   and not other.visible
                   for other in self.store.versions(version.key))

    def _release_parked_finalizes(self, key: str, origin_dc: int) -> None:
        """Retry parked finalizes of ``key`` now a predecessor is visible."""
        parked = self._parked_finalizes.pop((key, origin_dc), None)
        if not parked:
            return
        # Oldest first, so a released version immediately unblocks the next.
        parked.sort(key=lambda check_id:
                    self._pending_checks[check_id].version.timestamp)
        for check_id in parked:
            self._finalize_check(check_id)

    # ------------------------------------------------------------ replication
    def _replicate(self, version: Version) -> None:
        origins = version.dependency_origins or (self.dc_id,) * len(version.dependencies)
        dependencies = tuple((key, ts, origin)
                             for (key, ts), origin in zip(version.dependencies, origins))
        for replica in self.replicas():
            self.counters.replication_messages += 1
            self.counters.dependency_entries_sent += len(dependencies)
            self.send(replica, CcloReplicateUpdate(
                key=version.key, timestamp=version.timestamp,
                origin_dc=version.origin_dc, value_size=version.size_bytes,
                dependencies=dependencies, writer=version.writer,
                sequence=version.sequence,
                old_readers=tuple(version.old_readers.items())))

    def _handle_replicated_update(self, message: CcloReplicateUpdate) -> None:
        self.clock.update(message.timestamp)
        version = Version(key=message.key, value=None, timestamp=message.timestamp,
                          origin_dc=message.origin_dc, size_bytes=message.value_size,
                          dependencies=tuple((key, ts) for key, ts, _ in
                                             message.dependencies),
                          dependency_origins=tuple(origin for _, _, origin in
                                                   message.dependencies),
                          old_readers=dict(message.old_readers),
                          visible=False, created_at=self.sim.now,
                          writer=message.writer, sequence=message.sequence)
        self.store.install(version)
        # The readers check is repeated in this DC, combined with the
        # dependency check (require_present=True on the outgoing requests).
        self._start_readers_check(version, message.dependencies, client=None,
                                  replicate_after=False)

    def _notify_version_visible(self, version: Version) -> None:
        """Wake readers-check legs waiting on this version."""
        if self._waiting_remote_checks:
            still_waiting: list[WaitingRemoteCheck] = []
            for waiting in self._waiting_remote_checks:
                waiting.missing = {dep for dep in waiting.missing
                                   if not self._dependency_present(dep)}
                if waiting.missing:
                    still_waiting.append(waiting)
                else:
                    self._reply_readers_check(waiting.sender, waiting.request)
            self._waiting_remote_checks = still_waiting
        if self._waiting_local_checks:
            still_local: list[WaitingLocalCheck] = []
            released: list[WaitingLocalCheck] = []
            for waiting in self._waiting_local_checks:
                waiting.missing = {dep for dep in waiting.missing
                                   if not self._dependency_present(dep)}
                if waiting.missing:
                    still_local.append(waiting)
                else:
                    released.append(waiting)
            self._waiting_local_checks = still_local
            for waiting in released:
                pending = self._pending_checks.get(waiting.check_id)
                if pending is None:
                    continue
                pending.merge(tuple(self.readers.collect_for_response(
                    list(waiting.keys), self.sim.now)))
                pending.expected_replies -= 1
                if pending.expected_replies <= 0:
                    self._finalize_check(waiting.check_id)


__all__ = ["CcloServer", "PendingCheck", "PROTOCOL_NAME"]
