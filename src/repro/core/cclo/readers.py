"""Reader and old-reader records for CC-LO (the COPS-SNOW design).

Every partition remembers, per key:

* the **current readers** — ROT ids that read the latest visible version,
  together with the logical time of the read; and
* the **old readers** — ROT ids that read a version that has since been
  overwritten (or that were served an older version because they were barred
  from the latest one).  These are the ids a readers check collects.

The records implement the paper's two CC-LO optimisations: entries are
garbage-collected ``gc_window`` seconds after they become old readers, and a
readers-check response can be compressed to at most one ROT id per client
(the most recent one), which is safe because a client has at most one ROT in
flight at a time.
"""

from __future__ import annotations

from typing import Sequence


class ReaderEntry:
    """One recorded read: who read, when (logical time), and for which client.

    A slotted class rather than a dataclass: entries are created on every
    read and scanned in bulk by every readers check, which makes their
    construction and attribute loads one of the hottest paths of the CC-LO
    simulation (the cost the paper's Theorem 1 is about).
    """

    __slots__ = ("rot_id", "client_id", "logical_time", "recorded_at")

    def __init__(self, rot_id: str, client_id: str, logical_time: int,
                 recorded_at: float) -> None:
        self.rot_id = rot_id
        self.client_id = client_id
        self.logical_time = logical_time
        self.recorded_at = recorded_at

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ReaderEntry({self.rot_id!r}, {self.client_id!r}, "
                f"t={self.logical_time}, at={self.recorded_at:.6f})")


class ReaderRecords:
    """Per-partition reader bookkeeping."""

    def __init__(self, gc_window_seconds: float, one_id_per_client: bool) -> None:
        self._gc_window = gc_window_seconds
        self._one_id_per_client = one_id_per_client
        self._current: dict[str, dict[str, ReaderEntry]] = {}
        self._old: dict[str, dict[str, ReaderEntry]] = {}
        self.entries_expired = 0

    # --------------------------------------------------------------- recording
    def record_current_reader(self, key: str, rot_id: str, client_id: str,
                              logical_time: int, now: float) -> None:
        """Record that ``rot_id`` read the latest visible version of ``key``."""
        self._current.setdefault(key, {})[rot_id] = ReaderEntry(
            rot_id=rot_id, client_id=client_id, logical_time=logical_time,
            recorded_at=now)

    def record_old_reader(self, key: str, rot_id: str, client_id: str,
                          logical_time: int, now: float) -> None:
        """Record that ``rot_id`` was served an *older* version of ``key``.

        This happens when the ROT was barred from the latest version by an
        old-reader record attached to it; the ROT must then also be barred
        from any future version that causally depends on the versions it
        missed, so it is added to the old readers of the key directly.
        """
        self._old.setdefault(key, {})[rot_id] = ReaderEntry(
            rot_id=rot_id, client_id=client_id, logical_time=logical_time,
            recorded_at=now)

    def on_version_visible(self, key: str, now: float) -> int:
        """A new version of ``key`` became visible: demote its current readers.

        Every ROT that read the previously-latest version now has read a
        version that is no longer the most recent one, i.e. it became an old
        reader of ``key``.  Returns the number of demoted entries.
        """
        readers = self._current.pop(key, None)
        if not readers:
            return 0
        bucket = self._old.setdefault(key, {})
        for rot_id, entry in readers.items():
            bucket[rot_id] = ReaderEntry(entry.rot_id, entry.client_id,
                                         entry.logical_time, now)
        return len(readers)

    # --------------------------------------------------------------- queries
    def old_readers_of(self, key: str, now: float) -> list[tuple[str, int]]:
        """Old readers of ``key`` for a readers-check response.

        Applies the GC window (stale entries are dropped lazily) and, when
        enabled, the one-id-per-client compression.
        """
        bucket = self._old.get(key)
        if not bucket:
            return []
        fresh: dict[str, ReaderEntry] = {}
        expired: list[str] = []
        for rot_id, entry in bucket.items():
            if now - entry.recorded_at > self._gc_window:
                expired.append(rot_id)
            else:
                fresh[rot_id] = entry
        for rot_id in expired:
            del bucket[rot_id]
        self.entries_expired += len(expired)
        entries = list(fresh.values())
        if self._one_id_per_client:
            newest_per_client: dict[str, ReaderEntry] = {}
            for entry in entries:
                best = newest_per_client.get(entry.client_id)
                if best is None or entry.logical_time > best.logical_time:
                    newest_per_client[entry.client_id] = entry
            entries = list(newest_per_client.values())
        return [(entry.rot_id, entry.logical_time) for entry in entries]

    def collect_for_response(self, keys: Sequence[str],
                             now: float) -> list[tuple[str, int]]:
        """Old readers of several keys, compressed for one readers-check reply.

        The paper's optimisation applies per *response*, not per key: a reply
        carries at most one ROT id per client — the client's most recent one —
        across all the dependency keys it covers.  Within a response the same
        ROT id is also deduplicated even if it appears in the records of
        several keys.
        """
        combined: dict[str, ReaderEntry] = {}
        combined_get = combined.get
        gc_window = self._gc_window
        one_id_per_client = self._one_id_per_client
        old = self._old
        for key in keys:
            bucket = old.get(key)
            if not bucket:
                continue
            expired: list[str] = []
            for rot_id, entry in bucket.items():
                if now - entry.recorded_at > gc_window:
                    expired.append(rot_id)
                    continue
                group_key = entry.client_id if one_id_per_client else entry.rot_id
                best = combined_get(group_key)
                if best is None or entry.logical_time > best.logical_time:
                    combined[group_key] = entry
            for rot_id in expired:
                del bucket[rot_id]
            self.entries_expired += len(expired)
        return [(entry.rot_id, entry.logical_time) for entry in combined.values()]

    def collect_garbage(self, now: float) -> int:
        """Eagerly drop expired old-reader entries; returns how many."""
        removed = 0
        for key in list(self._old):
            bucket = self._old[key]
            expired = [rot_id for rot_id, entry in bucket.items()
                       if now - entry.recorded_at > self._gc_window]
            for rot_id in expired:
                del bucket[rot_id]
            removed += len(expired)
            if not bucket:
                del self._old[key]
        self.entries_expired += removed
        return removed

    # ------------------------------------------------------------- statistics
    def current_reader_count(self, key: str) -> int:
        """Number of recorded current readers of ``key`` (diagnostics)."""
        return len(self._current.get(key, {}))

    def old_reader_count(self, key: str) -> int:
        """Number of recorded old readers of ``key`` (diagnostics)."""
        return len(self._old.get(key, {}))

    def total_tracked_entries(self) -> int:
        """Total number of reader entries currently retained."""
        return (sum(len(bucket) for bucket in self._current.values())
                + sum(len(bucket) for bucket in self._old.values()))


__all__ = ["ReaderEntry", "ReaderRecords"]
