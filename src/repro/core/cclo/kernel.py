"""Sans-I/O kernels of CC-LO (the COPS-SNOW design).

:class:`CcloKernel` holds the full server-side protocol — one-round reads
with old-reader recording, the readers check on every PUT, the remote
dependency check and the fault-hardened ordered-replication mode — as a pure
state machine; :class:`CcloClientKernel` holds the client side (explicit
nearest dependencies, one read request per involved partition).  Both emit
:mod:`repro.core.common.kernel` effects and never import the simulator;
drivers execute the effects against the discrete-event simulator
(:mod:`repro.core.cclo.server` / ``client``) or asyncio
(:mod:`repro.runtime`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.causal.dependencies import ClientDependencyContext
from repro.clocks.lamport import LamportClock
from repro.clocks.units import milliseconds
from repro.core.cclo.readers import ReaderRecords
from repro.core.common.kernel import (
    Addr,
    ClientKernel,
    PutOutcome,
    RotOutcome,
    ServerAddr,
    ServerKernel,
    TimerSpec,
)
from repro.core.common.messages import (
    CcloPutReply,
    CcloPutRequest,
    CcloReplicateUpdate,
    OneRoundReadReply,
    OneRoundReadRequest,
    PendingRot,
    ReadResult,
    ReadersCheckReply,
    ReadersCheckRequest,
)
from repro.errors import ProtocolError
from repro.obs.events import REPLICATE_APPLY, VISIBLE
from repro.storage.mvstore import MultiVersionStore
from repro.storage.version import Version
from repro.wire.intern import intern_key

PROTOCOL_NAME = "cc-lo"


@dataclass
class PendingCheck:
    """State of an in-progress readers check at the writing partition."""

    version: Version
    client: Optional[Addr]
    expected_replies: int
    collected: dict[str, int] = field(default_factory=dict)
    cumulative_ids: int = 0
    partitions_contacted: int = 0
    replicate_after: bool = True

    def merge(self, old_readers: tuple[tuple[str, int], ...]) -> None:
        self.cumulative_ids += len(old_readers)
        for rot_id, logical_time in old_readers:
            previous = self.collected.get(rot_id)
            if previous is None or logical_time > previous:
                self.collected[rot_id] = logical_time


@dataclass
class WaitingRemoteCheck:
    """A remote readers-check request waiting for dependencies to be installed."""

    sender: Addr
    request: ReadersCheckRequest
    missing: set[tuple[str, int, int]]


@dataclass
class WaitingLocalCheck:
    """The local-partition leg of a readers check waiting for dependencies.

    Replicated updates must not become visible before their dependencies;
    the remote legs of the readers check enforce that with
    ``require_present``, and in fault-hardened mode the local leg (the
    dependencies stored on the written key's own partition) waits here under
    the same rule.
    """

    check_id: str
    keys: tuple[str, ...]
    missing: set[tuple[str, int, int]]


class CcloKernel(ServerKernel):
    """The partition-server state machine of the latency-optimal design."""

    protocol_name = PROTOCOL_NAME

    def __init__(self, *, node_id: str, dc_id: int, partition_index: int,
                 num_dcs: int, num_partitions: int, partitioner,
                 gc_window_seconds: float, one_id_per_client: bool,
                 max_versions_per_key: int = 32,
                 counters=None, rot_registry=None) -> None:
        super().__init__(node_id=node_id, dc_id=dc_id,
                         partition_index=partition_index, num_dcs=num_dcs,
                         num_partitions=num_partitions,
                         partitioner=partitioner, counters=counters,
                         rot_registry=rot_registry)
        self.clock = LamportClock()
        self.store = MultiVersionStore(max_versions_per_key=max_versions_per_key)
        self.readers = ReaderRecords(gc_window_seconds=gc_window_seconds,
                                     one_id_per_client=one_id_per_client)
        self._gc_window = gc_window_seconds
        self._check_ids = itertools.count()
        self._pending_checks: dict[str, PendingCheck] = {}
        self._waiting_remote_checks: list[WaitingRemoteCheck] = []
        self._waiting_local_checks: list[WaitingLocalCheck] = []
        self._ordered_replication = False
        self._parked_finalizes: dict[tuple[str, int], list[str]] = {}
        # Trace ids of replicated versions whose readers check has not
        # finalised yet, keyed by (key, origin_dc, timestamp); only populated
        # while tracing (the finalize runs under a different message's trace).
        self._trace_by_version: dict[tuple[str, int, int], str] = {}

    # ------------------------------------------------------------ factories
    @classmethod
    def from_config(cls, config, dc_id: int, partition_index: int, *,
                    partitioner, time_source=None, skew_offset_us: float = 0.0,
                    counters=None, rot_registry=None) -> "CcloKernel":
        """Build a kernel from a cluster configuration (duck-typed).

        ``time_source`` / ``skew_offset_us`` are accepted for interface
        uniformity with the vector kernels; CC-LO runs on a Lamport clock.
        """
        del time_source, skew_offset_us
        return cls(node_id=f"server-dc{dc_id}-p{partition_index}",
                   dc_id=dc_id, partition_index=partition_index,
                   num_dcs=config.num_dcs,
                   num_partitions=config.num_partitions,
                   partitioner=partitioner,
                   gc_window_seconds=milliseconds(config.cclo_gc_window_ms),
                   one_id_per_client=config.cclo_one_id_per_client,
                   max_versions_per_key=config.max_versions_per_key,
                   counters=counters, rot_registry=rot_registry)

    # ---------------------------------------------------------------- timers
    def periodic_timers(self) -> tuple[TimerSpec, ...]:
        return (TimerSpec(tag="cclo-gc",
                          interval=max(self._gc_window / 2,
                                       milliseconds(50))),)

    def _handle_timer(self, tag: str, payload: Any) -> None:
        if tag == "cclo-gc":
            self.readers.collect_garbage(self.now)
        else:
            super()._handle_timer(tag, payload)

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, sender: Addr, message: object) -> None:
        if isinstance(message, OneRoundReadRequest):
            self._handle_read(sender, message)
        elif isinstance(message, CcloPutRequest):
            self._handle_put(sender, message)
        elif isinstance(message, ReadersCheckRequest):
            self._handle_readers_check_request(sender, message)
        elif isinstance(message, ReadersCheckReply):
            self._handle_readers_check_reply(message)
        elif isinstance(message, CcloReplicateUpdate):
            self._handle_replicated_update(message)
        else:
            raise ProtocolError(
                f"{self.node_id} cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------- ROT
    def _handle_read(self, sender: Addr, message: OneRoundReadRequest) -> None:
        results = []
        for key in message.keys:
            results.append(self._read_key(key, message.rot_id, message.client_id))
        self._send(sender, OneRoundReadReply(rot_id=message.rot_id,
                                             results=tuple(results)))

    def _read_key(self, key: str, rot_id: str, client_id: str) -> ReadResult:
        latest_visible = self.store.latest_visible(key)
        chosen = self.store.latest(
            key, lambda v: v.is_visible() and not v.excludes_reader(rot_id))
        logical_time = self.clock.tick()
        now = self.now
        if chosen is None:
            # Nothing readable (should only happen for never-written keys).
            return ReadResult(key=key, timestamp=None, origin_dc=self.dc_id,
                              value_size=0)
        if latest_visible is not None and chosen is latest_visible:
            self.readers.record_current_reader(key, rot_id, client_id,
                                               logical_time, now)
        else:
            # The ROT was barred from the latest version: it must also be
            # barred from any future version depending on what it missed.
            self.readers.record_old_reader(key, rot_id, client_id,
                                           logical_time, now)
        return ReadResult(key=key, timestamp=chosen.timestamp,
                          origin_dc=chosen.origin_dc,
                          value_size=chosen.size_bytes)

    # ------------------------------------------------------------------- PUT
    def _handle_put(self, sender: Addr, message: CcloPutRequest) -> None:
        timestamp = self.clock.tick()
        # Interned: wire decoding hands every put of a hot key a fresh str;
        # sharing one object keeps store indexes and reader tables aliased.
        version = Version(key=intern_key(message.key), value=None,
                          timestamp=timestamp,
                          origin_dc=self.dc_id, size_bytes=message.value_size,
                          dependencies=tuple((key, ts) for key, ts, _ in
                                             message.dependencies),
                          dependency_origins=tuple(origin for _, _, origin in
                                                   message.dependencies),
                          visible=False, created_at=self.now,
                          writer=message.client_id, sequence=message.sequence)
        self.store.install(version)
        self._start_readers_check(version, message.dependencies, client=sender,
                                  replicate_after=True)

    def _start_readers_check(self, version: Version,
                             dependencies: tuple[tuple[str, int, int], ...],
                             client: Optional[Addr],
                             replicate_after: bool) -> None:
        check_id = f"{self.node_id}:chk{next(self._check_ids)}"
        pending = PendingCheck(version=version, client=client,
                               expected_replies=0,
                               replicate_after=replicate_after)
        groups: dict[int, list[tuple[str, int, int]]] = {}
        for key, ts, origin in dependencies:
            groups.setdefault(self.partitioner.partition_of(key), []).append(
                (key, ts, origin))
        local_deps = groups.pop(self.partition_index, [])
        pending.expected_replies = len(groups)
        pending.partitions_contacted = len(groups)
        self._pending_checks[check_id] = pending
        if local_deps:
            require_present = version.origin_dc != self.dc_id
            missing = {dep for dep in local_deps
                       if not self._dependency_present(dep)} \
                if require_present and self._ordered_replication else set()
            if missing:
                # Fault-hardened mode: the local-partition leg obeys the same
                # dependency wait the remote legs get via ``require_present``
                # — without it a replicated update whose dependency lives on
                # its own partition becomes visible before that dependency.
                pending.expected_replies += 1
                self._waiting_local_checks.append(WaitingLocalCheck(
                    check_id=check_id,
                    keys=tuple(key for key, _, _ in local_deps),
                    missing=missing))
            else:
                pending.merge(tuple(self.readers.collect_for_response(
                    [key for key, _, _ in local_deps], self.now)))
        if pending.expected_replies <= 0:
            self._finalize_check(check_id)
            return
        if not groups:
            return
        for partition_index, deps in groups.items():
            self.counters.readers_check_messages += 1
            self._send(ServerAddr(self.dc_id, partition_index),
                       ReadersCheckRequest(
                           check_id=check_id, dependencies=tuple(deps),
                           put_key=version.key, put_timestamp=version.timestamp,
                           require_present=version.origin_dc != self.dc_id))

    def _handle_readers_check_request(self, sender: Addr,
                                      message: ReadersCheckRequest) -> None:
        if message.require_present:
            missing = {dep for dep in message.dependencies
                       if not self._dependency_present(dep)}
            if missing:
                self._waiting_remote_checks.append(
                    WaitingRemoteCheck(sender=sender, request=message,
                                       missing=missing))
                return
        self._reply_readers_check(sender, message)

    def _dependency_present(self, dep: tuple[str, int, int]) -> bool:
        key, timestamp, origin = dep
        if origin == self.dc_id:
            # Dependencies created in this DC are trivially present.
            return True
        return any(version.origin_dc == origin and version.timestamp >= timestamp
                   and version.is_visible()
                   for version in self.store.versions(key))

    def _reply_readers_check(self, sender: Addr,
                             message: ReadersCheckRequest) -> None:
        collected = self.readers.collect_for_response(
            [key for key, _, _ in message.dependencies], self.now)
        self.counters.readers_check_messages += 1
        self._send(sender, ReadersCheckReply(check_id=message.check_id,
                                             old_readers=tuple(collected)))

    def _handle_readers_check_reply(self, message: ReadersCheckReply) -> None:
        pending = self._pending_checks.get(message.check_id)
        if pending is None:
            raise ProtocolError(f"unknown readers check {message.check_id}")
        pending.merge(message.old_readers)
        pending.expected_replies -= 1
        if pending.expected_replies <= 0:
            self._finalize_check(message.check_id)

    def enable_ordered_replication(self) -> None:
        """Make replicated versions of a key become visible in order.

        Independent readers checks can complete out of order, letting a
        *newer* replicated version of a key become visible while an older one
        is still checking.  A remote dependency check satisfied by the newer
        version then exposes versions that causally depend on the
        still-invisible older one — a window that is sub-millisecond on a
        healthy cluster but grows to the whole backlog-drain period after a
        partition heals.  With ordering enabled, a replicated version whose
        same-key same-origin predecessor is still invisible parks its
        finalize until the predecessor completes.  The fault controller
        enables this (like the retention policies); the healthy path keeps
        the seed behaviour bit-for-bit.
        """
        self._ordered_replication = True

    def _finalize_check(self, check_id: str) -> None:
        if self._ordered_replication:
            pending = self._pending_checks[check_id]
            version = pending.version
            if version.origin_dc != self.dc_id \
                    and self._has_invisible_predecessor(version):
                slot = (version.key, version.origin_dc)
                parked = self._parked_finalizes.setdefault(slot, [])
                if check_id not in parked:
                    parked.append(check_id)
                return
        pending = self._pending_checks.pop(check_id)
        version = pending.version
        version.old_readers.update(pending.collected)
        version.visible = True
        tracer = self.tracer
        if tracer is not None and version.origin_dc != self.dc_id:
            # The readers check completing is the remote-visibility point of
            # a replicated write (CC-LO has no GSS to wait for).
            trace = self._trace_by_version.pop(
                (version.key, version.origin_dc, version.timestamp), None)
            tracer.emit(self.node_id, VISIBLE, trace=trace, name=version.key,
                        dc=self.dc_id)
        self.readers.on_version_visible(version.key, self.now)
        # Old-reader inheritance: a ROT barred from this version must also be
        # barred from any future version that causally depends on it, so the
        # collected ids become old readers of this key as well.
        for rot_id, logical_time in pending.collected.items():
            client_id = rot_id.rsplit("#", 1)[0]
            self.readers.record_old_reader(version.key, rot_id, client_id,
                                           logical_time, self.now)
        self.counters.record_readers_check(
            distinct_ids=len(pending.collected),
            cumulative_ids=pending.cumulative_ids,
            partitions_contacted=pending.partitions_contacted)
        self._notify_version_visible(version)
        if pending.client is not None:
            self._send(pending.client, CcloPutReply(key=version.key,
                                                    timestamp=version.timestamp))
        if pending.replicate_after:
            self._replicate(version)
        if self._ordered_replication:
            self._release_parked_finalizes(version.key, version.origin_dc)

    def _has_invisible_predecessor(self, version: Version) -> bool:
        """An older same-key same-origin version still awaiting its check."""
        return any(other.origin_dc == version.origin_dc
                   and other.timestamp < version.timestamp
                   and not other.visible
                   for other in self.store.versions(version.key))

    def _release_parked_finalizes(self, key: str, origin_dc: int) -> None:
        """Retry parked finalizes of ``key`` now a predecessor is visible."""
        parked = self._parked_finalizes.pop((key, origin_dc), None)
        if not parked:
            return
        # Oldest first, so a released version immediately unblocks the next.
        parked.sort(key=lambda check_id:
                    self._pending_checks[check_id].version.timestamp)
        for check_id in parked:
            self._finalize_check(check_id)

    # ------------------------------------------------------------ replication
    def _replicate(self, version: Version) -> None:
        origins = version.dependency_origins or (self.dc_id,) * len(version.dependencies)
        dependencies = tuple((key, ts, origin)
                             for (key, ts), origin in zip(version.dependencies, origins))
        for replica in self.replicas():
            self.counters.replication_messages += 1
            self.counters.dependency_entries_sent += len(dependencies)
            self._send(replica, CcloReplicateUpdate(
                key=version.key, timestamp=version.timestamp,
                origin_dc=version.origin_dc, value_size=version.size_bytes,
                dependencies=dependencies, writer=version.writer,
                sequence=version.sequence,
                old_readers=tuple(version.old_readers.items())))

    def _handle_replicated_update(self, message: CcloReplicateUpdate) -> None:
        self.clock.update(message.timestamp)
        version = Version(key=intern_key(message.key), value=None,
                          timestamp=message.timestamp,
                          origin_dc=message.origin_dc, size_bytes=message.value_size,
                          dependencies=tuple((key, ts) for key, ts, _ in
                                             message.dependencies),
                          dependency_origins=tuple(origin for _, _, origin in
                                                   message.dependencies),
                          old_readers=dict(message.old_readers),
                          visible=False, created_at=self.now,
                          writer=message.writer, sequence=message.sequence)
        self.store.install(version)
        tracer = self.tracer
        if tracer is not None:
            trace = self.current_trace
            tracer.emit(self.node_id, REPLICATE_APPLY, trace=trace,
                        name=version.key, dc=self.dc_id,
                        data=(("origin_dc", version.origin_dc),
                              ("timestamp", version.timestamp)))
            if trace is not None:
                self._trace_by_version[(version.key, version.origin_dc,
                                        version.timestamp)] = trace
        # The readers check is repeated in this DC, combined with the
        # dependency check (require_present=True on the outgoing requests).
        self._start_readers_check(version, message.dependencies, client=None,
                                  replicate_after=False)

    def _notify_version_visible(self, version: Version) -> None:
        """Wake readers-check legs waiting on this version."""
        del version
        if self._waiting_remote_checks:
            still_waiting: list[WaitingRemoteCheck] = []
            for waiting in self._waiting_remote_checks:
                waiting.missing = {dep for dep in waiting.missing
                                   if not self._dependency_present(dep)}
                if waiting.missing:
                    still_waiting.append(waiting)
                else:
                    self._reply_readers_check(waiting.sender, waiting.request)
            self._waiting_remote_checks = still_waiting
        if self._waiting_local_checks:
            still_local: list[WaitingLocalCheck] = []
            released: list[WaitingLocalCheck] = []
            for waiting in self._waiting_local_checks:
                waiting.missing = {dep for dep in waiting.missing
                                   if not self._dependency_present(dep)}
                if waiting.missing:
                    still_local.append(waiting)
                else:
                    released.append(waiting)
            self._waiting_local_checks = still_local
            for waiting in released:
                pending = self._pending_checks.get(waiting.check_id)
                if pending is None:
                    continue
                pending.merge(tuple(self.readers.collect_for_response(
                    list(waiting.keys), self.now)))
                pending.expected_replies -= 1
                if pending.expected_replies <= 0:
                    self._finalize_check(waiting.check_id)


# --------------------------------------------------------------------------
# Client kernel
# --------------------------------------------------------------------------


class CcloClientKernel(ClientKernel):
    """The client state machine of the latency-optimal protocol.

    ROTs are a single round (one read request per involved partition); PUTs
    carry the client's accumulated nearest dependencies — exactly what the
    writing partition needs to run the readers check.
    """

    def __init__(self, *, client_id: str, dc_id: int, partitioner,
                 rot_registry=None) -> None:
        super().__init__(client_id=client_id, dc_id=dc_id,
                         partitioner=partitioner, rot_registry=rot_registry)
        self.dep_context = ClientDependencyContext()
        self._pending_rot: Optional[PendingRot] = None

    @classmethod
    def from_config(cls, config, client_id: str, dc_id: int, *,
                    partitioner, rng=None, rot_registry=None) -> "CcloClientKernel":
        """Factory with the same signature as the vector client kernels."""
        del config, rng
        return cls(client_id=client_id, dc_id=dc_id, partitioner=partitioner,
                   rot_registry=rot_registry)

    # ------------------------------------------------------------------- ROT
    def _issue_rot(self, operation) -> None:
        rot_id = self.next_rot_id()
        groups = self.partitioner.group_by_partition(list(operation.keys))
        self._pending_rot = PendingRot(rot_id=rot_id, keys=operation.keys,
                                       started_at=self.now,
                                       expected_replies=len(groups))
        registry = self.rot_registry()
        if registry is not None:
            # Fault runs track in-flight ROTs so version GC never evicts the
            # versions an old-reader-barred ROT must fall back to.
            registry.register(self.dc_id, rot_id)
        for partition_index, keys in groups.items():
            self._send(ServerAddr(self.dc_id, partition_index),
                       OneRoundReadRequest(rot_id=rot_id, keys=tuple(keys),
                                           client_id=self.client_id))

    def _handle_read_reply(self, message: OneRoundReadReply) -> None:
        pending = self._pending_rot
        if pending is None or pending.rot_id != message.rot_id:
            raise ProtocolError(
                f"{self.client_id} received a reply for unknown ROT "
                f"{message.rot_id}")
        pending.record_reply(message.results)
        if not pending.complete:
            return
        self._pending_rot = None
        registry = self.rot_registry()
        if registry is not None:
            registry.deregister(self.dc_id, message.rot_id)
        for result in pending.results.values():
            if result.timestamp is not None:
                partition = self.partitioner.partition_of(result.key)
                self.dep_context.observe_read(result.key, result.timestamp,
                                              partition, result.origin_dc)
        self._complete("rot", RotOutcome(rot_id=message.rot_id,
                                         results=pending.results))

    # ------------------------------------------------------------------- PUT
    def _issue_put(self, operation) -> None:
        key = operation.keys[0]
        dependencies = tuple(dep.as_triple()
                             for dep in self.dep_context.dependencies())
        request = CcloPutRequest(
            key=key, value_size=operation.value_size,
            dependencies=dependencies,
            dependency_partitions=self.dep_context.dependency_partitions(),
            client_id=self.client_id, sequence=self.sequence)
        self._send(ServerAddr(self.dc_id, self.partitioner.partition_of(key)),
                   request)

    def _handle_put_reply(self, message: CcloPutReply) -> None:
        # Snapshot the causal context *before* the PUT subsumes it — the
        # checker records the PUT against the context it was issued under.
        dependencies = self.checker_dependencies()
        partition = self.partitioner.partition_of(message.key)
        self.dep_context.observe_write(message.key, message.timestamp,
                                       partition, self.dc_id)
        self._complete("put", PutOutcome(key=message.key,
                                         timestamp=message.timestamp,
                                         origin_dc=self.dc_id,
                                         dependencies=dependencies))

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, message: object) -> None:
        if isinstance(message, OneRoundReadReply):
            self._handle_read_reply(message)
        elif isinstance(message, CcloPutReply):
            self._handle_put_reply(message)
        else:
            raise ProtocolError(
                f"{self.client_id} cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------ misc
    def checker_dependencies(self) -> tuple[tuple[str, int, int], ...]:
        return tuple(dep.as_triple() for dep in self.dep_context.dependencies())


__all__ = [
    "CcloClientKernel",
    "CcloKernel",
    "PROTOCOL_NAME",
    "PendingCheck",
    "WaitingLocalCheck",
    "WaitingRemoteCheck",
]
