"""CC-LO — the latency-optimal baseline (the COPS-SNOW design).

CC-LO implements ROTs that are nonblocking, one-version and **one-round** —
the three properties the SNOW paper calls latency-optimal.  The price is paid
on PUTs: before a PUT completes, the writing partition must collect from every
partition storing one of the PUT's causal dependencies the identifiers of the
"old readers" — the ROTs that observed a snapshot which must not include the
new version — and attach them to the version (the *readers check*).  The
paper's two published optimisations are implemented and on by default:
aggressive garbage collection of reader records (500 ms instead of 5 s) and
at most one ROT id per client in each readers-check response.
"""

from repro.core.cclo.client import CcloClient
from repro.core.cclo.readers import ReaderRecords
from repro.core.cclo.server import CcloServer

PROTOCOL_NAME = "cc-lo"

__all__ = ["CcloClient", "CcloServer", "PROTOCOL_NAME", "ReaderRecords"]
