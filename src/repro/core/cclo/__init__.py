"""CC-LO — the latency-optimal baseline (the COPS-SNOW design).

CC-LO implements ROTs that are nonblocking, one-version and **one-round** —
the three properties the SNOW paper calls latency-optimal.  The price is paid
on PUTs: before a PUT completes, the writing partition must collect from every
partition storing one of the PUT's causal dependencies the identifiers of the
"old readers" — the ROTs that observed a snapshot which must not include the
new version — and attach them to the version (the *readers check*).  The
paper's two published optimisations are implemented and on by default:
aggressive garbage collection of reader records (500 ms instead of 5 s) and
at most one ROT id per client in each readers-check response.

The protocol state machines live in :mod:`repro.core.cclo.kernel`
(sans-I/O); the simulated drivers in ``server``/``client``.  Exports resolve
lazily so kernel imports stay simulator-free.
"""

from repro._lazy import make_lazy

_EXPORTS = {
    "CcloClient": "repro.core.cclo.client",
    "CcloClientKernel": "repro.core.cclo.kernel",
    "CcloKernel": "repro.core.cclo.kernel",
    "CcloServer": "repro.core.cclo.server",
    "PROTOCOL_NAME": "repro.core.cclo.kernel",
    "ReaderRecords": "repro.core.cclo.readers",
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
