"""Sans-I/O kernels of the vector protocol family (Contrarian / Cure).

:class:`VectorServerKernel` and :class:`VectorClientKernel` hold the complete
protocol logic of Section 4 — PUT timestamping, snapshot-vector choice, GSS
stabilization, heartbeats, replication — as pure state machines emitting
:mod:`repro.core.common.kernel` effects.  :class:`ContrarianKernel` and
:class:`CureKernel` (and their client counterparts) pin down the two
published configurations: HLC + 1½ rounds versus physical clocks + 2 rounds.

Nothing here imports the simulator: time arrives through ``now`` arguments
and the injected :class:`~repro.core.vector.clockbox.ClockBox`; randomness
through the injected client RNG.  The drivers in
:mod:`repro.core.vector.server` / ``client`` execute the effects against the
discrete-event simulator, the ones in :mod:`repro.runtime` against asyncio.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.causal.dependencies import ClientDependencyContext
from repro.causal.stabilization import GlobalStableSnapshot
from repro.causal.vectors import entrywise_max, vector_leq, zero_vector
from repro.clocks.units import milliseconds
from repro.core.common.kernel import (
    Addr,
    ClientAddr,
    ClientKernel,
    PutOutcome,
    RotOutcome,
    ServerAddr,
    ServerKernel,
    TimerSpec,
)
from repro.core.common.messages import (
    PendingRot,
    ReadResult,
    RemoteHeartbeat,
    ReplicateUpdate,
    RotCoordinatorRequest,
    RotProxyRead,
    RotReadRequest,
    RotSnapshotReply,
    RotValueReply,
    StabilizationMessage,
    VectorPutReply,
    VectorPutRequest,
)
from repro.core.vector.clockbox import ClockBox
from repro.errors import ProtocolError
from repro.obs.events import GSS_ADVANCE, REPLICATE_APPLY, VISIBLE
from repro.storage.mvstore import MultiVersionStore
from repro.storage.version import Version
from repro.wire.intern import intern_key


class VectorServerKernel(ServerKernel):
    """The partition-server state machine of the Contrarian/Cure design."""

    #: Default clock mode; subclasses pin the published configurations.
    clock_mode = "hlc"
    protocol_name = "vector"

    def __init__(self, *, node_id: str, dc_id: int, partition_index: int,
                 num_dcs: int, num_partitions: int, partitioner,
                 clock: ClockBox,
                 stabilization_interval: float,
                 heartbeat_interval: float,
                 max_versions_per_key: int = 32,
                 counters=None, rot_registry=None) -> None:
        super().__init__(node_id=node_id, dc_id=dc_id,
                         partition_index=partition_index, num_dcs=num_dcs,
                         num_partitions=num_partitions,
                         partitioner=partitioner, counters=counters,
                         rot_registry=rot_registry)
        self.clock = clock
        self.store = MultiVersionStore(max_versions_per_key=max_versions_per_key)
        self.version_vector: list[int] = list(zero_vector(num_dcs))
        self.gss_state = GlobalStableSnapshot(num_dcs, num_partitions,
                                              partition_index)
        self._stabilization_interval = stabilization_interval
        self._heartbeat_interval = heartbeat_interval
        # Traced replicated versions not yet covered by the GSS; entries are
        # (trace, key, dependency_vector).  Only populated while tracing.
        self._trace_pending: list[tuple[str, str, tuple[int, ...]]] = []

    # ------------------------------------------------------------ factories
    @classmethod
    def resolved_clock_mode(cls, config) -> str:
        """The clock mode this kernel runs with under ``config``."""
        return cls.clock_mode

    @classmethod
    def from_config(cls, config, dc_id: int, partition_index: int, *,
                    partitioner, time_source, skew_offset_us: float = 0.0,
                    counters=None, rot_registry=None) -> "VectorServerKernel":
        """Build a kernel from a :class:`~repro.cluster.config.ClusterConfig`.

        ``config`` is duck-typed so this module never imports the (simulator
        -dependent) configuration class; drivers of both backends pass the
        real one.
        """
        node_id = f"server-dc{dc_id}-p{partition_index}"
        clock = ClockBox(cls.resolved_clock_mode(config), time_source,
                         offset_us=skew_offset_us)
        return cls(node_id=node_id, dc_id=dc_id,
                   partition_index=partition_index,
                   num_dcs=config.num_dcs,
                   num_partitions=config.num_partitions,
                   partitioner=partitioner, clock=clock,
                   stabilization_interval=milliseconds(
                       config.stabilization_interval_ms),
                   heartbeat_interval=milliseconds(
                       config.heartbeat_interval_ms),
                   max_versions_per_key=config.max_versions_per_key,
                   counters=counters, rot_registry=rot_registry)

    # ------------------------------------------------------------------- GSS
    @property
    def gss(self) -> tuple[int, ...]:
        """The partition's current view of the Global Stable Snapshot."""
        return self.gss_state.gss

    # ---------------------------------------------------------------- timers
    def periodic_timers(self) -> tuple[TimerSpec, ...]:
        interval = self._stabilization_interval
        specs = [TimerSpec(
            tag="stabilization", interval=interval,
            start_delay=interval * (0.5 + 0.5 * self.partition_index
                                    / max(1, self.num_partitions)))]
        if self.num_dcs > 1:
            specs.append(TimerSpec(tag="remote-heartbeat",
                                   interval=self._heartbeat_interval))
        return tuple(specs)

    def _handle_timer(self, tag: str, payload: Any) -> None:
        if tag == "stabilization":
            self._broadcast_version_vector()
        elif tag == "remote-heartbeat":
            self._send_remote_heartbeats()
        elif tag == "put-wait":
            sender, message = payload
            self._finish_put(sender, message)
        elif tag == "rot-block":
            client, rot_id, keys, snapshot = payload
            self._serve_read(client, rot_id, keys, snapshot)
        else:
            super()._handle_timer(tag, payload)

    def _broadcast_version_vector(self) -> None:
        """Advertise the local version vector to the other local partitions."""
        local = self.dc_id
        self.version_vector[local] = max(self.version_vector[local],
                                         self.clock.read())
        vv = tuple(self.version_vector)
        tracer = self.tracer
        before = self.gss_state.gss if tracer is not None else None
        self.gss_state.update_local_vv(vv)
        if tracer is not None and self.gss_state.gss != before:
            self._trace_gss_advance(tracer)
        message = StabilizationMessage(partition_index=self.partition_index,
                                       version_vector=vv)
        for peer in self.peers_in_dc():
            self.counters.stabilization_messages += 1
            self._send(peer, message)

    def _send_remote_heartbeats(self) -> None:
        """Advertise the local clock to remote replicas of this partition."""
        message = RemoteHeartbeat(origin_dc=self.dc_id,
                                  timestamp=self.clock.read())
        for replica in self.replicas():
            self.counters.stabilization_messages += 1
            self._send(replica, message)

    # --------------------------------------------------------------- handlers
    def _dispatch(self, sender: Addr, message: object) -> None:
        if isinstance(message, VectorPutRequest):
            self._handle_put(sender, message)
        elif isinstance(message, RotCoordinatorRequest):
            self._handle_coordinator_request(sender, message)
        elif isinstance(message, RotProxyRead):
            self._handle_read(message)
        elif isinstance(message, RotReadRequest):
            self._handle_read(message)
        elif isinstance(message, StabilizationMessage):
            tracer = self.tracer
            before = self.gss_state.gss if tracer is not None else None
            self.gss_state.observe_remote_vv(message.partition_index,
                                             message.version_vector)
            if tracer is not None and self.gss_state.gss != before:
                self._trace_gss_advance(tracer)
        elif isinstance(message, RemoteHeartbeat):
            self._observe_remote_timestamp(message.origin_dc, message.timestamp)
        elif isinstance(message, ReplicateUpdate):
            self._handle_replicated_update(message)
        else:
            raise ProtocolError(
                f"{self.node_id} cannot handle {type(message).__name__}")

    # -------------------------------------------------------------------- PUT
    def _handle_put(self, sender: Addr, message: VectorPutRequest) -> None:
        floor = max(message.client_vector) if message.client_vector else 0
        decision = self.clock.timestamp_after(floor)
        if decision.wait_seconds > 0:
            # Physical clocks (Cure) may have to wait before they can assign a
            # timestamp larger than the client's dependencies.
            self.counters.total_block_time += decision.wait_seconds
            self._set_timer(decision.wait_seconds, "put-wait",
                            payload=(sender, message))
            return
        self._finish_put(sender, message, timestamp=decision.timestamp)

    def _finish_put(self, sender: Addr, message: VectorPutRequest,
                    timestamp: Optional[int] = None) -> None:
        if timestamp is None:
            floor = max(message.client_vector) if message.client_vector else 0
            timestamp = self.clock.timestamp_after(floor).timestamp
        local = self.dc_id
        dependency_vector = list(entrywise_max(message.client_vector,
                                               self._gss_with_local_zero()))
        dependency_vector[local] = timestamp
        # Interning collapses the per-message key copies that arrive off the
        # wire (every put of a hot key decodes a fresh str) into one shared
        # object, so store indexes and dependency lists alias rather than
        # duplicate.
        version = Version(key=intern_key(message.key), value=None,
                          timestamp=timestamp,
                          origin_dc=local, size_bytes=message.value_size,
                          dependency_vector=tuple(dependency_vector),
                          dependencies=message.dependencies,
                          created_at=self.now, writer=message.client_id,
                          sequence=message.sequence)
        self.store.install(version)
        self.version_vector[local] = max(self.version_vector[local], timestamp)
        self._send(sender, VectorPutReply(key=message.key, timestamp=timestamp,
                                          gss=self.gss))
        self._replicate(version)

    def _gss_with_local_zero(self) -> tuple[int, ...]:
        gss = list(self.gss)
        gss[self.dc_id] = 0
        return tuple(gss)

    def _replicate(self, version: Version) -> None:
        for replica in self.replicas():
            self.counters.replication_messages += 1
            self.counters.dependency_entries_sent += len(version.dependencies)
            self._send(replica, ReplicateUpdate(
                key=version.key, timestamp=version.timestamp,
                origin_dc=version.origin_dc, value_size=version.size_bytes,
                dependency_vector=version.dependency_vector,
                dependencies=version.dependencies,
                writer=version.writer, sequence=version.sequence))

    def _handle_replicated_update(self, message: ReplicateUpdate) -> None:
        self.clock.observe(message.timestamp)
        self._observe_remote_timestamp(message.origin_dc, message.timestamp)
        version = Version(key=intern_key(message.key), value=None,
                          timestamp=message.timestamp,
                          origin_dc=message.origin_dc, size_bytes=message.value_size,
                          dependency_vector=message.dependency_vector,
                          dependencies=message.dependencies,
                          created_at=self.now, writer=message.writer,
                          sequence=message.sequence)
        self.store.install(version)
        tracer = self.tracer
        if tracer is not None:
            self._trace_replicate_apply(tracer, version)

    # -------------------------------------------------------- trace helpers
    def _trace_replicate_apply(self, tracer, version: Version) -> None:
        """Record a replicated install and watch the version until the GSS
        covers its dependency vector (its remote-visibility point)."""
        trace = self.current_trace
        tracer.emit(self.node_id, REPLICATE_APPLY, trace=trace,
                    name=version.key, dc=self.dc_id,
                    data=(("origin_dc", version.origin_dc),
                          ("timestamp", version.timestamp)))
        if trace is None:
            return
        if self._gss_covers(version.dependency_vector, self.gss_state.gss):
            tracer.emit(self.node_id, VISIBLE, trace=trace,
                        name=version.key, dc=self.dc_id)
        else:
            self._trace_pending.append(
                (trace, version.key, version.dependency_vector))

    def _gss_covers(self, dependency_vector: tuple[int, ...],
                    gss: tuple[int, ...]) -> bool:
        """Whether a replicated version is readable here: every *remote*
        dependency entry is stable (the local entry is governed by the local
        clock, which a fresh ROT snapshot always dominates)."""
        local = self.dc_id
        return all(dependency_vector[dc] <= gss[dc]
                   for dc in range(self.num_dcs) if dc != local)

    def _trace_gss_advance(self, tracer) -> None:
        gss = self.gss_state.gss
        tracer.emit(self.node_id, GSS_ADVANCE, name="gss", dc=self.dc_id,
                    data=(("gss", repr(gss)),))
        if not self._trace_pending:
            return
        still_pending = []
        for trace, key, dependency_vector in self._trace_pending:
            if self._gss_covers(dependency_vector, gss):
                tracer.emit(self.node_id, VISIBLE, trace=trace, name=key,
                            dc=self.dc_id)
            else:
                still_pending.append((trace, key, dependency_vector))
        self._trace_pending = still_pending

    def _observe_remote_timestamp(self, origin_dc: int, timestamp: int) -> None:
        if origin_dc == self.dc_id:
            return
        self.version_vector[origin_dc] = max(self.version_vector[origin_dc],
                                             timestamp)

    # -------------------------------------------------------------------- ROT
    def _handle_coordinator_request(self, sender: Addr,
                                    message: RotCoordinatorRequest) -> None:
        snapshot = self._choose_snapshot(message)
        if message.two_round:
            self._send(sender, RotSnapshotReply(rot_id=message.rot_id,
                                                snapshot=snapshot))
            return
        # 1 1/2-round mode: fan the reads out to the involved partitions, which
        # reply to the client directly (three communication steps in total).
        client = ClientAddr(message.client_id)
        groups = self.partitioner.group_by_partition(list(message.keys))
        for partition_index, keys in groups.items():
            if partition_index == self.partition_index:
                continue
            self._send(ServerAddr(self.dc_id, partition_index),
                       RotProxyRead(rot_id=message.rot_id,
                                    keys=tuple(keys), snapshot=snapshot,
                                    client_id=message.client_id))
        own_keys = groups.get(self.partition_index, [])
        if own_keys:
            self._serve_read(client, message.rot_id, tuple(own_keys), snapshot)

    def _choose_snapshot(self, message: RotCoordinatorRequest) -> tuple[int, ...]:
        snapshot = list(entrywise_max(self.gss, message.client_gss))
        local = self.dc_id
        snapshot[local] = max(self.clock.read(), message.client_local_ts)
        registry = self.rot_registry()
        if registry is not None:
            # Fault runs track in-flight snapshots so version GC never evicts
            # what this ROT may still need (min-active-snapshot retention).
            registry.attach_snapshot(self.dc_id, message.rot_id, tuple(snapshot))
        return tuple(snapshot)

    def _handle_read(self, message: "RotProxyRead | RotReadRequest") -> None:
        client = ClientAddr(message.client_id)
        wait = self.clock.catch_up(message.snapshot[self.dc_id])
        if wait > 0:
            # Physical clocks (Cure) block until the local clock reaches the
            # snapshot timestamp; this is the latency penalty the paper
            # attributes to clock skew.
            self.counters.blocked_reads += 1
            self.counters.total_block_time += wait
            self._set_timer(wait, "rot-block",
                            payload=(client, message.rot_id, message.keys,
                                     message.snapshot))
            return
        self._serve_read(client, message.rot_id, message.keys, message.snapshot)

    def _serve_read(self, client: Addr, rot_id: str, keys: tuple[str, ...],
                    snapshot: tuple[int, ...]) -> None:
        results = tuple(self._read_key(key, snapshot) for key in keys)
        self._send(client, RotValueReply(rot_id=rot_id, results=results,
                                         snapshot=snapshot, gss=self.gss))

    def _read_key(self, key: str, snapshot: tuple[int, ...]) -> ReadResult:
        version = self.store.latest(
            key, lambda v: v.is_visible()
            and v.dependency_vector is not None
            and vector_leq(v.dependency_vector, snapshot))
        if version is None:
            return ReadResult(key=key, timestamp=None, origin_dc=self.dc_id,
                              value_size=0)
        return ReadResult(key=key, timestamp=version.timestamp,
                          origin_dc=version.origin_dc,
                          value_size=version.size_bytes)


class ContrarianKernel(VectorServerKernel):
    """Contrarian: HLC (by default; the clock ablation may override)."""

    clock_mode = "hlc"
    protocol_name = "contrarian"

    @classmethod
    def resolved_clock_mode(cls, config) -> str:
        return config.clock_mode


class CureKernel(VectorServerKernel):
    """Cure: physical clocks, hence blocking ROTs."""

    clock_mode = "physical"
    protocol_name = "cure"


# --------------------------------------------------------------------------
# Client kernel
# --------------------------------------------------------------------------


class VectorClientKernel(ClientKernel):
    """The client state machine of the Contrarian/Cure design.

    Keeps the two pieces of causal context of Section 4 — the highest
    local-DC timestamp observed and the freshest GSS observed — plus the
    explicit nearest-dependency context recorded for the checker.
    """

    def __init__(self, *, client_id: str, dc_id: int, num_dcs: int,
                 partitioner, rng: random.Random, two_round: bool,
                 rot_registry=None) -> None:
        super().__init__(client_id=client_id, dc_id=dc_id,
                         partitioner=partitioner, rot_registry=rot_registry)
        self.rng = rng
        self.two_round = two_round
        self.num_dcs = num_dcs
        self.local_ts_seen = 0
        self.gss_seen: tuple[int, ...] = zero_vector(num_dcs)
        self.dep_context = ClientDependencyContext()
        self._pending_rot: Optional[PendingRot] = None
        self._pending_put_gss: Optional[tuple[int, ...]] = None

    @classmethod
    def resolved_two_round(cls, config) -> bool:
        """Whether this client runs 2-round ROTs under ``config``."""
        return config.rot_rounds == 2.0

    @classmethod
    def from_config(cls, config, client_id: str, dc_id: int, *,
                    partitioner, rng: random.Random,
                    rot_registry=None) -> "VectorClientKernel":
        return cls(client_id=client_id, dc_id=dc_id, num_dcs=config.num_dcs,
                   partitioner=partitioner, rng=rng,
                   two_round=cls.resolved_two_round(config),
                   rot_registry=rot_registry)

    # ------------------------------------------------------------------- PUT
    def _issue_put(self, operation) -> None:
        key = operation.keys[0]
        client_vector = list(self.gss_seen)
        client_vector[self.dc_id] = self.local_ts_seen
        request = VectorPutRequest(
            key=key, value_size=operation.value_size,
            client_vector=tuple(client_vector), client_id=self.client_id,
            sequence=self.sequence,
            dependencies=tuple(dep.as_pair()
                               for dep in self.dep_context.dependencies()))
        self._send(ServerAddr(self.dc_id, self.partitioner.partition_of(key)),
                   request)

    def _handle_put_reply(self, message: VectorPutReply) -> None:
        self._pending_put_gss = message.gss
        # Snapshot the causal context *before* the PUT subsumes it — the
        # checker records the PUT against the context it was issued under.
        dependencies = self.checker_dependencies()
        self._after_put(message.key, message.timestamp)
        self._complete("put", PutOutcome(key=message.key,
                                         timestamp=message.timestamp,
                                         origin_dc=self.dc_id,
                                         dependencies=dependencies))

    def _after_put(self, key: str, timestamp: int) -> None:
        self.local_ts_seen = max(self.local_ts_seen, timestamp)
        if self._pending_put_gss is not None:
            self.gss_seen = entrywise_max(self.gss_seen, self._pending_put_gss)
            self._pending_put_gss = None
        partition = self.partitioner.partition_of(key)
        self.dep_context.observe_write(key, timestamp, partition, self.dc_id)

    # ------------------------------------------------------------------- ROT
    def _issue_rot(self, operation) -> None:
        rot_id = self.next_rot_id()
        groups = self.partitioner.group_by_partition(list(operation.keys))
        involved = sorted(groups)
        coordinator_index = self.rng.choice(involved)
        self._pending_rot = PendingRot(rot_id=rot_id, keys=operation.keys,
                                       started_at=self.now,
                                       expected_replies=len(involved))
        registry = self.rot_registry()
        if registry is not None:
            registry.register(self.dc_id, rot_id)
        self._send(ServerAddr(self.dc_id, coordinator_index),
                   RotCoordinatorRequest(
                       rot_id=rot_id, keys=operation.keys,
                       client_local_ts=self.local_ts_seen,
                       client_gss=self.gss_seen,
                       client_id=self.client_id, two_round=self.two_round))

    def _handle_snapshot_reply(self, message: RotSnapshotReply) -> None:
        pending = self._expect_pending(message.rot_id)
        pending.snapshot = message.snapshot
        groups = self.partitioner.group_by_partition(list(pending.keys))
        for partition_index, keys in groups.items():
            self._send(ServerAddr(self.dc_id, partition_index),
                       RotReadRequest(rot_id=message.rot_id,
                                      keys=tuple(keys),
                                      snapshot=message.snapshot,
                                      client_id=self.client_id))

    def _handle_value_reply(self, message: RotValueReply) -> None:
        pending = self._expect_pending(message.rot_id)
        pending.record_reply(message.results)
        # The snapshot vector dominates the dependency vector of every version
        # returned by this ROT, so folding it into the client's causal context
        # guarantees that the client's subsequent PUTs causally cover what it
        # just read (including the remote dependencies of those versions).
        self.local_ts_seen = max(self.local_ts_seen, message.snapshot[self.dc_id])
        snapshot_remote = list(message.snapshot)
        snapshot_remote[self.dc_id] = 0
        self.gss_seen = entrywise_max(self.gss_seen, tuple(snapshot_remote))
        self.gss_seen = entrywise_max(self.gss_seen, message.gss)
        if not pending.complete:
            return
        self._pending_rot = None
        registry = self.rot_registry()
        if registry is not None:
            registry.deregister(self.dc_id, message.rot_id)
        for result in pending.results.values():
            if result.timestamp is not None:
                partition = self.partitioner.partition_of(result.key)
                self.dep_context.observe_read(result.key, result.timestamp,
                                              partition, result.origin_dc)
        self._complete("rot", RotOutcome(rot_id=message.rot_id,
                                         results=pending.results))

    def _expect_pending(self, rot_id: str) -> PendingRot:
        pending = self._pending_rot
        if pending is None or pending.rot_id != rot_id:
            raise ProtocolError(
                f"{self.client_id} received a reply for unknown ROT {rot_id}")
        return pending

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, message: object) -> None:
        if isinstance(message, VectorPutReply):
            self._handle_put_reply(message)
        elif isinstance(message, RotSnapshotReply):
            self._handle_snapshot_reply(message)
        elif isinstance(message, RotValueReply):
            self._handle_value_reply(message)
        else:
            raise ProtocolError(
                f"{self.client_id} cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------ misc
    def checker_dependencies(self) -> tuple[tuple[str, int, int], ...]:
        return tuple(dep.as_triple() for dep in self.dep_context.dependencies())


class ContrarianClientKernel(VectorClientKernel):
    """Contrarian client: 1½-round ROTs by default, 2 rounds if configured."""


class CureClientKernel(VectorClientKernel):
    """Cure client: always two rounds of client-server communication."""

    @classmethod
    def resolved_two_round(cls, config) -> bool:
        return True


__all__ = [
    "ContrarianClientKernel",
    "ContrarianKernel",
    "CureClientKernel",
    "CureKernel",
    "VectorClientKernel",
    "VectorServerKernel",
]
