"""The coordinator-based, vector-clock protocol family.

Contrarian and Cure share almost all of their machinery (Section 4 of the
paper explicitly presents Contrarian as an improvement of the
Orbe/GentleRain/Cure design): items carry per-DC dependency vectors, a
stabilization protocol computes the Global Stable Snapshot, and ROTs read a
coordinator-chosen snapshot vector.  The two systems differ in the clock used
to timestamp events (HLC vs physical) and in the number of communication
rounds of a ROT (1½ vs 2), so both are implemented here as configurations of
the same server/client pair.
"""

from repro.core.vector.client import VectorClient
from repro.core.vector.server import VectorServer

__all__ = ["VectorClient", "VectorServer"]
