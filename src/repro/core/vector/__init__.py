"""The coordinator-based, vector-clock protocol family.

Contrarian and Cure share almost all of their machinery (Section 4 of the
paper explicitly presents Contrarian as an improvement of the
Orbe/GentleRain/Cure design): items carry per-DC dependency vectors, a
stabilization protocol computes the Global Stable Snapshot, and ROTs read a
coordinator-chosen snapshot vector.  The two systems differ in the clock used
to timestamp events (HLC vs physical) and in the number of communication
rounds of a ROT (1½ vs 2), so both are implemented as configurations of the
same kernel/driver pair: the protocol state machines live in
:mod:`repro.core.vector.kernel` (sans-I/O), the simulated drivers in
``server``/``client``.  Exports resolve lazily so kernel imports stay
simulator-free.
"""

from repro._lazy import make_lazy

_EXPORTS = {
    "ContrarianKernel": "repro.core.vector.kernel",
    "CureKernel": "repro.core.vector.kernel",
    "VectorClient": "repro.core.vector.client",
    "VectorClientKernel": "repro.core.vector.kernel",
    "VectorServer": "repro.core.vector.server",
    "VectorServerKernel": "repro.core.vector.kernel",
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
