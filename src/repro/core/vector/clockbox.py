"""Clock abstraction for the vector protocol family.

The clock is the *only* mechanical difference between Contrarian and Cure
(besides the number of ROT rounds), so it is isolated behind one small
interface:

* ``read()`` — current clock value, used by coordinators to propose snapshot
  timestamps and by the stabilization protocol's heartbeat.
* ``timestamp_after(floor)`` — produce an event timestamp strictly greater
  than ``floor`` (the maximum entry of the client's dependency vector); the
  returned ``wait`` is how long the server must block first, which is zero
  for logical and hybrid clocks and up to the clock skew for physical clocks.
* ``catch_up(target)`` — how long the server must wait before it can serve a
  read at snapshot timestamp ``target``; again zero unless the clock is
  physical (this is precisely the blocking the paper attributes to Cure).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.clocks.hlc import HybridLogicalClock
from repro.clocks.lamport import LamportClock
from repro.clocks.physical import PhysicalClock
from repro.clocks.units import microseconds
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clocks.timesource import TimeSource


@dataclass(frozen=True)
class TimestampDecision:
    """Result of asking the clock for an event timestamp."""

    timestamp: int
    wait_seconds: float


class ClockBox:
    """A server clock in one of three modes: ``hlc``, ``logical``, ``physical``.

    The clock reads time through a pluggable *time source* (anything with a
    ``now`` attribute in seconds): the simulator on the simulated backend, a
    :class:`~repro.clocks.timesource.WallClock` on the real-time backend.
    """

    def __init__(self, mode: str, time_source: "TimeSource",
                 offset_us: float) -> None:
        if mode not in ("hlc", "logical", "physical"):
            raise ConfigurationError(f"unknown clock mode {mode!r}")
        self.mode = mode
        self._physical = PhysicalClock(time_source, offset_us=offset_us)
        self._hlc = HybridLogicalClock(self._physical)
        self._lamport = LamportClock()

    # ------------------------------------------------------------------ reads
    def read(self) -> int:
        """Current clock value without recording an event."""
        if self.mode == "hlc":
            return self._hlc.now()
        if self.mode == "logical":
            return self._lamport.value
        return self._physical.now_us()

    # ----------------------------------------------------------------- events
    def timestamp_after(self, floor: int) -> TimestampDecision:
        """Produce an event timestamp strictly greater than ``floor``."""
        if self.mode == "hlc":
            self._hlc.advance_to(floor)
            return TimestampDecision(self._hlc.tick(), 0.0)
        if self.mode == "logical":
            self._lamport.advance_to(floor)
            return TimestampDecision(self._lamport.tick(), 0.0)
        wait = self._physical.time_until_us(floor + 1)
        timestamp = max(self._physical.now_us(), floor + 1)
        return TimestampDecision(timestamp, wait)

    def observe(self, remote_timestamp: int) -> None:
        """Merge a timestamp observed in a message (keeps clocks close)."""
        if self.mode == "hlc":
            self._hlc.update(remote_timestamp)
        elif self.mode == "logical":
            self._lamport.update(remote_timestamp)
        # Physical clocks cannot be adjusted by messages.

    # ------------------------------------------------------------------ reads
    def catch_up(self, target: int) -> float:
        """Seconds to wait before the clock reaches ``target`` (0 if movable)."""
        if self.mode == "hlc":
            self._hlc.advance_to(target)
            return 0.0
        if self.mode == "logical":
            self._lamport.advance_to(target)
            return 0.0
        return self._physical.time_until_us(target)

    @staticmethod
    def snapshot_wait_to_seconds(wait: float) -> float:
        """Clamp tiny negative rounding artefacts of physical-clock waits."""
        return max(0.0, wait)

    @staticmethod
    def microseconds_to_seconds(value: float) -> float:
        """Expose the engine's unit conversion for callers of this module."""
        return microseconds(value)


__all__ = ["ClockBox", "TimestampDecision"]
