"""Simulated driver of the vector protocol family (Contrarian / Cure).

The protocol logic of Section 4 (PUT timestamping, snapshot-vector choice,
GSS stabilization, heartbeats, replication) lives in the sans-I/O
:class:`~repro.core.vector.kernel.VectorServerKernel`; this driver binds one
kernel to the discrete-event simulator and keeps the cost-model accounting —
the CPU price of every message, which is what produces the queueing dynamics
the paper measures.  State the tests and the fault controller inspect
(``clock``, ``gss``, ``version_vector``) is surfaced from the kernel as
properties.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.common.messages import (
    RemoteHeartbeat,
    ReplicateUpdate,
    RotCoordinatorRequest,
    RotProxyRead,
    RotReadRequest,
    StabilizationMessage,
    VectorPutRequest,
)
from repro.core.common.server import PartitionServer
from repro.core.vector.kernel import VectorServerKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.core.vector.clockbox import ClockBox


class VectorServer(PartitionServer):
    """A partition server running the Contrarian/Cure design."""

    #: The kernel class this driver instantiates; protocol subclasses
    #: (Contrarian, Cure) override it.
    kernel_class: type[VectorServerKernel] = VectorServerKernel

    def __init__(self, topology: "ClusterTopology", dc_id: int,
                 partition_index: int) -> None:
        super().__init__(topology, dc_id, partition_index)
        skew_rng = topology.sim.derived_rng(
            f"clock-skew:{dc_id}:{partition_index}")
        offset = topology.config.skew_model.draw_offset(skew_rng)
        self.attach_kernel(self.kernel_class.from_config(
            topology.config, dc_id, partition_index,
            partitioner=topology.partitioner,
            time_source=topology.sim, skew_offset_us=offset,
            rot_registry=lambda: topology.rot_registry))

    # --------------------------------------------------------- kernel state
    @property
    def clock(self) -> "ClockBox":
        """The kernel's clock (HLC / logical / physical)."""
        return self.kernel.clock

    @property
    def protocol_name(self) -> str:
        return self.kernel.protocol_name

    @property
    def gss(self) -> tuple[int, ...]:
        """The partition's current view of the Global Stable Snapshot."""
        return self.kernel.gss

    @property
    def gss_state(self):
        return self.kernel.gss_state

    @property
    def version_vector(self) -> list[int]:
        return self.kernel.version_vector

    # ------------------------------------------------------------------ costs
    def message_cost(self, message: object) -> float:
        cost = self.cost_model
        if isinstance(message, VectorPutRequest):
            return (cost.put_cost(message.value_size)
                    + cost.dependency_cost(len(message.client_vector)))
        if isinstance(message, RotCoordinatorRequest):
            partitions = len(self.partitioner.group_by_partition(list(message.keys)))
            own_keys = self._keys_stored_here(message.keys)
            read = cost.read_cost(len(own_keys), self._stored_value_size(own_keys)) \
                if not message.two_round and own_keys else 0.0
            return cost.coordinator_cost(partitions) + read
        if isinstance(message, (RotProxyRead, RotReadRequest)):
            keys = list(message.keys)
            return cost.read_cost(len(keys), self._stored_value_size(keys))
        if isinstance(message, StabilizationMessage):
            return cost.stabilization_cost()
        if isinstance(message, RemoteHeartbeat):
            return cost.stabilization_cost()
        if isinstance(message, ReplicateUpdate):
            return cost.replication_cost(message.value_size, len(message.dependencies))
        return 0.0

    def _keys_stored_here(self, keys: tuple[str, ...]) -> list[str]:
        return [key for key in keys
                if self.partitioner.partition_of(key) == self.partition_index]

    def _stored_value_size(self, keys: list[str]) -> int:
        for key in keys:
            version = self.store.latest_visible(key)
            if version is not None:
                return version.size_bytes
        return 0


__all__ = ["VectorServer"]
