"""Partition server of the vector protocol family (Contrarian / Cure).

Responsibilities (Section 4 of the paper):

* **PUT** — assign the new version a timestamp strictly greater than every
  entry of the client's dependency vector, build the version's dependency
  vector from the client vector and the local GSS, install it, reply, and
  replicate it asynchronously to the other DCs.
* **ROT coordination** — compute a snapshot vector ``SV`` whose local entry
  is the maximum of the coordinator clock and the client's highest-seen local
  timestamp and whose remote entries come from the GSS; then either return
  ``SV`` to the client (2-round mode) or forward the reads to the involved
  partitions which answer the client directly (1½-round mode).
* **ROT reads** — serve the freshest version within ``SV``; logical/hybrid
  clocks are moved forward to the snapshot (nonblocking), physical clocks
  must wait (Cure's blocking behaviour).
* **Stabilization** — periodically exchange version vectors within the DC to
  compute the GSS, and send heartbeats to remote replicas so the GSS keeps
  advancing when no PUTs flow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.causal.stabilization import GlobalStableSnapshot
from repro.causal.vectors import entrywise_max, vector_leq, zero_vector
from repro.core.common.messages import (
    ReadResult,
    RemoteHeartbeat,
    ReplicateUpdate,
    RotCoordinatorRequest,
    RotProxyRead,
    RotReadRequest,
    RotSnapshotReply,
    RotValueReply,
    StabilizationMessage,
    VectorPutReply,
    VectorPutRequest,
)
from repro.core.common.server import PartitionServer
from repro.core.vector.clockbox import ClockBox
from repro.errors import ProtocolError
from repro.sim.engine import PeriodicTask, milliseconds
from repro.storage.version import Version

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.sim.node import Node


class VectorServer(PartitionServer):
    """A partition server running the Contrarian/Cure design."""

    def __init__(self, topology: "ClusterTopology", dc_id: int, partition_index: int,
                 *, clock_mode: str, protocol_name: str) -> None:
        super().__init__(topology, dc_id, partition_index)
        skew_rng = topology.sim.derived_rng(
            f"clock-skew:{dc_id}:{partition_index}")
        offset = topology.config.skew_model.draw_offset(skew_rng)
        self.clock = ClockBox(clock_mode, topology.sim, offset_us=offset)
        self.protocol_name = protocol_name
        self.num_dcs = topology.config.num_dcs
        self.version_vector: list[int] = list(zero_vector(self.num_dcs))
        self.gss_state = GlobalStableSnapshot(self.num_dcs,
                                              topology.config.num_partitions,
                                              partition_index)
        self._stabilization_task: Optional[PeriodicTask] = None
        self._heartbeat_task: Optional[PeriodicTask] = None

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Start the stabilization broadcast and remote heartbeats."""
        interval = milliseconds(self.config.stabilization_interval_ms)
        self._stabilization_task = PeriodicTask(
            self.sim, interval, self._broadcast_version_vector,
            start_delay=interval * (0.5 + 0.5 * self.partition_index
                                    / max(1, self.config.num_partitions)),
            label="stabilization")
        if self.num_dcs > 1:
            heartbeat = milliseconds(self.config.heartbeat_interval_ms)
            self._heartbeat_task = PeriodicTask(
                self.sim, heartbeat, self._send_remote_heartbeats,
                label="remote-heartbeat")

    def stop_background_tasks(self) -> None:
        """Cancel periodic tasks (lets the event queue drain at run end)."""
        if self._stabilization_task is not None:
            self._stabilization_task.cancel()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()

    # ------------------------------------------------------------------- GSS
    @property
    def gss(self) -> tuple[int, ...]:
        """The partition's current view of the Global Stable Snapshot."""
        return self.gss_state.gss

    def _broadcast_version_vector(self) -> None:
        """Advertise the local version vector to the other local partitions."""
        local = self.dc_id
        self.version_vector[local] = max(self.version_vector[local],
                                         self.clock.read())
        vv = tuple(self.version_vector)
        self.gss_state.update_local_vv(vv)
        message = StabilizationMessage(partition_index=self.partition_index,
                                       version_vector=vv)
        for peer in self.peers_in_dc():
            self.counters.stabilization_messages += 1
            self.send(peer, message)

    def _send_remote_heartbeats(self) -> None:
        """Advertise the local clock to remote replicas of this partition."""
        message = RemoteHeartbeat(origin_dc=self.dc_id,
                                  timestamp=self.clock.read())
        for replica in self.replicas():
            self.counters.stabilization_messages += 1
            self.send(replica, message)

    # ------------------------------------------------------------------ costs
    def message_cost(self, message: object) -> float:
        cost = self.cost_model
        if isinstance(message, VectorPutRequest):
            return (cost.put_cost(message.value_size)
                    + cost.dependency_cost(len(message.client_vector)))
        if isinstance(message, RotCoordinatorRequest):
            partitions = len(self.partitioner.group_by_partition(list(message.keys)))
            own_keys = self._keys_stored_here(message.keys)
            read = cost.read_cost(len(own_keys), self._stored_value_size(own_keys)) \
                if not message.two_round and own_keys else 0.0
            return cost.coordinator_cost(partitions) + read
        if isinstance(message, (RotProxyRead, RotReadRequest)):
            keys = list(message.keys)
            return cost.read_cost(len(keys), self._stored_value_size(keys))
        if isinstance(message, StabilizationMessage):
            return cost.stabilization_cost()
        if isinstance(message, RemoteHeartbeat):
            return cost.stabilization_cost()
        if isinstance(message, ReplicateUpdate):
            return cost.replication_cost(message.value_size, len(message.dependencies))
        return 0.0

    def _keys_stored_here(self, keys: tuple[str, ...]) -> list[str]:
        return [key for key in keys
                if self.partitioner.partition_of(key) == self.partition_index]

    def _stored_value_size(self, keys: list[str]) -> int:
        for key in keys:
            version = self.store.latest_visible(key)
            if version is not None:
                return version.size_bytes
        return 0

    # --------------------------------------------------------------- handlers
    def handle_message(self, sender: "Node", message: object) -> None:
        if isinstance(message, VectorPutRequest):
            self._handle_put(sender, message)
        elif isinstance(message, RotCoordinatorRequest):
            self._handle_coordinator_request(sender, message)
        elif isinstance(message, RotProxyRead):
            self._handle_read(message, two_round=False)
        elif isinstance(message, RotReadRequest):
            self._handle_read(message, two_round=True)
        elif isinstance(message, StabilizationMessage):
            self.gss_state.observe_remote_vv(message.partition_index,
                                             message.version_vector)
        elif isinstance(message, RemoteHeartbeat):
            self._observe_remote_timestamp(message.origin_dc, message.timestamp)
        elif isinstance(message, ReplicateUpdate):
            self._handle_replicated_update(message)
        else:
            raise ProtocolError(f"{self.node_id} cannot handle {type(message).__name__}")

    # -------------------------------------------------------------------- PUT
    def _handle_put(self, sender: "Node", message: VectorPutRequest) -> None:
        floor = max(message.client_vector) if message.client_vector else 0
        decision = self.clock.timestamp_after(floor)
        if decision.wait_seconds > 0:
            # Physical clocks (Cure) may have to wait before they can assign a
            # timestamp larger than the client's dependencies.
            self.counters.total_block_time += decision.wait_seconds
            self.sim.schedule(decision.wait_seconds,
                              lambda: self._finish_put(sender, message),
                              label="put-wait")
            return
        self._finish_put(sender, message, timestamp=decision.timestamp)

    def _finish_put(self, sender: "Node", message: VectorPutRequest,
                    timestamp: Optional[int] = None) -> None:
        if timestamp is None:
            floor = max(message.client_vector) if message.client_vector else 0
            timestamp = self.clock.timestamp_after(floor).timestamp
        local = self.dc_id
        dependency_vector = list(entrywise_max(message.client_vector,
                                               self._gss_with_local_zero()))
        dependency_vector[local] = timestamp
        version = Version(key=message.key, value=None, timestamp=timestamp,
                          origin_dc=local, size_bytes=message.value_size,
                          dependency_vector=tuple(dependency_vector),
                          dependencies=message.dependencies,
                          created_at=self.sim.now, writer=message.client_id,
                          sequence=message.sequence)
        self.store.install(version)
        self.version_vector[local] = max(self.version_vector[local], timestamp)
        self.send(sender, VectorPutReply(key=message.key, timestamp=timestamp,
                                         gss=self.gss))
        self._replicate(version)

    def _gss_with_local_zero(self) -> tuple[int, ...]:
        gss = list(self.gss)
        gss[self.dc_id] = 0
        return tuple(gss)

    def _replicate(self, version: Version) -> None:
        for replica in self.replicas():
            self.counters.replication_messages += 1
            self.counters.dependency_entries_sent += len(version.dependencies)
            self.send(replica, ReplicateUpdate(
                key=version.key, timestamp=version.timestamp,
                origin_dc=version.origin_dc, value_size=version.size_bytes,
                dependency_vector=version.dependency_vector,
                dependencies=version.dependencies,
                writer=version.writer, sequence=version.sequence))

    def _handle_replicated_update(self, message: ReplicateUpdate) -> None:
        self.clock.observe(message.timestamp)
        self._observe_remote_timestamp(message.origin_dc, message.timestamp)
        version = Version(key=message.key, value=None, timestamp=message.timestamp,
                          origin_dc=message.origin_dc, size_bytes=message.value_size,
                          dependency_vector=message.dependency_vector,
                          dependencies=message.dependencies,
                          created_at=self.sim.now, writer=message.writer,
                          sequence=message.sequence)
        self.store.install(version)

    def _observe_remote_timestamp(self, origin_dc: int, timestamp: int) -> None:
        if origin_dc == self.dc_id:
            return
        self.version_vector[origin_dc] = max(self.version_vector[origin_dc],
                                             timestamp)

    # -------------------------------------------------------------------- ROT
    def _handle_coordinator_request(self, sender: "Node",
                                    message: RotCoordinatorRequest) -> None:
        snapshot = self._choose_snapshot(message)
        if message.two_round:
            self.send(sender, RotSnapshotReply(rot_id=message.rot_id,
                                               snapshot=snapshot))
            return
        # 1 1/2-round mode: fan the reads out to the involved partitions, which
        # reply to the client directly (three communication steps in total).
        client = self.topology.client_by_id(message.client_id)
        groups = self.partitioner.group_by_partition(list(message.keys))
        for partition_index, keys in groups.items():
            if partition_index == self.partition_index:
                continue
            target = self.topology.server(self.dc_id, partition_index)
            self.send(target, RotProxyRead(rot_id=message.rot_id,
                                           keys=tuple(keys), snapshot=snapshot,
                                           client_id=message.client_id))
        own_keys = groups.get(self.partition_index, [])
        if own_keys:
            self._serve_read(client, message.rot_id, tuple(own_keys), snapshot)

    def _choose_snapshot(self, message: RotCoordinatorRequest) -> tuple[int, ...]:
        snapshot = list(entrywise_max(self.gss, message.client_gss))
        local = self.dc_id
        snapshot[local] = max(self.clock.read(), message.client_local_ts)
        registry = self.topology.rot_registry
        if registry is not None:
            # Fault runs track in-flight snapshots so version GC never evicts
            # what this ROT may still need (min-active-snapshot retention).
            registry.attach_snapshot(self.dc_id, message.rot_id, tuple(snapshot))
        return tuple(snapshot)

    def _handle_read(self, message: RotProxyRead | RotReadRequest, *,
                     two_round: bool) -> None:
        del two_round  # identical handling; kept for call-site clarity
        client = self.topology.client_by_id(message.client_id)
        wait = self.clock.catch_up(message.snapshot[self.dc_id])
        if wait > 0:
            # Physical clocks (Cure) block until the local clock reaches the
            # snapshot timestamp; this is the latency penalty the paper
            # attributes to clock skew.
            self.counters.blocked_reads += 1
            self.counters.total_block_time += wait
            self.sim.schedule(wait,
                              lambda: self._serve_read(client, message.rot_id,
                                                       message.keys, message.snapshot),
                              label="rot-block")
            return
        self._serve_read(client, message.rot_id, message.keys, message.snapshot)

    def _serve_read(self, client: "Node", rot_id: str, keys: tuple[str, ...],
                    snapshot: tuple[int, ...]) -> None:
        results = tuple(self._read_key(key, snapshot) for key in keys)
        self.send(client, RotValueReply(rot_id=rot_id, results=results,
                                        snapshot=snapshot, gss=self.gss))

    def _read_key(self, key: str, snapshot: tuple[int, ...]) -> ReadResult:
        version = self.store.latest(
            key, lambda v: v.is_visible()
            and v.dependency_vector is not None
            and vector_leq(v.dependency_vector, snapshot))
        if version is None:
            return ReadResult(key=key, timestamp=None, origin_dc=self.dc_id,
                              value_size=0)
        return ReadResult(key=key, timestamp=version.timestamp,
                          origin_dc=version.origin_dc,
                          value_size=version.size_bytes)


__all__ = ["VectorServer"]
