"""Client of the vector protocol family (Contrarian / Cure).

The client keeps two pieces of causal context (Section 4):

* the highest *local-DC* timestamp it has observed (from PUT replies and ROT
  snapshots), which guarantees read-your-writes and monotonic snapshots; and
* the freshest *GSS* it has observed, which bounds the remote entries of the
  snapshot vectors proposed for its ROTs.

For a ROT the client picks a coordinator uniformly at random among the
involved partitions, sends it the request with the context piggybacked, and
waits for one value reply per involved partition (1½-round mode) or for the
snapshot followed by the per-partition replies (2-round mode).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.causal.dependencies import ClientDependencyContext
from repro.causal.vectors import entrywise_max, zero_vector
from repro.core.common.client import BaseClient
from repro.core.common.messages import (
    PendingRot,
    ReadResult,
    RotCoordinatorRequest,
    RotReadRequest,
    RotSnapshotReply,
    RotValueReply,
    VectorPutReply,
    VectorPutRequest,
)
from repro.errors import ProtocolError
from repro.workload.generator import Operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.sim.node import Node


class VectorClient(BaseClient):
    """A closed-loop client speaking the Contrarian/Cure protocol."""

    def __init__(self, topology: "ClusterTopology", dc_id: int, client_index: int,
                 generator, metrics, checker=None, *, two_round: bool) -> None:
        super().__init__(topology, dc_id, client_index, generator, metrics, checker)
        self.two_round = two_round
        self.num_dcs = topology.config.num_dcs
        self.local_ts_seen = 0
        self.gss_seen: tuple[int, ...] = zero_vector(self.num_dcs)
        self.dep_context = ClientDependencyContext()
        self._pending_rot: Optional[PendingRot] = None
        self._pending_put_gss: Optional[tuple[int, ...]] = None

    # ------------------------------------------------------------------- PUT
    def issue_put(self, operation: Operation) -> None:
        key = operation.keys[0]
        server = self.topology.server_for_key(self.dc_id, key)
        client_vector = list(self.gss_seen)
        client_vector[self.dc_id] = self.local_ts_seen
        request = VectorPutRequest(
            key=key, value_size=operation.value_size,
            client_vector=tuple(client_vector), client_id=self.node_id,
            sequence=self.sequence,
            dependencies=tuple(dep.as_pair() for dep in self.dep_context.dependencies()))
        self.send(server, request)

    def _handle_put_reply(self, message: VectorPutReply) -> None:
        self._pending_put_gss = message.gss
        self.complete_put(message.key, message.timestamp, self.dc_id)

    def after_put(self, key: str, timestamp: int, origin_dc: int) -> None:
        self.local_ts_seen = max(self.local_ts_seen, timestamp)
        if self._pending_put_gss is not None:
            self.gss_seen = entrywise_max(self.gss_seen, self._pending_put_gss)
            self._pending_put_gss = None
        partition = self.partitioner.partition_of(key)
        self.dep_context.observe_write(key, timestamp, partition, origin_dc)

    # ------------------------------------------------------------------- ROT
    def issue_rot(self, operation: Operation) -> None:
        rot_id = self.next_rot_id()
        groups = self.partitioner.group_by_partition(list(operation.keys))
        involved = sorted(groups)
        coordinator_index = self.rng.choice(involved)
        coordinator = self.topology.server(self.dc_id, coordinator_index)
        self._pending_rot = PendingRot(rot_id=rot_id, keys=operation.keys,
                                       started_at=self.sim.now,
                                       expected_replies=len(involved))
        registry = self.topology.rot_registry
        if registry is not None:
            registry.register(self.dc_id, rot_id)
        self.send(coordinator, RotCoordinatorRequest(
            rot_id=rot_id, keys=operation.keys,
            client_local_ts=self.local_ts_seen, client_gss=self.gss_seen,
            client_id=self.node_id, two_round=self.two_round))

    def _handle_snapshot_reply(self, message: RotSnapshotReply) -> None:
        pending = self._expect_pending(message.rot_id)
        pending.snapshot = message.snapshot
        groups = self.partitioner.group_by_partition(list(pending.keys))
        for partition_index, keys in groups.items():
            server = self.topology.server(self.dc_id, partition_index)
            self.send(server, RotReadRequest(rot_id=message.rot_id,
                                             keys=tuple(keys),
                                             snapshot=message.snapshot,
                                             client_id=self.node_id))

    def _handle_value_reply(self, message: RotValueReply) -> None:
        pending = self._expect_pending(message.rot_id)
        pending.record_reply(message.results)
        # The snapshot vector dominates the dependency vector of every version
        # returned by this ROT, so folding it into the client's causal context
        # guarantees that the client's subsequent PUTs causally cover what it
        # just read (including the remote dependencies of those versions).
        self.local_ts_seen = max(self.local_ts_seen, message.snapshot[self.dc_id])
        snapshot_remote = list(message.snapshot)
        snapshot_remote[self.dc_id] = 0
        self.gss_seen = entrywise_max(self.gss_seen, tuple(snapshot_remote))
        self.gss_seen = entrywise_max(self.gss_seen, message.gss)
        if not pending.complete:
            return
        self._pending_rot = None
        registry = self.topology.rot_registry
        if registry is not None:
            registry.deregister(self.dc_id, message.rot_id)
        for result in pending.results.values():
            if result.timestamp is not None:
                partition = self.partitioner.partition_of(result.key)
                self.dep_context.observe_read(result.key, result.timestamp,
                                              partition, result.origin_dc)
        self.complete_rot(message.rot_id, pending.results)

    def _expect_pending(self, rot_id: str) -> PendingRot:
        pending = self._pending_rot
        if pending is None or pending.rot_id != rot_id:
            raise ProtocolError(f"{self.node_id} received a reply for unknown ROT {rot_id}")
        return pending

    # -------------------------------------------------------------- dispatch
    def handle_message(self, sender: "Node", message: object) -> None:
        del sender
        if isinstance(message, VectorPutReply):
            self._handle_put_reply(message)
        elif isinstance(message, RotSnapshotReply):
            self._handle_snapshot_reply(message)
        elif isinstance(message, RotValueReply):
            self._handle_value_reply(message)
        else:
            raise ProtocolError(f"{self.node_id} cannot handle {type(message).__name__}")

    # ------------------------------------------------------------------ misc
    def checker_dependencies(self) -> tuple[tuple[str, int, int], ...]:
        return tuple(dep.as_triple() for dep in self.dep_context.dependencies())

    def after_rot(self, rot_id: str, results: dict[str, ReadResult]) -> None:
        del rot_id, results  # context already updated in _handle_value_reply


__all__ = ["VectorClient"]
