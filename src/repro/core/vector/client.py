"""Simulated driver of the vector-family client (Contrarian / Cure).

The causal-context bookkeeping and the ROT exchange live in the sans-I/O
:class:`~repro.core.vector.kernel.VectorClientKernel`; this driver plugs one
kernel into the closed-loop machinery of
:class:`~repro.core.common.client.BaseClient`.  State the tests inspect is
surfaced from the kernel as properties.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.common.client import BaseClient
from repro.core.vector.kernel import VectorClientKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology


class VectorClient(BaseClient):
    """A closed-loop client speaking the Contrarian/Cure protocol."""

    #: The kernel class this driver instantiates; protocol subclasses
    #: (Contrarian, Cure) override it.
    kernel_class: type[VectorClientKernel] = VectorClientKernel

    def __init__(self, topology: "ClusterTopology", dc_id: int, client_index: int,
                 generator, metrics, checker=None) -> None:
        super().__init__(topology, dc_id, client_index, generator, metrics, checker)
        self.attach_kernel(self.kernel_class.from_config(
            topology.config, self.node_id, dc_id,
            partitioner=topology.partitioner, rng=self.rng,
            rot_registry=lambda: topology.rot_registry))

    # --------------------------------------------------------- kernel state
    @property
    def two_round(self) -> bool:
        return self.kernel.two_round

    @property
    def local_ts_seen(self) -> int:
        return self.kernel.local_ts_seen

    @property
    def gss_seen(self) -> tuple[int, ...]:
        return self.kernel.gss_seen

    @property
    def dep_context(self):
        return self.kernel.dep_context


__all__ = ["VectorClient"]
