"""Protocol implementations: sans-I/O kernels plus backend drivers.

Every protocol is split into two layers (the kernel/driver split):

* a **kernel** — a pure state machine in ``core/<family>/kernel.py`` with the
  API ``on_message(msg, now) / on_timer(tag, payload, now) ->
  list[Effect]``, where effects are ``Send``, ``SetTimer`` and ``Complete``
  (see :mod:`repro.core.common.kernel`).  Kernels import neither the
  simulator nor any event loop, so the same protocol logic serves the
  discrete-event backend, the real-time asyncio backend
  (:mod:`repro.runtime`) and isolated unit tests.
* a **driver** — the backend-specific shell that feeds the kernel and
  executes its effects: the simulated drivers live next to the kernels
  (``core/<family>/server.py`` / ``client.py``), the real-time ones in
  :mod:`repro.runtime`.

The families:

* :mod:`repro.core.contrarian` — the paper's contribution: nonblocking,
  one-version ROTs in 1½ (or 2) rounds using HLCs and the GSS stabilization
  protocol, with cheap PUTs.
* :mod:`repro.core.cure` — the Cure baseline: the same coordinator-based
  design but with physical clocks and two rounds, which makes ROTs blocking
  under clock skew.
* :mod:`repro.core.cclo` — the latency-optimal baseline (the COPS-SNOW
  design): one-round, one-version, nonblocking ROTs paid for by the readers
  check performed on every PUT.

Exports resolve lazily (PEP 562) so that importing a kernel module never
drags in the registry's driver classes — and therefore never the simulator.
"""

from repro._lazy import make_lazy

_EXPORTS = {
    "PROTOCOLS": "repro.core.registry",
    "ProtocolSpec": "repro.core.registry",
    "protocol_properties": "repro.core.registry",
    "register_protocol": "repro.core.registry",
    "resolve_spec": "repro.core.registry",
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
