"""Protocol implementations.

* :mod:`repro.core.contrarian` — the paper's contribution: nonblocking,
  one-version ROTs in 1½ (or 2) rounds using HLCs and the GSS stabilization
  protocol, with cheap PUTs.
* :mod:`repro.core.cure` — the Cure baseline: the same coordinator-based
  design but with physical clocks and two rounds, which makes ROTs blocking
  under clock skew.
* :mod:`repro.core.cclo` — the latency-optimal baseline (the COPS-SNOW
  design, called CC-LO in the paper): one-round, one-version, nonblocking
  ROTs paid for by the readers check performed on every PUT.
"""

from repro.core.registry import PROTOCOLS, protocol_properties

__all__ = ["PROTOCOLS", "protocol_properties"]
