"""Protocol registry and static characterisation (Table 2).

The registry maps protocol names to their server/client classes (used by the
harness builder) and records the static properties the paper tabulates in
Table 2: whether ROTs are nonblocking, how many rounds and versions they need,
and what a PUT costs in terms of communication and metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cclo import CcloClient, CcloServer
from repro.core.contrarian import ContrarianClient, ContrarianServer
from repro.core.cure import CureClient, CureServer
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProtocolProperties:
    """Static, per-design properties reported in Table 2 of the paper."""

    name: str
    nonblocking: bool
    rot_rounds: str
    rot_versions: int
    write_cost_client_server: str
    write_cost_server_server: str
    metadata_client_server: str
    metadata_server_server: str
    clock: str
    latency_optimal: bool


#: Registered, runnable protocol implementations.
PROTOCOLS: dict[str, tuple[type, type]] = {
    "contrarian": (ContrarianServer, ContrarianClient),
    "cure": (CureServer, CureClient),
    "cc-lo": (CcloServer, CcloClient),
}

#: Table 2 rows for the three implemented systems (N partitions, M DCs,
#: K clients per DC, following the paper's notation).
_IMPLEMENTED_PROPERTIES: dict[str, ProtocolProperties] = {
    "contrarian": ProtocolProperties(
        name="Contrarian", nonblocking=True, rot_rounds="1 1/2 (or 2)",
        rot_versions=1, write_cost_client_server="1",
        write_cost_server_server="-", metadata_client_server="M",
        metadata_server_server="-", clock="Hybrid", latency_optimal=False),
    "cure": ProtocolProperties(
        name="Cure", nonblocking=False, rot_rounds="2", rot_versions=1,
        write_cost_client_server="1", write_cost_server_server="-",
        metadata_client_server="M", metadata_server_server="-",
        clock="Physical", latency_optimal=False),
    "cc-lo": ProtocolProperties(
        name="COPS-SNOW (CC-LO)", nonblocking=True, rot_rounds="1",
        rot_versions=1, write_cost_client_server="1",
        write_cost_server_server="O(N)", metadata_client_server="|deps|",
        metadata_server_server="O(K)", clock="Logical", latency_optimal=True),
}

#: Table 2 rows for systems the paper surveys but does not evaluate; these are
#: reported verbatim for completeness of the generated table.
_SURVEYED_PROPERTIES: tuple[ProtocolProperties, ...] = (
    ProtocolProperties("COPS", True, "<= 2", 2, "1", "-", "|deps|", "-",
                       "Logical", False),
    ProtocolProperties("Eiger", True, "<= 2", 2, "1", "-", "|deps|", "-",
                       "Logical", False),
    ProtocolProperties("ChainReaction", False, ">= 2", 1, "1", ">= 1",
                       "|deps|", "M", "Logical", False),
    ProtocolProperties("Orbe", False, "2", 1, "1", "-", "NxM", "-",
                       "Logical", False),
    ProtocolProperties("GentleRain", False, "2", 1, "1", "-", "1", "-",
                       "Physical", False),
    ProtocolProperties("Occult", True, ">= 1", 1, "1", "-", "O(P)", "-",
                       "Hybrid", False),
    ProtocolProperties("POCC", False, "2", 1, "1", "-", "M", "-",
                       "Physical", False),
)


def protocol_properties(name: str) -> ProtocolProperties:
    """Table-2 properties of an implemented protocol."""
    try:
        return _IMPLEMENTED_PROPERTIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown protocol {name!r}; known: {sorted(_IMPLEMENTED_PROPERTIES)}") from exc


def implemented_protocols() -> tuple[str, ...]:
    """Names of protocols that can actually be simulated."""
    return tuple(PROTOCOLS)


def surveyed_properties() -> tuple[ProtocolProperties, ...]:
    """Table-2 rows of systems the paper surveys but does not evaluate."""
    return _SURVEYED_PROPERTIES


def resolve(name: str) -> tuple[type, type]:
    """Server and client classes of a registered protocol."""
    try:
        return PROTOCOLS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOLS)}") from exc


__all__ = [
    "PROTOCOLS",
    "ProtocolProperties",
    "implemented_protocols",
    "protocol_properties",
    "resolve",
    "surveyed_properties",
]
