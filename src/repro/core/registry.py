"""Protocol registry and static characterisation (Table 2).

The registry maps protocol names to a :class:`ProtocolSpec` — the simulated
driver classes (server/client), the sans-I/O kernel classes both backends
share, and the static properties the paper tabulates in Table 2.  It is
*extensible*: :func:`register_protocol` adds (or replaces) an entry, so
external designs can plug into the harness, the builder and the real-time
backend without editing this module; a bad lookup raises
:class:`~repro.errors.ConfigurationError` listing every known name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cclo import CcloClient, CcloServer
from repro.core.cclo.kernel import CcloClientKernel, CcloKernel
from repro.core.contrarian import ContrarianClient, ContrarianServer
from repro.core.cure import CureClient, CureServer
from repro.core.vector.kernel import (
    ContrarianClientKernel,
    ContrarianKernel,
    CureClientKernel,
    CureKernel,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProtocolProperties:
    """Static, per-design properties reported in Table 2 of the paper."""

    name: str
    nonblocking: bool
    rot_rounds: str
    rot_versions: int
    write_cost_client_server: str
    write_cost_server_server: str
    metadata_client_server: str
    metadata_server_server: str
    clock: str
    latency_optimal: bool


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything the builders know about one registered protocol.

    ``server`` / ``client`` are the simulated drivers; ``kernel`` /
    ``client_kernel`` the sans-I/O state machines (used directly by the
    real-time backend and by kernel-level tests).  Kernel classes expose a
    ``from_config(config, ...)`` factory; see
    :class:`repro.core.common.kernel.ServerKernel`.

    ``transports`` lists the real-time transports the protocol supports
    (subset of :data:`repro.runtime.transport.TRANSPORTS`).  The built-ins
    support both; an external design whose messages are not wire-registered
    can declare ``("inproc",)`` and the TCP backends refuse it with a typed
    error instead of failing mid-run.
    """

    name: str
    server: type
    client: type
    kernel: Optional[type] = None
    client_kernel: Optional[type] = None
    properties: Optional[ProtocolProperties] = None
    transports: tuple[str, ...] = ("inproc", "tcp")


#: Live registry; mutated only through :func:`register_protocol`.
_SPECS: dict[str, ProtocolSpec] = {}

#: Backwards-compatible view: name -> (server, client).  Kept in sync by
#: :func:`register_protocol`.
PROTOCOLS: dict[str, tuple[type, type]] = {}


def register_protocol(name: str, server: type, client: type, *,
                      kernel: Optional[type] = None,
                      client_kernel: Optional[type] = None,
                      properties: Optional[ProtocolProperties] = None,
                      transports: tuple[str, ...] = ("inproc", "tcp"),
                      replace: bool = False) -> ProtocolSpec:
    """Register a runnable protocol under ``name``.

    Parameters
    ----------
    server / client:
        Simulated driver classes with the builder's
        ``(topology, dc_id, index, ...)`` constructor contract.
    kernel / client_kernel:
        Sans-I/O kernel classes (``from_config`` factories); required for
        the real-time backend, optional for simulation-only designs.
    properties:
        Table-2 row for the design (optional).
    transports:
        Real-time transports the design supports; pass ``("inproc",)`` for
        a design whose message types are not wire-registered.
    replace:
        Allow overwriting an existing registration (default: refuse, so two
        plugins cannot silently shadow each other).
    """
    if not replace and name in _SPECS:
        raise ConfigurationError(
            f"protocol {name!r} is already registered; "
            f"pass replace=True to override")
    spec = ProtocolSpec(name=name, server=server, client=client,
                        kernel=kernel, client_kernel=client_kernel,
                        properties=properties, transports=tuple(transports))
    _SPECS[name] = spec
    PROTOCOLS[name] = (server, client)
    return spec


def unregister_protocol(name: str) -> None:
    """Remove a registration (primarily for tests of the registry itself)."""
    _SPECS.pop(name, None)
    PROTOCOLS.pop(name, None)


def resolve_spec(name: str) -> ProtocolSpec:
    """The full :class:`ProtocolSpec` of a registered protocol."""
    try:
        return _SPECS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown protocol {name!r}; known: {sorted(_SPECS)}") from exc


def resolve(name: str) -> tuple[type, type]:
    """Server and client driver classes of a registered protocol."""
    spec = resolve_spec(name)
    return spec.server, spec.client


def protocol_properties(name: str) -> ProtocolProperties:
    """Table-2 properties of an implemented protocol."""
    spec = resolve_spec(name)
    if spec.properties is None:
        raise ConfigurationError(
            f"protocol {name!r} registered without Table-2 properties")
    return spec.properties


def implemented_protocols() -> tuple[str, ...]:
    """Names of protocols that can actually be run."""
    return tuple(_SPECS)


def realtime_protocols() -> tuple[str, ...]:
    """Names of protocols with kernels, i.e. runnable on the asyncio backend."""
    return tuple(name for name, spec in _SPECS.items()
                 if spec.kernel is not None and spec.client_kernel is not None)


def transport_protocols(transport: str) -> tuple[str, ...]:
    """Names of realtime protocols that support the given transport."""
    return tuple(name for name in realtime_protocols()
                 if transport in _SPECS[name].transports)


# --------------------------------------------------------------------------
# Built-in registrations
# --------------------------------------------------------------------------

register_protocol(
    "contrarian", ContrarianServer, ContrarianClient,
    kernel=ContrarianKernel, client_kernel=ContrarianClientKernel,
    properties=ProtocolProperties(
        name="Contrarian", nonblocking=True, rot_rounds="1 1/2 (or 2)",
        rot_versions=1, write_cost_client_server="1",
        write_cost_server_server="-", metadata_client_server="M",
        metadata_server_server="-", clock="Hybrid", latency_optimal=False))

register_protocol(
    "cure", CureServer, CureClient,
    kernel=CureKernel, client_kernel=CureClientKernel,
    properties=ProtocolProperties(
        name="Cure", nonblocking=False, rot_rounds="2", rot_versions=1,
        write_cost_client_server="1", write_cost_server_server="-",
        metadata_client_server="M", metadata_server_server="-",
        clock="Physical", latency_optimal=False))

register_protocol(
    "cc-lo", CcloServer, CcloClient,
    kernel=CcloKernel, client_kernel=CcloClientKernel,
    properties=ProtocolProperties(
        name="COPS-SNOW (CC-LO)", nonblocking=True, rot_rounds="1",
        rot_versions=1, write_cost_client_server="1",
        write_cost_server_server="O(N)", metadata_client_server="|deps|",
        metadata_server_server="O(K)", clock="Logical", latency_optimal=True))


#: Table 2 rows for systems the paper surveys but does not evaluate; these are
#: reported verbatim for completeness of the generated table.
_SURVEYED_PROPERTIES: tuple[ProtocolProperties, ...] = (
    ProtocolProperties("COPS", True, "<= 2", 2, "1", "-", "|deps|", "-",
                       "Logical", False),
    ProtocolProperties("Eiger", True, "<= 2", 2, "1", "-", "|deps|", "-",
                       "Logical", False),
    ProtocolProperties("ChainReaction", False, ">= 2", 1, "1", ">= 1",
                       "|deps|", "M", "Logical", False),
    ProtocolProperties("Orbe", False, "2", 1, "1", "-", "NxM", "-",
                       "Logical", False),
    ProtocolProperties("GentleRain", False, "2", 1, "1", "-", "1", "-",
                       "Physical", False),
    ProtocolProperties("Occult", True, ">= 1", 1, "1", "-", "O(P)", "-",
                       "Hybrid", False),
    ProtocolProperties("POCC", False, "2", 1, "1", "-", "M", "-",
                       "Physical", False),
)


def surveyed_properties() -> tuple[ProtocolProperties, ...]:
    """Table-2 rows of systems the paper surveys but does not evaluate."""
    return _SURVEYED_PROPERTIES


__all__ = [
    "PROTOCOLS",
    "ProtocolProperties",
    "ProtocolSpec",
    "implemented_protocols",
    "protocol_properties",
    "realtime_protocols",
    "register_protocol",
    "resolve",
    "resolve_spec",
    "surveyed_properties",
    "transport_protocols",
    "unregister_protocol",
]
