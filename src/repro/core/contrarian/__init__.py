"""Contrarian — the paper's contribution.

Contrarian provides causally consistent ROTs that are nonblocking and
one-version and complete in 1½ rounds of client-server communication
(configurable to 2 rounds), while keeping PUTs as cheap as in any
non-latency-optimal design.  It uses Hybrid Logical Clocks so snapshots are
fresh (the GSS advances with physical time) yet partitions can still move
their clock forward to serve a snapshot without blocking.

The clock mode and the number of rounds come from
:class:`repro.cluster.config.ClusterConfig` (``clock_mode`` and
``rot_rounds``), which is also how the clock/rounds ablation benchmarks are
expressed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.vector.client import VectorClient
from repro.core.vector.server import VectorServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.causal.checker import CausalConsistencyChecker
    from repro.cluster.topology import ClusterTopology
    from repro.metrics.collectors import MetricsRegistry
    from repro.workload.generator import WorkloadGenerator

PROTOCOL_NAME = "contrarian"


class ContrarianServer(VectorServer):
    """Contrarian partition server: HLC (by default) and cheap PUTs."""

    def __init__(self, topology: "ClusterTopology", dc_id: int,
                 partition_index: int) -> None:
        super().__init__(topology, dc_id, partition_index,
                         clock_mode=topology.config.clock_mode,
                         protocol_name=PROTOCOL_NAME)


class ContrarianClient(VectorClient):
    """Contrarian client: 1½-round ROTs by default, 2 rounds if configured."""

    def __init__(self, topology: "ClusterTopology", dc_id: int, client_index: int,
                 generator: "WorkloadGenerator", metrics: "MetricsRegistry",
                 checker: Optional["CausalConsistencyChecker"] = None) -> None:
        super().__init__(topology, dc_id, client_index, generator, metrics,
                         checker, two_round=topology.config.rot_rounds == 2.0)


__all__ = ["ContrarianClient", "ContrarianServer", "PROTOCOL_NAME"]
