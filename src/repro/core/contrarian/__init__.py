"""Contrarian — the paper's contribution.

Contrarian provides causally consistent ROTs that are nonblocking and
one-version and complete in 1½ rounds of client-server communication
(configurable to 2 rounds), while keeping PUTs as cheap as in any
non-latency-optimal design.  It uses Hybrid Logical Clocks so snapshots are
fresh (the GSS advances with physical time) yet partitions can still move
their clock forward to serve a snapshot without blocking.

The clock mode and the number of rounds come from
:class:`repro.cluster.config.ClusterConfig` (``clock_mode`` and
``rot_rounds``), which is also how the clock/rounds ablation benchmarks are
expressed.
"""

from __future__ import annotations

from repro.core.vector.client import VectorClient
from repro.core.vector.kernel import ContrarianClientKernel, ContrarianKernel
from repro.core.vector.server import VectorServer

PROTOCOL_NAME = "contrarian"


class ContrarianServer(VectorServer):
    """Contrarian partition server: HLC (by default) and cheap PUTs.

    A thin driver: the protocol state machine is
    :class:`~repro.core.vector.kernel.ContrarianKernel`.
    """

    kernel_class = ContrarianKernel


class ContrarianClient(VectorClient):
    """Contrarian client: 1½-round ROTs by default, 2 rounds if configured."""

    kernel_class = ContrarianClientKernel


__all__ = ["ContrarianClient", "ContrarianKernel", "ContrarianServer",
           "PROTOCOL_NAME"]
