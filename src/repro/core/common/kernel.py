"""Sans-I/O protocol kernels: effects, addresses and kernel base classes.

The protocol logic of Contrarian, Cure and CC-LO lives in *kernels* — pure
state machines that never import the simulator, an event loop, or a socket.
A kernel receives inputs through two entry points::

    on_message(sender, message, now) -> list[Effect]
    on_timer(tag, payload, now)      -> list[Effect]

and describes everything it wants done to the outside world as a list of
*effects*:

* :class:`Send` — deliver ``message`` to the node at ``dest`` (an abstract
  :class:`ServerAddr` / :class:`ClientAddr`, never an object reference);
* :class:`SetTimer` — call ``on_timer(tag, payload)`` after ``delay``
  seconds (one-shot);
* :class:`Complete` — (client kernels only) the in-flight operation
  finished with the attached outcome.

A *driver* owns the I/O: the simulated backend
(:class:`repro.core.common.server.PartitionServer`,
:class:`repro.core.common.client.BaseClient`) resolves addresses against the
cluster topology and turns timers into simulator events; the real-time
backend (:mod:`repro.runtime`) resolves them against asyncio mailboxes and
``asyncio`` sleeps.  Effects are executed strictly in emission order, which
is what keeps simulated runs bit-identical to the pre-kernel implementation.

Time enters a kernel only through the ``now`` arguments and through the
clock object it was constructed with; randomness only through an injected
``random.Random``.  That makes kernels trivially testable: feed hand-crafted
messages, assert the emitted effects (see ``tests/test_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from repro.errors import ProtocolError
from repro.metrics.overheads import OverheadCounters

# --------------------------------------------------------------------------
# Addresses
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ServerAddr:
    """Location of a partition server: data center + partition index."""

    dc: int
    partition: int


@dataclass(frozen=True)
class ClientAddr:
    """Location of a client, identified by its globally unique id."""

    client_id: str


Addr = Union[ServerAddr, ClientAddr]


# --------------------------------------------------------------------------
# Effects
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Send:
    """Deliver ``message`` to the node at ``dest``."""

    dest: Addr
    message: object


@dataclass(frozen=True)
class SetTimer:
    """Invoke ``on_timer(tag, payload)`` after ``delay`` seconds (one-shot)."""

    delay: float
    tag: str
    payload: Any = None


@dataclass(frozen=True)
class PutOutcome:
    """Payload of a completed PUT.

    ``dependencies`` is the causal context snapshot taken *before* the PUT
    subsumed it — exactly what the consistency checker must record for this
    operation.
    """

    key: str
    timestamp: int
    origin_dc: int
    dependencies: tuple[tuple[str, int, int], ...] = ()


@dataclass(frozen=True)
class RotOutcome:
    """Payload of a completed ROT: one :class:`ReadResult` per key."""

    rot_id: str
    results: dict  # key -> ReadResult


@dataclass(frozen=True)
class Complete:
    """The client's in-flight operation finished.

    ``op`` is ``"put"`` or ``"rot"``; ``result`` the matching outcome
    dataclass.  Only client kernels emit this effect.
    """

    op: str
    result: Union[PutOutcome, RotOutcome]


Effect = Union[Send, SetTimer, Complete]


@dataclass(frozen=True)
class TimerSpec:
    """A recurring timer a server kernel asks its driver to run.

    ``start_delay`` of ``None`` means "one full interval".  The driver fires
    ``on_timer(tag, None)`` at every occurrence.
    """

    tag: str
    interval: float
    start_delay: Optional[float] = None


# --------------------------------------------------------------------------
# Kernel bases
# --------------------------------------------------------------------------


class _EffectBuffer:
    """Mixin managing the ordered effect list kernels emit into.

    Kernel handler methods append through :meth:`_send` / :meth:`_set_timer`
    / :meth:`_complete` exactly where the pre-kernel code performed the I/O,
    so the drained list preserves the original operation order.
    """

    def __init__(self) -> None:
        self._effects: list[Effect] = []
        #: Observability hooks (see :mod:`repro.obs`): the driver attaches an
        #: event bus and sets the trace id of the input being handled before
        #: each entry-point call.  Both stay ``None`` with tracing disabled,
        #: and every emit site guards on ``tracer is not None`` so the hot
        #: path pays one attribute load.
        self.tracer = None
        self.current_trace: Optional[str] = None

    def _send(self, dest: Addr, message: object) -> None:
        self._effects.append(Send(dest=dest, message=message))

    def _set_timer(self, delay: float, tag: str, payload: Any = None) -> None:
        self._effects.append(SetTimer(delay=delay, tag=tag, payload=payload))

    def _complete(self, op: str, result: Union[PutOutcome, RotOutcome]) -> None:
        self._effects.append(Complete(op=op, result=result))

    def _drain(self) -> list[Effect]:
        effects, self._effects = self._effects, []
        return effects


class ServerKernel(_EffectBuffer):
    """Shared state and routing helpers of the partition-server kernels.

    Concrete kernels implement ``_dispatch`` (the protocol logic) and
    ``_handle_timer``; drivers call :meth:`on_message` / :meth:`on_timer`
    and execute the returned effects.
    """

    def __init__(self, *, node_id: str, dc_id: int, partition_index: int,
                 num_dcs: int, num_partitions: int, partitioner,
                 counters: Optional[OverheadCounters] = None,
                 rot_registry: Optional[Callable[[], object]] = None) -> None:
        super().__init__()
        self.node_id = node_id
        self.dc_id = dc_id
        self.partition_index = partition_index
        self.num_dcs = num_dcs
        self.num_partitions = num_partitions
        self.partitioner = partitioner
        self.counters = counters if counters is not None else OverheadCounters()
        #: Zero-argument callable returning the in-flight ROT registry (or
        #: ``None``).  A callable — not a reference — because fault scenarios
        #: install the registry after construction.
        self._rot_registry = rot_registry
        self.now = 0.0

    # -------------------------------------------------------------- routing
    def replicas(self) -> list[ServerAddr]:
        """Replicas of this partition in the other data centers, by DC."""
        return [ServerAddr(dc, self.partition_index)
                for dc in range(self.num_dcs) if dc != self.dc_id]

    def peers_in_dc(self) -> list[ServerAddr]:
        """The other partition servers in this server's DC, by partition."""
        return [ServerAddr(self.dc_id, partition)
                for partition in range(self.num_partitions)
                if partition != self.partition_index]

    def rot_registry(self):
        """The active-ROT registry, or ``None`` outside fault scenarios."""
        provider = self._rot_registry
        return provider() if provider is not None else None

    # ------------------------------------------------------------ entry API
    def on_message(self, sender: Addr, message: object,
                   now: float) -> list[Effect]:
        """Feed one message into the state machine; returns ordered effects."""
        self.now = now
        self._dispatch(sender, message)
        return self._drain()

    def on_timer(self, tag: str, payload: Any, now: float) -> list[Effect]:
        """Fire a timer previously requested via :class:`SetTimer` or
        :meth:`periodic_timers`."""
        self.now = now
        self._handle_timer(tag, payload)
        return self._drain()

    def periodic_timers(self) -> tuple[TimerSpec, ...]:
        """Recurring timers the driver must run; none by default."""
        return ()

    # ----------------------------------------------------------------- hooks
    def _dispatch(self, sender: Addr, message: object) -> None:
        raise NotImplementedError

    def _handle_timer(self, tag: str, payload: Any) -> None:
        raise ProtocolError(f"{self.node_id} has no timer {tag!r}")


class ClientKernel(_EffectBuffer):
    """Shared state of the client-side protocol kernels.

    The closed loop (issue-on-complete), metric recording and history
    recording stay in the driver; the kernel owns the causal context and the
    protocol exchange.  :class:`Complete` effects carry everything the driver
    needs to record the finished operation.
    """

    def __init__(self, *, client_id: str, dc_id: int, partitioner,
                 rot_registry: Optional[Callable[[], object]] = None) -> None:
        super().__init__()
        self.client_id = client_id
        self.dc_id = dc_id
        self.partitioner = partitioner
        self._rot_registry = rot_registry
        self.sequence = 0
        self.now = 0.0

    def rot_registry(self):
        """The active-ROT registry, or ``None`` outside fault scenarios."""
        provider = self._rot_registry
        return provider() if provider is not None else None

    def next_rot_id(self) -> str:
        """A globally unique ROT identifier (client id + sequence number)."""
        return f"{self.client_id}#{self.sequence}"

    # ------------------------------------------------------------ entry API
    def start_operation(self, operation, sequence: int,
                        now: float) -> list[Effect]:
        """Issue ``operation`` (the driver's closed loop supplies the
        sequence number it assigned)."""
        self.sequence = sequence
        self.now = now
        if operation.is_put:
            self._issue_put(operation)
        else:
            self._issue_rot(operation)
        return self._drain()

    def on_message(self, message: object, now: float) -> list[Effect]:
        """Feed one reply into the state machine; returns ordered effects."""
        self.now = now
        self._dispatch(message)
        return self._drain()

    # ----------------------------------------------------------------- hooks
    def _issue_put(self, operation) -> None:
        raise NotImplementedError

    def _issue_rot(self, operation) -> None:
        raise NotImplementedError

    def _dispatch(self, message: object) -> None:
        raise NotImplementedError

    def checker_dependencies(self) -> tuple[tuple[str, int, int], ...]:
        """The causal context the checker records with PUTs."""
        return ()


__all__ = [
    "Addr",
    "ClientAddr",
    "ClientKernel",
    "Complete",
    "Effect",
    "PutOutcome",
    "RotOutcome",
    "Send",
    "ServerAddr",
    "ServerKernel",
    "SetTimer",
    "TimerSpec",
]
