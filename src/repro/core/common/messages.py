"""Message types exchanged by clients and partition servers.

Messages are plain dataclasses.  Each type reports its wire size through
``size_bytes`` so the network model can charge serialisation time and the
overhead counters can attribute bytes to protocols: vectors cost 8 bytes per
entry, dependency entries 16 bytes, ROT identifiers 8 bytes (the figure the
paper uses when estimating the 7 KB readers-check payload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Fixed per-message header (routing, type tag, request id).
HEADER_BYTES = 32
#: Bytes per vector entry / timestamp.
TIMESTAMP_BYTES = 8
#: Bytes per explicit dependency entry (key digest + timestamp).
DEPENDENCY_BYTES = 16
#: Bytes per ROT identifier exchanged during a readers check.
ROT_ID_BYTES = 8
#: Bytes per key name carried in a request.
KEY_BYTES = 8


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages."""

    def size_bytes(self) -> int:
        """Wire size of the message; subclasses refine this."""
        return HEADER_BYTES


# --------------------------------------------------------------------------
# Vector-protocol messages (Contrarian and Cure)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class VectorPutRequest(Message):
    """Client -> partition: create a new version of ``key``."""

    key: str
    value_size: int
    client_vector: tuple[int, ...]
    client_id: str
    sequence: int
    dependencies: tuple[tuple[str, int], ...] = ()

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES + self.value_size
                + TIMESTAMP_BYTES * len(self.client_vector))


@dataclass(frozen=True)
class VectorPutReply(Message):
    """Partition -> client: the new version's timestamp and the fresh GSS."""

    key: str
    timestamp: int
    gss: tuple[int, ...]

    def size_bytes(self) -> int:
        return HEADER_BYTES + KEY_BYTES + TIMESTAMP_BYTES * (1 + len(self.gss))


@dataclass(frozen=True)
class RotCoordinatorRequest(Message):
    """Client -> coordinator: start a ROT (both 1½- and 2-round modes)."""

    rot_id: str
    keys: tuple[str, ...]
    client_local_ts: int
    client_gss: tuple[int, ...]
    client_id: str
    two_round: bool = False

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES * len(self.keys)
                + TIMESTAMP_BYTES * (1 + len(self.client_gss)))


@dataclass(frozen=True)
class RotSnapshotReply(Message):
    """Coordinator -> client (2-round mode): the chosen snapshot vector."""

    rot_id: str
    snapshot: tuple[int, ...]

    def size_bytes(self) -> int:
        return HEADER_BYTES + TIMESTAMP_BYTES * len(self.snapshot)


@dataclass(frozen=True)
class RotProxyRead(Message):
    """Coordinator -> partition (1½-round mode): read on behalf of the client."""

    rot_id: str
    keys: tuple[str, ...]
    snapshot: tuple[int, ...]
    client_id: str

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES * len(self.keys)
                + TIMESTAMP_BYTES * len(self.snapshot))


@dataclass(frozen=True)
class RotReadRequest(Message):
    """Client -> partition (2-round mode): read with an explicit snapshot."""

    rot_id: str
    keys: tuple[str, ...]
    snapshot: tuple[int, ...]
    client_id: str

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES * len(self.keys)
                + TIMESTAMP_BYTES * len(self.snapshot))


@dataclass(frozen=True)
class ReadResult:
    """The per-key payload of a read reply."""

    key: str
    timestamp: Optional[int]
    origin_dc: int
    value_size: int


@dataclass(frozen=True)
class RotValueReply(Message):
    """Partition -> client: the values (one version per key) for a ROT."""

    rot_id: str
    results: tuple[ReadResult, ...]
    snapshot: tuple[int, ...]
    gss: tuple[int, ...]

    def size_bytes(self) -> int:
        payload = sum(result.value_size for result in self.results)
        return (HEADER_BYTES + payload
                + (KEY_BYTES + TIMESTAMP_BYTES) * len(self.results)
                + TIMESTAMP_BYTES * (len(self.snapshot) + len(self.gss)))


@dataclass(frozen=True)
class RemoteHeartbeat(Message):
    """Partition -> remote replica: clock advertisement when no PUTs flow.

    Without heartbeats a partition that receives no replicated updates would
    pin the remote entries of the GSS at zero and remote versions would never
    become visible (the "laggard" problem discussed in Section 4).
    """

    origin_dc: int
    timestamp: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + TIMESTAMP_BYTES


@dataclass(frozen=True)
class StabilizationMessage(Message):
    """Partition -> partition (same DC): version-vector exchange for the GSS."""

    partition_index: int
    version_vector: tuple[int, ...]

    def size_bytes(self) -> int:
        return HEADER_BYTES + TIMESTAMP_BYTES * len(self.version_vector)


@dataclass(frozen=True)
class ReplicateUpdate(Message):
    """Partition -> remote replica: asynchronous propagation of one version."""

    key: str
    timestamp: int
    origin_dc: int
    value_size: int
    dependency_vector: Optional[tuple[int, ...]] = None
    dependencies: tuple[tuple[str, int], ...] = ()
    writer: str = ""
    sequence: int = 0

    def size_bytes(self) -> int:
        vector_len = len(self.dependency_vector) if self.dependency_vector else 0
        return (HEADER_BYTES + KEY_BYTES + self.value_size
                + TIMESTAMP_BYTES * (1 + vector_len)
                + DEPENDENCY_BYTES * len(self.dependencies))


# --------------------------------------------------------------------------
# CC-LO (COPS-SNOW) messages
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class OneRoundReadRequest(Message):
    """Client -> partition: the single round of a latency-optimal ROT."""

    rot_id: str
    keys: tuple[str, ...]
    client_id: str

    def size_bytes(self) -> int:
        return HEADER_BYTES + ROT_ID_BYTES + KEY_BYTES * len(self.keys)


@dataclass(frozen=True)
class OneRoundReadReply(Message):
    """Partition -> client: values for a latency-optimal ROT."""

    rot_id: str
    results: tuple[ReadResult, ...]

    def size_bytes(self) -> int:
        payload = sum(result.value_size for result in self.results)
        return (HEADER_BYTES + ROT_ID_BYTES + payload
                + (KEY_BYTES + TIMESTAMP_BYTES) * len(self.results))


@dataclass(frozen=True)
class CcloPutRequest(Message):
    """Client -> partition: PUT carrying the client's explicit dependencies."""

    key: str
    value_size: int
    dependencies: tuple[tuple[str, int, int], ...]
    dependency_partitions: tuple[int, ...]
    client_id: str
    sequence: int

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES + self.value_size
                + DEPENDENCY_BYTES * len(self.dependencies))


@dataclass(frozen=True)
class CcloPutReply(Message):
    """Partition -> client: PUT acknowledgement (sent once the PUT completed)."""

    key: str
    timestamp: int

    def size_bytes(self) -> int:
        return HEADER_BYTES + KEY_BYTES + TIMESTAMP_BYTES


@dataclass(frozen=True)
class ReadersCheckRequest(Message):
    """Writing partition -> dependency partition: collect old readers.

    In the geo-replicated case the same message doubles as the dependency
    check (``require_present`` is then True): the receiving partition delays
    its reply until it has installed a version of every listed dependency.
    """

    check_id: str
    dependencies: tuple[tuple[str, int, int], ...]
    put_key: str
    put_timestamp: int
    require_present: bool = False

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES + TIMESTAMP_BYTES
                + DEPENDENCY_BYTES * len(self.dependencies))


@dataclass(frozen=True)
class ReadersCheckReply(Message):
    """Dependency partition -> writing partition: the old readers it knows of."""

    check_id: str
    old_readers: tuple[tuple[str, int], ...]  # (rot_id, logical read time)

    def size_bytes(self) -> int:
        return HEADER_BYTES + ROT_ID_BYTES * len(self.old_readers) \
            + TIMESTAMP_BYTES * len(self.old_readers)


@dataclass(frozen=True)
class CcloReplicateUpdate(Message):
    """Partition -> remote replica: replicated update with its dependency list."""

    key: str
    timestamp: int
    origin_dc: int
    value_size: int
    dependencies: tuple[tuple[str, int, int], ...]
    writer: str
    sequence: int
    old_readers: tuple[tuple[str, int], ...] = ()

    def size_bytes(self) -> int:
        return (HEADER_BYTES + KEY_BYTES + self.value_size + TIMESTAMP_BYTES
                + DEPENDENCY_BYTES * len(self.dependencies)
                + ROT_ID_BYTES * len(self.old_readers))


# --------------------------------------------------------------------------
# Client-side bookkeeping (not a wire message)
# --------------------------------------------------------------------------
@dataclass
class PendingRot:
    """Client-side state of an in-flight ROT."""

    rot_id: str
    keys: tuple[str, ...]
    started_at: float
    expected_replies: int
    results: dict[str, ReadResult] = field(default_factory=dict)
    snapshot: Optional[tuple[int, ...]] = None

    def record_reply(self, results: tuple[ReadResult, ...]) -> None:
        for result in results:
            self.results[result.key] = result
        self.expected_replies -= 1

    @property
    def complete(self) -> bool:
        return self.expected_replies <= 0


# --------------------------------------------------------------------------
# Wire-codec enumeration
# --------------------------------------------------------------------------
#: Every message type that can cross a process boundary, in a *stable* order:
#: the wire codec (:mod:`repro.wire`) derives each type's numeric tag from its
#: position in this tuple, so entries must only ever be appended, never
#: reordered or removed (that would change tags and break cross-version
#: decoding).  :class:`ReadResult` is listed because replies embed it.
WIRE_MESSAGES: tuple[type, ...] = (
    ReadResult,
    VectorPutRequest,
    VectorPutReply,
    RotCoordinatorRequest,
    RotSnapshotReply,
    RotProxyRead,
    RotReadRequest,
    RotValueReply,
    RemoteHeartbeat,
    StabilizationMessage,
    ReplicateUpdate,
    OneRoundReadRequest,
    OneRoundReadReply,
    CcloPutRequest,
    CcloPutReply,
    ReadersCheckRequest,
    ReadersCheckReply,
    CcloReplicateUpdate,
)

#: The wire-message set of each protocol (used by the codec round-trip tests
#: to assert per-protocol coverage).  The vector protocols share one set.
PROTOCOL_MESSAGES: dict[str, tuple[type, ...]] = {
    "contrarian": (
        VectorPutRequest, VectorPutReply, RotCoordinatorRequest,
        RotSnapshotReply, RotProxyRead, RotReadRequest, RotValueReply,
        RemoteHeartbeat, StabilizationMessage, ReplicateUpdate, ReadResult,
    ),
    "cure": (
        VectorPutRequest, VectorPutReply, RotCoordinatorRequest,
        RotSnapshotReply, RotReadRequest, RotValueReply, RemoteHeartbeat,
        StabilizationMessage, ReplicateUpdate, ReadResult,
    ),
    "cc-lo": (
        OneRoundReadRequest, OneRoundReadReply, CcloPutRequest, CcloPutReply,
        ReadersCheckRequest, ReadersCheckReply, CcloReplicateUpdate,
        ReadResult,
    ),
}


__all__ = [
    "CcloPutReply",
    "CcloPutRequest",
    "CcloReplicateUpdate",
    "DEPENDENCY_BYTES",
    "HEADER_BYTES",
    "KEY_BYTES",
    "Message",
    "OneRoundReadReply",
    "OneRoundReadRequest",
    "PendingRot",
    "ReadResult",
    "ReadersCheckReply",
    "ReadersCheckRequest",
    "RemoteHeartbeat",
    "ReplicateUpdate",
    "RotCoordinatorRequest",
    "RotProxyRead",
    "RotReadRequest",
    "RotSnapshotReply",
    "RotValueReply",
    "ROT_ID_BYTES",
    "StabilizationMessage",
    "TIMESTAMP_BYTES",
    "VectorPutReply",
    "VectorPutRequest",
    "PROTOCOL_MESSAGES",
    "WIRE_MESSAGES",
]
