"""Machinery shared by all protocol implementations.

:mod:`repro.core.common.kernel` defines the sans-I/O side (effects,
addresses, kernel base classes); :mod:`repro.core.common.messages` the wire
messages both backends exchange; ``server``/``client`` the simulated
drivers.  Exports resolve lazily so kernel imports stay simulator-free.
"""

from repro._lazy import make_lazy

_EXPORTS = {
    "BaseClient": "repro.core.common.client",
    "ClientAddr": "repro.core.common.kernel",
    "ClientKernel": "repro.core.common.kernel",
    "Complete": "repro.core.common.kernel",
    "PartitionServer": "repro.core.common.server",
    "Send": "repro.core.common.kernel",
    "ServerAddr": "repro.core.common.kernel",
    "ServerKernel": "repro.core.common.kernel",
    "SetTimer": "repro.core.common.kernel",
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
