"""Machinery shared by all protocol implementations."""

from repro.core.common.client import BaseClient
from repro.core.common.server import PartitionServer

__all__ = ["BaseClient", "PartitionServer"]
