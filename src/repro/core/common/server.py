"""Base class for partition servers.

A partition server is a simulated node that stores one shard of the keyspace
in one data center.  The base class wires together the pieces every protocol
needs — the multi-version store, the overhead counters, the cost-model-driven
``service_time`` and a ``send`` helper that goes through the simulated
network — and leaves the protocol logic (``handle_message`` and
``message_cost``) to the concrete implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.config import ClusterConfig
from repro.sim.costs import OverheadCounters
from repro.sim.node import Node
from repro.storage.mvstore import MultiVersionStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology


class PartitionServer(Node):
    """Common state and helpers of every partition server."""

    def __init__(self, topology: "ClusterTopology", dc_id: int,
                 partition_index: int) -> None:
        config: ClusterConfig = topology.config
        super().__init__(topology.sim,
                         node_id=f"server-dc{dc_id}-p{partition_index}",
                         dc_id=dc_id,
                         threads=config.server_threads)
        self.topology = topology
        self.config = config
        self.partition_index = partition_index
        self.cost_model = config.cost_model
        self.store = MultiVersionStore(max_versions_per_key=config.max_versions_per_key)
        self.counters = OverheadCounters()
        self.partitioner = topology.partitioner

    # ------------------------------------------------------------------ wires
    def send(self, destination: Node, message: object) -> None:
        """Send a message through the simulated network, counting it."""
        self.counters.messages_sent += 1
        size_fn = getattr(message, "size_bytes", None)
        if callable(size_fn):
            self.counters.bytes_sent += int(size_fn())
        self.topology.network.send(self, destination, message)

    def peers_in_dc(self) -> list["PartitionServer"]:
        """The other partition servers in this server's DC."""
        return [server for server in self.topology.servers_in_dc(self.dc_id)
                if server.partition_index != self.partition_index]

    def replicas(self) -> list["PartitionServer"]:
        """Replicas of this partition in the other data centers."""
        return self.topology.replicas_of(self.dc_id, self.partition_index)

    # ------------------------------------------------------------------ hooks
    def service_time(self, message: object) -> float:
        """Charge the CPU for ``message`` according to the cost model."""
        return self.cost_model.message_cost() + self.message_cost(message)

    def message_cost(self, message: object) -> float:
        """Protocol-specific CPU cost of a message (seconds); override."""
        del message
        return 0.0

    def start(self) -> None:
        """Start periodic protocol tasks (stabilization, GC); override."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"{type(self).__name__}(dc={self.dc_id}, "
                f"partition={self.partition_index})")


__all__ = ["PartitionServer"]
