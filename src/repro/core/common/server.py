"""Simulated driver for the partition-server kernels.

The protocol logic lives in the sans-I/O kernels
(:mod:`repro.core.common.kernel` and the per-protocol kernel modules); a
:class:`PartitionServer` is the *driver* that welds one kernel onto the
discrete-event simulator.  It is a simulated node with a FIFO CPU queue that

* feeds every delivered message into ``kernel.on_message`` and executes the
  returned effects in order (sends go through the simulated network, timers
  become simulator events);
* runs the kernel's periodic timers as :class:`~repro.sim.engine.PeriodicTask`
  instances;
* charges each message the cost-model-driven ``service_time``.

Effects are executed strictly in emission order, which keeps kernel-driven
runs bit-identical to the pre-kernel implementation.  Protocol state (store,
clock, GSS, reader records) is owned by the kernel; the driver exposes the
common pieces as properties for inspection by tests, the fault controller
and the harness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cluster.config import ClusterConfig
from repro.core.common.kernel import (
    Addr,
    ClientAddr,
    Effect,
    Send,
    ServerAddr,
    ServerKernel,
    SetTimer,
)
from repro.errors import ProtocolError
from repro.obs.events import EFFECT, MSG_RECV, MSG_SEND
from repro.sim.engine import PeriodicTask
from repro.sim.node import Node
from repro.storage.mvstore import MultiVersionStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology


class PartitionServer(Node):
    """Common driver machinery of every simulated partition server.

    Subclasses construct their protocol kernel and hand it to
    :meth:`attach_kernel`; the base class implements message dispatch,
    effect execution and timer plumbing.
    """

    def __init__(self, topology: "ClusterTopology", dc_id: int,
                 partition_index: int) -> None:
        config: ClusterConfig = topology.config
        super().__init__(topology.sim,
                         node_id=f"server-dc{dc_id}-p{partition_index}",
                         dc_id=dc_id,
                         threads=config.server_threads)
        self.topology = topology
        self.config = config
        self.partition_index = partition_index
        self.cost_model = config.cost_model
        self.partitioner = topology.partitioner
        self.kernel: Optional[ServerKernel] = None
        self._periodic_tasks: list[PeriodicTask] = []
        #: Event bus (see :mod:`repro.obs`), attached by the harness builder
        #: when tracing is enabled; ``None`` keeps every emit site to one
        #: attribute load plus a None check.
        self._tracer = None

    def attach_kernel(self, kernel: ServerKernel) -> None:
        """Bind the protocol kernel this driver executes."""
        self.kernel = kernel

    # --------------------------------------------------------- kernel state
    @property
    def store(self) -> MultiVersionStore:
        """The kernel-owned multi-version store (inspection/preload)."""
        return self.kernel.store

    @property
    def counters(self):
        """The kernel-owned overhead counters."""
        return self.kernel.counters

    # ------------------------------------------------------------------ wires
    def send(self, destination: Node, message: object) -> None:
        """Send a message through the simulated network, counting it."""
        self.counters.messages_sent += 1
        size_fn = getattr(message, "size_bytes", None)
        if callable(size_fn):
            self.counters.bytes_sent += int(size_fn())
        self.topology.network.send(self, destination, message)

    def resolve(self, addr: Addr) -> Node:
        """Resolve an abstract kernel address to the simulated node."""
        if isinstance(addr, ServerAddr):
            return self.topology.server(addr.dc, addr.partition)
        if isinstance(addr, ClientAddr):
            return self.topology.client_by_id(addr.client_id)
        raise ProtocolError(f"{self.node_id} cannot resolve address {addr!r}")

    def address_of(self, node: Node) -> Addr:
        """The abstract address of a simulated node (for kernel input)."""
        partition = getattr(node, "partition_index", None)
        if partition is not None:
            return ServerAddr(node.dc_id, partition)
        return ClientAddr(node.node_id)

    def execute_effects(self, effects: list[Effect]) -> None:
        """Run the kernel's effects, in order, against the simulator."""
        tracer = self._tracer
        for effect in effects:
            if isinstance(effect, Send):
                if tracer is not None:
                    tracer.emit(self.node_id, MSG_SEND,
                                trace=self.current_trace,
                                name=type(effect.message).__name__,
                                dc=self.dc_id)
                self.send(self.resolve(effect.dest), effect.message)
            elif isinstance(effect, SetTimer):
                tag, payload = effect.tag, effect.payload
                if tracer is not None:
                    tracer.emit(self.node_id, EFFECT,
                                trace=self.current_trace,
                                name=f"set-timer:{tag}", dc=self.dc_id)
                # The closure captures the current trace so timer-deferred
                # work (Cure put-wait, rot-block) keeps its operation's
                # trace; always None when tracing is disabled.
                self.sim.schedule(effect.delay,
                                  lambda tag=tag, payload=payload,
                                  trace=self.current_trace:
                                  self._fire_timer(tag, payload, trace),
                                  label=tag)
            else:
                raise ProtocolError(
                    f"{self.node_id} cannot execute effect {effect!r}")

    def _fire_timer(self, tag: str, payload: object = None,
                    trace: Optional[str] = None) -> None:
        # Adopt the trace captured when the timer was armed (periodic tasks
        # pass none, resetting the background context).
        self.current_trace = trace
        kernel = self.kernel
        if self._tracer is not None:
            kernel.current_trace = trace
        self.execute_effects(kernel.on_timer(tag, payload, self.sim.now))

    def peers_in_dc(self) -> list["PartitionServer"]:
        """The other partition servers in this server's DC."""
        return [server for server in self.topology.servers_in_dc(self.dc_id)
                if server.partition_index != self.partition_index]

    def replicas(self) -> list["PartitionServer"]:
        """Replicas of this partition in the other data centers."""
        return self.topology.replicas_of(self.dc_id, self.partition_index)

    # ------------------------------------------------------------------ hooks
    def handle_message(self, sender: Node, message: object) -> None:
        """Feed the message to the kernel and execute its effects."""
        tracer = self._tracer
        if tracer is not None:
            trace = self.current_trace
            self.kernel.current_trace = trace
            tracer.emit(self.node_id, MSG_RECV, trace=trace,
                        name=type(message).__name__, dc=self.dc_id)
        self.execute_effects(self.kernel.on_message(
            self.address_of(sender), message, self.sim.now))

    def service_time(self, message: object) -> float:
        """Charge the CPU for ``message`` according to the cost model."""
        return self.cost_model.message_cost() + self.message_cost(message)

    def message_cost(self, message: object) -> float:
        """Protocol-specific CPU cost of a message (seconds); override."""
        del message
        return 0.0

    def start(self) -> None:
        """Start the kernel's periodic protocol tasks (stabilization, GC)."""
        for spec in self.kernel.periodic_timers():
            self._periodic_tasks.append(PeriodicTask(
                self.sim, spec.interval,
                lambda tag=spec.tag: self._fire_timer(tag),
                start_delay=spec.start_delay, label=spec.tag))

    def stop_background_tasks(self) -> None:
        """Cancel periodic tasks (lets the event queue drain at run end)."""
        for task in self._periodic_tasks:
            task.cancel()
        self._periodic_tasks = []

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"{type(self).__name__}(dc={self.dc_id}, "
                f"partition={self.partition_index})")


__all__ = ["PartitionServer"]
