"""Simulated driver for the client kernels (closed-loop load generation).

The paper's load generator spawns client threads that issue operations in a
closed loop: each client has at most one outstanding operation and issues the
next one as soon as the previous one completes.  Load is varied by changing
the number of clients, which is exactly how the throughput-versus-latency
curves of Figures 4–9 are produced.

The protocol exchange itself lives in a sans-I/O client kernel
(:class:`repro.core.common.kernel.ClientKernel` subclasses); this driver owns
the closed loop, the metric recording and the optional history recording for
the causal-consistency checker, and executes the kernel's effects against
the simulated network.  A :class:`~repro.core.common.kernel.Complete` effect
carries the finished operation (including the causal-context snapshot the
checker must record), upon which the driver issues the next one.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.causal.checker import (
    CausalConsistencyChecker,
    RecordedPut,
    RecordedRead,
    RecordedRot,
)
from repro.core.common.kernel import (
    Addr,
    ClientKernel,
    Complete,
    Effect,
    PutOutcome,
    RotOutcome,
    Send,
    ServerAddr,
)
from repro.core.common.messages import ReadResult
from repro.errors import ProtocolError
from repro.metrics.collectors import MetricsRegistry
from repro.obs.events import MSG_RECV, MSG_SEND, OP_FINISH, OP_START
from repro.sim.node import Node
from repro.workload.generator import Operation, WorkloadGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology


class BaseClient(Node):
    """A closed-loop client bound to one data center.

    Subclasses construct their protocol kernel and hand it to
    :meth:`attach_kernel`.
    """

    def __init__(self, topology: "ClusterTopology", dc_id: int, client_index: int,
                 generator: WorkloadGenerator, metrics: MetricsRegistry,
                 checker: Optional[CausalConsistencyChecker] = None) -> None:
        super().__init__(topology.sim,
                         node_id=f"client-dc{dc_id}-{client_index}",
                         dc_id=dc_id)
        self.topology = topology
        self.config = topology.config
        self.partitioner = topology.partitioner
        self.generator = generator
        self.metrics = metrics
        self.checker = checker
        #: Shared with the kernel: the driver draws the start-time jitter,
        #: the kernel draws coordinator choices — in the original interleaved
        #: order, which keeps runs bit-identical.
        self.rng = random.Random(f"{topology.sim.seed}:client:{dc_id}:{client_index}")
        self.kernel: Optional[ClientKernel] = None
        self.sequence = 0
        self._running = False
        self._op_started_at = 0.0
        self._current_operation: Optional[Operation] = None
        # Fault-injection state (see repro.faults): a suspended client stops
        # issuing after its in-flight operation completes; resume restarts it.
        self._suspended = False
        self._idle = False
        #: Event bus (see :mod:`repro.obs`); None keeps every emit site to a
        #: single attribute load plus a None check.
        self._tracer = None

    def attach_kernel(self, kernel: ClientKernel) -> None:
        """Bind the protocol kernel this driver executes."""
        self.kernel = kernel

    # ------------------------------------------------------------------ loop
    def start(self) -> None:
        """Begin issuing operations (called once by the harness)."""
        self._running = True
        # Desynchronise client start times slightly so the first wave of
        # requests does not arrive in lockstep.
        self.sim.schedule(self.rng.random() * 1e-3, self._issue_next,
                          label="client-start")

    def stop(self) -> None:
        """Stop issuing new operations (in-flight ones finish naturally)."""
        self._running = False

    def suspend(self) -> None:
        """Stop issuing once the in-flight operation completes (load shaping)."""
        self._suspended = True

    def resume(self) -> None:
        """Undo :meth:`suspend`; re-enters the closed loop if it had idled."""
        if not self._suspended:
            return
        self._suspended = False
        if self._running and self._idle:
            self._idle = False
            self._issue_next()

    def in_flight_operation(self) -> Optional[tuple[str, float]]:
        """The in-flight operation's ``(kind, age_seconds)``; None when idle.

        Used by the fault controller's stalled-ROT gauge.
        """
        if self._current_operation is None:
            return None
        return (self._current_operation.kind, self.sim.now - self._op_started_at)

    def _issue_next(self) -> None:
        self._current_operation = None
        if not self._running:
            return
        if self._suspended:
            self._idle = True
            return
        operation = self.generator.next_operation()
        self._current_operation = operation
        self._op_started_at = self.sim.now
        self.sequence += 1
        self.metrics.note_issue(operation.is_put)
        tracer = self._tracer
        if tracer is not None:
            self._begin_trace(tracer, operation)
        if operation.is_put:
            self.issue_put(operation)
        else:
            self.issue_rot(operation)

    def _begin_trace(self, tracer, operation: Operation) -> None:
        """Mint a trace id for this operation and emit its root span.

        Only called when tracing is enabled; the id propagates through the
        kernel's effects, the network, and back (see :mod:`repro.obs`).
        """
        trace = f"{self.node_id}#{self.sequence}"
        self.current_trace = trace
        self.kernel.current_trace = trace
        tracer.emit(self.node_id, OP_START, trace=trace,
                    name=operation.kind, dc=self.dc_id,
                    data=(("key", operation.keys[0]),))

    # --------------------------------------------------------------- effects
    def resolve(self, addr: Addr) -> Node:
        """Resolve an abstract kernel address to the simulated node."""
        if isinstance(addr, ServerAddr):
            return self.topology.server(addr.dc, addr.partition)
        raise ProtocolError(f"{self.node_id} cannot resolve address {addr!r}")

    def execute_effects(self, effects: list[Effect]) -> None:
        """Run the kernel's effects, in order, against the simulator."""
        tracer = self._tracer
        for effect in effects:
            if isinstance(effect, Send):
                if tracer is not None:
                    tracer.emit(self.node_id, MSG_SEND,
                                trace=self.current_trace,
                                name=type(effect.message).__name__,
                                dc=self.dc_id)
                self.send(self.resolve(effect.dest), effect.message)
            elif isinstance(effect, Complete):
                result = effect.result
                if effect.op == "put":
                    assert isinstance(result, PutOutcome)
                    self.complete_put(result.key, result.timestamp,
                                      result.origin_dc, result.dependencies)
                else:
                    assert isinstance(result, RotOutcome)
                    self.complete_rot(result.rot_id, result.results)
            else:
                raise ProtocolError(
                    f"{self.node_id} cannot execute effect {effect!r}")

    # --------------------------------------------------------------- complete
    def complete_put(self, key: str, timestamp: int, origin_dc: int,
                     dependencies: tuple[tuple[str, int, int], ...] = ()) -> None:
        """Record the finished PUT and re-enter the closed loop.

        ``dependencies`` is the kernel's causal-context snapshot from *before*
        the PUT subsumed it — the context the checker must attribute to it.
        """
        self.metrics.record_put(self._op_started_at, self.sim.now)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.node_id, OP_FINISH, trace=self.current_trace,
                        name="put", dc=self.dc_id, data=(("key", key),))
        if self.checker is not None:
            self.checker.record_put(RecordedPut(
                key=key, timestamp=timestamp, origin_dc=origin_dc,
                client=self.node_id, sequence=self.sequence,
                dependencies=dependencies))
        self._issue_next()

    def complete_rot(self, rot_id: str, results: dict[str, ReadResult]) -> None:
        """Record the finished ROT and re-enter the closed loop."""
        self.metrics.record_rot(self._op_started_at, self.sim.now)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(self.node_id, OP_FINISH, trace=self.current_trace,
                        name="rot", dc=self.dc_id)
        if self.checker is not None:
            reads = tuple(RecordedRead(key=result.key, timestamp=result.timestamp,
                                       origin_dc=result.origin_dc)
                          for result in results.values())
            self.checker.record_rot(RecordedRot(
                rot_id=rot_id, client=self.node_id,
                sequence=self.sequence, reads=reads))
        self._issue_next()

    # ------------------------------------------------------------------ hooks
    def issue_put(self, operation: Operation) -> None:
        """Issue the protocol's PUT through the kernel."""
        self.execute_effects(self.kernel.start_operation(
            operation, self.sequence, self.sim.now))

    def issue_rot(self, operation: Operation) -> None:
        """Issue the protocol's ROT(s) through the kernel."""
        self.execute_effects(self.kernel.start_operation(
            operation, self.sequence, self.sim.now))

    def checker_dependencies(self) -> tuple[tuple[str, int, int], ...]:
        """The kernel's current causal context (diagnostics)."""
        return self.kernel.checker_dependencies()

    # ------------------------------------------------------------------ misc
    def handle_message(self, sender: Node, message: object) -> None:
        """Feed a reply to the kernel and execute its effects."""
        del sender
        tracer = self._tracer
        if tracer is not None:
            trace = self.current_trace
            self.kernel.current_trace = trace
            tracer.emit(self.node_id, MSG_RECV, trace=trace,
                        name=type(message).__name__, dc=self.dc_id)
        self.execute_effects(self.kernel.on_message(message, self.sim.now))

    def service_time(self, message: object) -> float:
        """Clients pay a token CPU cost; they are never the bottleneck."""
        del message
        return self.config.cost_model.client_cost()

    def send(self, destination: Node, message: object) -> None:
        """Send a message through the simulated network."""
        self.topology.network.send(self, destination, message)


__all__ = ["BaseClient"]
