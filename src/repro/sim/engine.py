"""Discrete-event simulation engine.

The engine keeps a priority queue of events ordered by simulated time.  All
other components (network, nodes, protocol timers) schedule callbacks through
:meth:`Simulator.schedule` / :meth:`Simulator.call_at`.  Simulated time is a
float measured in **seconds**; component code typically works in milliseconds
or microseconds and converts through the helpers in this module.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional

from repro.clocks.units import (  # noqa: F401 - re-exported for compatibility
    MICROSECOND,
    MILLISECOND,
    SECOND,
    as_microseconds,
    as_milliseconds,
    microseconds,
    milliseconds,
)
from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    The engine orders events by ``(time, sequence)`` so that simultaneous
    events fire in the order they were scheduled, which keeps runs
    deterministic.  The ordering key is kept outside the event (the heap
    stores ``(time, sequence, event)`` tuples) and the event itself is a
    ``__slots__`` class: event creation and the attribute loads in the heap
    loop are the hottest allocations of the whole simulator, and slotted
    instances are measurably cheaper than dataclass instances here.
    """

    __slots__ = ("time", "sequence", "callback", "cancelled", "label")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[[], None], label: str = "") -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time:.9f}, seq={self.sequence}, "
                f"label={self.label!r}{state})")


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  Every source of
        randomness in the library draws from generators derived from this seed
        so that a run is fully reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self.random = random.Random(seed)
        self._seed = seed
        self._stopped = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def seed(self) -> int:
        """Seed the simulator was created with."""
        return self._seed

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def derived_rng(self, name: str) -> random.Random:
        """Return a new RNG deterministically derived from the seed and a name.

        Components (workload generator, network jitter, clock skew, ...) use
        separate derived generators so that adding randomness in one component
        does not perturb the draws of another.
        """
        return random.Random(f"{self._seed}:{name}")

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[[], None],
                 label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past: delay={delay}")
        return self.call_at(self._now + delay, callback, label=label)

    def call_at(self, when: float, callback: Callable[[], None],
                label: str = "") -> Event:
        """Schedule ``callback`` to run at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule an event at {when:.9f} before now={self._now:.9f}")
        sequence = next(self._sequence)
        event = Event(when, sequence, callback, label)
        heapq.heappush(self._queue, (when, sequence, event))
        return event

    # -------------------------------------------------------------- execution
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty or only contained cancelled events.
        """
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  Events scheduled
            exactly at ``until`` are executed.
        max_events:
            Safety valve: stop after executing this many events.
        """
        executed = 0
        self._stopped = False
        # The heap pop/dispatch below is the single hottest loop in the whole
        # library; bind everything it touches to locals.
        queue = self._queue
        heappop = heapq.heappop
        while queue and not self._stopped:
            event = queue[0][2]
            if event.cancelled:
                heappop(queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return
            heappop(queue)
            self._now = event.time
            event.callback()
            self._processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                return
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Simulator(now={self._now:.6f}, pending={len(self._queue)}, "
                f"processed={self._processed})")


class PeriodicTask:
    """Helper that reschedules a callback at a fixed period.

    Used for the stabilization protocol, heartbeats and metric sampling.  The
    task stops either when :meth:`cancel` is called or when ``stop_after``
    simulated seconds have elapsed.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], None], *,
                 start_delay: Optional[float] = None,
                 label: str = "periodic") -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._cancelled = False
        self._event: Optional[Event] = None
        delay = period if start_delay is None else start_delay
        self._event = sim.schedule(delay, self._fire, label=label)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop rescheduling and cancel the pending occurrence."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._event = self._sim.schedule(self._period, self._fire,
                                             label=self._label)


__all__ = [
    "Event",
    "PeriodicTask",
    "Simulator",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "as_microseconds",
    "as_milliseconds",
    "microseconds",
    "milliseconds",
]
