"""Discrete-event simulation substrate.

The paper's evaluation was run on a 64-machine cluster.  This package provides
the simulated equivalent: an event-driven engine (:mod:`repro.sim.engine`), a
message-passing network with configurable latency and bandwidth
(:mod:`repro.sim.network`), simulated processes with a FIFO CPU queue
(:mod:`repro.sim.node`) and an explicit CPU cost model
(:mod:`repro.sim.costs`).  Together these reproduce the queueing dynamics that
drive the paper's throughput-versus-latency results.
"""

from repro.sim.costs import CostModel
from repro.sim.engine import Event, Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node, ProcessingStats

__all__ = [
    "CostModel",
    "Event",
    "LatencyModel",
    "Network",
    "Node",
    "ProcessingStats",
    "Simulator",
]
