"""Message-passing network model.

The network delivers messages between :class:`~repro.sim.node.Node` instances
with a configurable one-way latency.  The paper emulates multiple data centers
over a 10 Gbps local network, so by default the intra-DC and inter-DC
latencies are equal; both can be changed to study true geo-replication.

Message size matters: serialisation on the wire is charged against a
per-message bandwidth term so that large values (Section 5.8) and large
dependency/ROT-id lists (CC-LO) consume proportionally more network time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator, microseconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.node import Node


@dataclass(frozen=True)
class LatencyModel:
    """One-way network latencies and bandwidth.

    Attributes
    ----------
    intra_dc_us:
        One-way latency between two nodes in the same data center
        (microseconds).
    inter_dc_us:
        One-way latency between two nodes in different data centers.
        The paper emulates remote DCs over a LAN, so the default equals the
        intra-DC latency; set it higher to model true WAN replication.
    bandwidth_bytes_per_us:
        Serialisation bandwidth in bytes per microsecond (10 Gbps is
         1250 bytes/us).
    jitter_us:
        Uniform jitter added to each hop, in microseconds.
    """

    intra_dc_us: float = 50.0
    inter_dc_us: float = 50.0
    bandwidth_bytes_per_us: float = 1250.0
    jitter_us: float = 5.0

    def __post_init__(self) -> None:
        if self.intra_dc_us < 0 or self.inter_dc_us < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.bandwidth_bytes_per_us <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.jitter_us < 0:
            raise ConfigurationError("jitter must be non-negative")

    def one_way_delay(self, same_dc: bool, size_bytes: int,
                      jitter_fraction: float) -> float:
        """Return the one-way delay in simulated seconds.

        ``jitter_fraction`` is a uniform draw in ``[0, 1)`` supplied by the
        caller (so that randomness stays under the simulator's control).
        """
        base = self.intra_dc_us if same_dc else self.inter_dc_us
        serialisation = size_bytes / self.bandwidth_bytes_per_us
        jitter = self.jitter_us * jitter_fraction
        return microseconds(base + serialisation + jitter)


@dataclass
class NetworkStats:
    """Counters describing all traffic that went through the network."""

    messages: int = 0
    bytes: int = 0
    intra_dc_messages: int = 0
    inter_dc_messages: int = 0

    def record(self, size_bytes: int, same_dc: bool) -> None:
        self.messages += 1
        self.bytes += size_bytes
        if same_dc:
            self.intra_dc_messages += 1
        else:
            self.inter_dc_messages += 1


class _DeliveryBatch:
    """All messages of one channel arriving at the same simulated instant.

    When a FIFO channel is backlogged, the arrival clamp below makes many
    messages share one arrival time.  Scheduling a single engine event that
    drains the whole batch (instead of one event per message) removes the
    dominant source of heap churn under load.  Per-channel FIFO order and
    arrival times are preserved exactly; what can differ from the unbatched
    schedule is the interleaving against *other* events at the same tick (a
    message joining an open batch fires at the batch's earlier sequence
    number).  Runs remain fully deterministic for a given seed, and the
    protocols only rely on per-channel ordering, not on cross-channel
    same-instant interleavings.
    """

    __slots__ = ("time", "sender", "destination", "messages", "closed")

    def __init__(self, time: float, sender: "Node", destination: "Node",
                 message: object, trace: Optional[str]) -> None:
        self.time = time
        self.sender = sender
        self.destination = destination
        self.messages = [(message, trace)]
        self.closed = False

    def deliver(self) -> None:
        # Close before draining: with a zero-latency model a handler can send
        # again at exactly this instant, and that message must get its own
        # delivery event rather than joining a batch that already fired.
        self.closed = True
        destination = self.destination
        sender = self.sender
        messages, self.messages = self.messages, []
        for message, trace in messages:
            destination.enqueue_message(sender, message, trace)


class LinkFault:
    """Mutable degradation state of one directed DC-to-DC link.

    Installed by the fault controller and consulted in the network send path.
    A *blocked* link holds messages (they are flushed in FIFO order when the
    link is unblocked — the channel stays reliable, like TCP across a
    partition).  A degraded link multiplies the base latency, adds a fixed
    extra delay, amplifies jitter and charges each probabilistic "drop" one
    redelivery timeout instead of losing the message.
    """

    __slots__ = ("latency_factor", "extra_us", "jitter_factor",
                 "drop_probability", "redelivery_timeout_us", "blocked")

    def __init__(self, *, latency_factor: float = 1.0, extra_us: float = 0.0,
                 jitter_factor: float = 1.0, drop_probability: float = 0.0,
                 redelivery_timeout_us: float = 2000.0,
                 blocked: bool = False) -> None:
        if latency_factor <= 0 or jitter_factor < 0:
            raise ConfigurationError("link degradation factors must be positive")
        if extra_us < 0 or redelivery_timeout_us < 0:
            raise ConfigurationError("link delays must be non-negative")
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {drop_probability}")
        self.latency_factor = latency_factor
        self.extra_us = extra_us
        self.jitter_factor = jitter_factor
        self.drop_probability = drop_probability
        self.redelivery_timeout_us = redelivery_timeout_us
        self.blocked = blocked


class Network:
    """Delivers messages between simulated nodes.

    Every message is delivered asynchronously after the one-way delay computed
    by the :class:`LatencyModel`; delivery enqueues the message at the
    destination node's CPU (see :class:`repro.sim.node.Node`).  Same-tick
    deliveries on one channel are batched into a single engine event.

    The fault controller may install per-link :class:`LinkFault` entries
    (keyed by the ``(sender DC, destination DC)`` pair); while none is
    installed the send path is exactly the healthy fast path, including its
    RNG draws, so scenario-free runs are bit-identical to a fault-free build.
    """

    def __init__(self, sim: Simulator,
                 latency: Optional[LatencyModel] = None) -> None:
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.stats = NetworkStats()
        self._rng = sim.derived_rng("network-jitter")
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._open_batches: dict[tuple[str, str], _DeliveryBatch] = {}
        # The latency model is frozen, so its terms can be flattened into the
        # per-send fast path below (``send`` runs once per simulated message).
        self._intra_us = self.latency.intra_dc_us
        self._inter_us = self.latency.inter_dc_us
        self._bandwidth = self.latency.bandwidth_bytes_per_us
        self._jitter_us = self.latency.jitter_us
        # Fault-injection state: empty (and RNG-free) on the healthy path.
        self._link_faults: dict[tuple[int, int], LinkFault] = {}
        self._held: dict[tuple[int, int],
                         list[tuple["Node", "Node", object, Optional[str]]]] = {}
        self._fault_rng: Optional["random.Random"] = None
        self.messages_dropped = 0

    def send(self, sender: "Node", destination: "Node", message: object) -> None:
        """Send ``message`` from ``sender`` to ``destination``.

        The message size is obtained from the message's ``size_bytes()``
        method when available, otherwise a small fixed header size is used.

        Delivery is FIFO per (sender, destination) pair, like the TCP
        connections the paper's implementation uses.  FIFO channels are what
        lets a partition advance its version vector when it receives a
        replicated update or heartbeat: everything earlier from that replica
        has already arrived.
        """
        size = self._message_size(message)
        same_dc = sender.dc_id == destination.dc_id
        self.stats.record(size, same_dc)
        # The message inherits the trace of whatever the sender is currently
        # serving (pure metadata: no RNG draws, no ordering changes, always
        # None with tracing disabled).
        trace = sender.current_trace
        if self._link_faults:
            fault = self._link_faults.get((sender.dc_id, destination.dc_id))
            if fault is not None:
                self._send_faulted(sender, destination, message, size, fault,
                                   trace)
                return
        # Inlined LatencyModel.one_way_delay (identical arithmetic).
        base = self._intra_us if same_dc else self._inter_us
        delay = microseconds(base + size / self._bandwidth
                             + self._jitter_us * self._rng.random())
        self._schedule_arrival(sender, destination, message, delay, trace)

    def _schedule_arrival(self, sender: "Node", destination: "Node",
                          message: object, delay: float,
                          trace: Optional[str] = None) -> None:
        """Clamp to per-channel FIFO order and schedule the delivery event."""
        channel = (sender.node_id, destination.node_id)
        arrival = max(self.sim.now + delay, self._last_delivery.get(channel, 0.0))
        self._last_delivery[channel] = arrival
        batch = self._open_batches.get(channel)
        if batch is not None and not batch.closed and batch.time == arrival:
            # The channel is backlogged and this message lands on the same
            # tick as the previous one: piggyback on its delivery event.
            batch.messages.append((message, trace))
            return
        batch = _DeliveryBatch(arrival, sender, destination, message, trace)
        self._open_batches[channel] = batch
        self.sim.call_at(arrival, batch.deliver,
                         label=f"deliver:{type(message).__name__}")

    # ------------------------------------------------------------ fault hooks
    def _send_faulted(self, sender: "Node", destination: "Node",
                      message: object, size: int, fault: LinkFault,
                      trace: Optional[str] = None) -> None:
        """Degraded send path: hold, delay, or "drop" (delay by redelivery)."""
        if fault.blocked:
            self._held.setdefault((sender.dc_id, destination.dc_id), []).append(
                (sender, destination, message, trace))
            return
        same_dc = sender.dc_id == destination.dc_id
        base = (self._intra_us if same_dc else self._inter_us) \
            * fault.latency_factor + fault.extra_us
        delay_us = (base + size / self._bandwidth
                    + self._jitter_us * fault.jitter_factor * self._rng.random())
        if fault.drop_probability > 0.0:
            rng = self._fault_rng
            if rng is None:
                rng = self._fault_rng = self.sim.derived_rng("network-faults")
            # Each "drop" is a retransmission after a timeout: the channel
            # stays reliable and FIFO (the protocols assume TCP), loss only
            # costs time.  Cap the geometric retry count defensively.
            retries = 0
            while retries < 16 and rng.random() < fault.drop_probability:
                retries += 1
            if retries:
                self.messages_dropped += retries
                delay_us += retries * fault.redelivery_timeout_us
        self._schedule_arrival(sender, destination, message,
                               microseconds(delay_us), trace)

    def set_link_fault(self, src_dc: int, dst_dc: int, **degradation: float) -> None:
        """Install (or replace) the degradation state of one directed link.

        A blocked link stays blocked: degrading a severed link must not
        release its held messages (they would leapfrog the messages already
        in flight and break per-channel FIFO order); only
        :meth:`unblock_link` / :meth:`clear_link_faults` flush them.
        """
        previous = self._link_faults.get((src_dc, dst_dc))
        fault = LinkFault(**degradation)
        if previous is not None and previous.blocked:
            fault.blocked = True
        self._link_faults[(src_dc, dst_dc)] = fault

    def block_link(self, src_dc: int, dst_dc: int) -> None:
        """Sever one directed link: messages are held until it is unblocked."""
        fault = self._link_faults.get((src_dc, dst_dc))
        if fault is None:
            fault = self._link_faults[(src_dc, dst_dc)] = LinkFault(blocked=True)
        else:
            fault.blocked = True

    def _healthy_delay(self, same_dc: bool, size: int) -> float:
        """One-way delay of a healthy link, in simulated seconds.

        Must stay arithmetically identical to the inlined fast path in
        :meth:`send` (which keeps its own copy because it runs once per
        simulated message).
        """
        base = self._intra_us if same_dc else self._inter_us
        return microseconds(base + size / self._bandwidth
                            + self._jitter_us * self._rng.random())

    def unblock_link(self, src_dc: int, dst_dc: int) -> None:
        """Restore one directed link and flush its held messages in order."""
        fault = self._link_faults.pop((src_dc, dst_dc), None)
        if fault is None:
            return
        for sender, destination, message, trace in self._held.pop(
                (src_dc, dst_dc), []):
            # Re-entering ``send`` would double-count stats; schedule with the
            # healthy delay directly (FIFO order is preserved by the clamp).
            delay = self._healthy_delay(sender.dc_id == destination.dc_id,
                                        self._message_size(message))
            self._schedule_arrival(sender, destination, message, delay, trace)

    def clear_link_faults(self) -> None:
        """Remove every link fault, flushing all held messages (heal)."""
        for src_dc, dst_dc in list(self._link_faults):
            self.unblock_link(src_dc, dst_dc)

    @property
    def held_message_count(self) -> int:
        """Messages currently held by blocked links (a fault gauge)."""
        return sum(len(held) for held in self._held.values())

    def send_local(self, node: "Node", message: object) -> None:
        """Deliver a message from a node to itself without network delay.

        Used when a coordinator partition also stores one of the keys of the
        ROT it is coordinating: the "message" never hits the wire but still
        costs CPU time to process.
        """
        node.enqueue_message(node, message, node.current_trace)

    @staticmethod
    def _message_size(message: object) -> int:
        size_fn = getattr(message, "size_bytes", None)
        if callable(size_fn):
            return int(size_fn())
        return 64


__all__ = ["LatencyModel", "LinkFault", "Network", "NetworkStats"]
