"""Simulated processes with a FIFO CPU queue.

Each server in the cluster is a :class:`Node` with a single logical CPU (a
configurable number of hardware threads is modelled as a processing-rate
multiplier).  Messages delivered by the network are queued; the CPU serves
them in FIFO order, charging each message the service time returned by the
node's :meth:`Node.service_time` hook.  Queueing at the CPU — not the network —
is what produces the latency inflation under load that the paper reports, and
what makes CC-LO's extra PUT work visible in ROT latencies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


@dataclass
class ProcessingStats:
    """Per-node counters describing CPU usage and queueing."""

    messages_processed: int = 0
    busy_time: float = 0.0
    total_queue_wait: float = 0.0
    max_queue_length: int = 0
    queue_samples: list[int] = field(default_factory=list)

    def utilization(self, elapsed: float) -> float:
        """Fraction of wall-clock (simulated) time the CPU was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def average_queue_wait(self) -> float:
        """Average time a message waited in the CPU queue before service."""
        if self.messages_processed == 0:
            return 0.0
        return self.total_queue_wait / self.messages_processed


class Node:
    """Base class for every simulated process (servers and clients).

    Subclasses implement :meth:`handle_message` (the protocol logic) and
    :meth:`service_time` (how much CPU the message costs).  Nodes are
    identified by a globally unique ``node_id`` and belong to a data center
    ``dc_id``.
    """

    def __init__(self, sim: Simulator, node_id: str, dc_id: int, *,
                 threads: int = 1) -> None:
        if threads < 1:
            raise ConfigurationError("a node needs at least one thread")
        self.sim = sim
        self.node_id = node_id
        self.dc_id = dc_id
        self.threads = threads
        self.stats = ProcessingStats()
        self._queue: Deque[Tuple[object, object, Optional[str], float]] = deque()
        self._busy = False
        self._serving: Optional[Tuple[object, object, Optional[str]]] = None
        #: Trace id of the message currently being served (observability
        #: metadata, see :mod:`repro.obs`); the network reads it at send
        #: time so outgoing messages inherit the trace of their cause.
        #: Always ``None`` when tracing is disabled.
        self.current_trace: Optional[str] = None
        # Fault-injection state (see repro.faults): a service-time multiplier
        # models a slow node, a paused node queues messages without serving.
        self._service_factor = 1.0
        self._paused = False

    # ------------------------------------------------------------------ queue
    def enqueue_message(self, sender: "Node", message: object,
                        trace: Optional[str] = None) -> None:
        """Called by the network when a message arrives at this node."""
        self._queue.append((sender, message, trace, self.sim.now))
        self.stats.max_queue_length = max(self.stats.max_queue_length,
                                          len(self._queue))
        if not self._busy and not self._paused:
            self._serve_next()

    def _serve_next(self) -> None:
        if self._paused or not self._queue:
            self._busy = False
            return
        self._busy = True
        sender, message, trace, enqueued_at = self._queue.popleft()
        stats = self.stats
        stats.total_queue_wait += self.sim.now - enqueued_at
        service = self.service_time(message) / self.threads
        if self._service_factor != 1.0:
            service *= self._service_factor
        stats.busy_time += service
        # One message is in service at a time (the busy flag serialises the
        # CPU), so the in-flight triple can live on the node instead of in a
        # per-message closure — this loop runs once per simulated message.
        self._serving = (sender, message, trace)
        self.sim.schedule(service, self._complete_serving,
                          label=type(message).__name__)

    def _complete_serving(self) -> None:
        sender, message, trace = self._serving  # type: ignore[misc]
        self._serving = None
        self.current_trace = trace
        self.stats.messages_processed += 1
        self.handle_message(sender, message)
        self._serve_next()

    # ----------------------------------------------------------------- faults
    def set_service_factor(self, factor: float) -> None:
        """Multiply every subsequent service time (1.0 restores health).

        Used by the fault controller to model slow nodes (thermal throttling,
        noisy neighbours); the inflated time also counts as busy time, so CPU
        utilisation reflects the degradation.
        """
        if factor <= 0:
            raise ConfigurationError(
                f"service factor must be positive, got {factor}")
        self._service_factor = factor

    def pause(self) -> None:
        """Freeze this node's CPU (a GC-stall-style pause).

        The message currently in service finishes; everything else queues
        until :meth:`resume`.
        """
        self._paused = True

    def resume(self) -> None:
        """Resume a paused CPU and start draining the backlog."""
        if not self._paused:
            return
        self._paused = False
        if not self._busy and self._queue:
            self._serve_next()

    @property
    def paused(self) -> bool:
        """Whether the CPU is currently frozen by a fault."""
        return self._paused

    # ------------------------------------------------------------------ hooks
    def service_time(self, message: object) -> float:
        """CPU time (simulated seconds) needed to process ``message``.

        The default charges nothing; servers override this with the cost
        model.  Clients keep the default because the paper's bottleneck is the
        servers, not the client machines.
        """
        return 0.0

    def handle_message(self, sender: "Node", message: object) -> None:
        """Protocol logic; subclasses must override."""
        raise NotImplementedError

    # ------------------------------------------------------------------ misc
    @property
    def queue_length(self) -> int:
        """Number of messages currently waiting for the CPU."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.node_id!r}, dc={self.dc_id})"


class DelayedCall:
    """A cancellable timer bound to a node (thin wrapper over the simulator).

    Protocol code uses this for retransmission-free timers such as the
    Cure blocking wait or the CC-LO reader garbage collection.
    """

    def __init__(self, node: Node, delay: float, callback, label: str = "timer") -> None:
        self._event = node.sim.schedule(delay, callback, label=label)

    def cancel(self) -> None:
        self._event.cancel()


__all__ = ["DelayedCall", "Node", "ProcessingStats"]
