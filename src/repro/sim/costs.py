"""CPU cost model for simulated servers.

The paper's central claim is about *resource usage*: the readers check that
COPS-SNOW (CC-LO) performs on every PUT consumes CPU cycles and network
bandwidth that grow with the number of clients, and at non-trivial load that
extra work translates into queueing delays for every operation, including the
ROTs the design was meant to favour.

To reproduce that dynamic the simulator charges every message handled by a
server an explicit CPU service time.  The cost model below decomposes the
service time into a fixed per-message cost plus per-key, per-byte and
per-ROT-id components, mirroring the marshalling/unmarshalling and list
processing work the paper attributes to each protocol.

The default constants are calibrated so that an 8-partition cluster saturates
in the hundreds of Kops/s, the same order of magnitude as the paper's
32-partition cluster; the absolute values are not meant to match the paper's
hardware, only to put the crossover points in a comparable regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.metrics.overheads import OverheadCounters
from repro.sim.engine import microseconds


@dataclass(frozen=True)
class CostModel:
    """CPU service-time parameters (all in microseconds unless noted).

    Attributes
    ----------
    base_message_us:
        Fixed cost of receiving, unmarshalling and dispatching any message.
    read_key_us:
        Cost of looking up one key in the version chain and preparing the
        response value.
    put_key_us:
        Cost of installing one new version (allocation, index update).
    coordinator_us:
        Cost of computing a snapshot vector at the ROT coordinator.
    per_byte_us:
        Marshalling/unmarshalling cost per payload byte (applies to values).
    per_dependency_us:
        Cost of processing one entry of a dependency list (CC-LO PUTs and
        replication messages).
    per_rot_id_us:
        Cost of recording, merging or scanning one ROT identifier during the
        readers check (CC-LO) or when filtering old readers on a read.
    readers_check_request_us:
        Fixed cost of issuing or serving one readers-check round-trip leg.
    stabilization_us:
        Cost of processing one stabilization (GSS exchange) message.
    replication_us:
        Fixed cost of applying one replicated update (on top of per-byte and
        per-dependency components).
    client_overhead_us:
        CPU time charged at the client for issuing/completing an operation.
        Clients are not the bottleneck in the paper, so this is small.
    """

    base_message_us: float = 6.0
    read_key_us: float = 4.0
    put_key_us: float = 7.0
    coordinator_us: float = 3.0
    per_byte_us: float = 0.002
    per_dependency_us: float = 0.35
    per_rot_id_us: float = 0.08
    readers_check_request_us: float = 4.0
    stabilization_us: float = 2.0
    replication_us: float = 5.0
    client_overhead_us: float = 1.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"cost parameter {name} must be >= 0, got {value}")

    def scaled(self, factor: float) -> "CostModel":
        """Return a cost model with every parameter multiplied by ``factor``.

        Scaling costs up makes simulated servers proportionally slower, which
        moves the saturation point to lower op counts.  The benchmark
        configuration uses this to keep full load sweeps affordable in pure
        Python while preserving every qualitative relationship between the
        protocols (the relative costs are unchanged).
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return CostModel(**{name: value * factor
                            for name, value in self.__dict__.items()})

    # Helpers return simulated seconds -------------------------------------
    def message_cost(self) -> float:
        """Fixed cost of handling a message."""
        return microseconds(self.base_message_us)

    def read_cost(self, num_keys: int, value_bytes: int) -> float:
        """Cost of serving a read of ``num_keys`` keys of ``value_bytes`` each."""
        return microseconds(self.read_key_us * num_keys
                            + self.per_byte_us * value_bytes * num_keys)

    def put_cost(self, value_bytes: int) -> float:
        """Cost of installing one new version of ``value_bytes`` bytes."""
        return microseconds(self.put_key_us + self.per_byte_us * value_bytes)

    def coordinator_cost(self, num_partitions: int) -> float:
        """Cost of computing a snapshot and fanning out to ``num_partitions``."""
        return microseconds(self.coordinator_us * max(1, num_partitions))

    def dependency_cost(self, num_dependencies: int) -> float:
        """Cost of processing a dependency list."""
        return microseconds(self.per_dependency_us * num_dependencies)

    def rot_id_cost(self, num_ids: int) -> float:
        """Cost of processing ``num_ids`` ROT identifiers (readers check)."""
        return microseconds(self.per_rot_id_us * num_ids)

    def readers_check_cost(self, num_ids: int) -> float:
        """Cost of one readers-check leg carrying ``num_ids`` identifiers."""
        return microseconds(self.readers_check_request_us) + self.rot_id_cost(num_ids)

    def stabilization_cost(self) -> float:
        """Cost of one stabilization-protocol message."""
        return microseconds(self.stabilization_us)

    def replication_cost(self, value_bytes: int, num_dependencies: int) -> float:
        """Cost of applying one replicated update."""
        return (microseconds(self.replication_us + self.per_byte_us * value_bytes)
                + self.dependency_cost(num_dependencies))

    def client_cost(self) -> float:
        """Client-side cost of issuing or completing an operation."""
        return microseconds(self.client_overhead_us)


__all__ = ["CostModel", "OverheadCounters"]
