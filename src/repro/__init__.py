"""repro — a reproduction of "Causal Consistency and Latency Optimality:
Friend or Foe?" (Didona, Guerraoui, Wang, Zwaenepoel — VLDB 2018).

The package contains:

* the **Contrarian** protocol (the paper's contribution) plus the **Cure**
  and **CC-LO / COPS-SNOW** baselines, implemented as sans-I/O protocol
  kernels (:mod:`repro.core`) that run on two interchangeable backends: a
  discrete-event simulation of a partitioned, optionally geo-replicated
  key-value store (:mod:`repro.sim`) and a real-time in-process asyncio
  runtime (:mod:`repro.runtime`);
* a workload generator and experiment harness that regenerate every table
  and figure of the paper's evaluation section; and
* an executable rendition of the paper's theoretical result (Theorem 1: the
  cost of latency-optimal ROTs grows linearly with the number of clients).

Quickstart::

    from repro import CausalStore

    store = CausalStore(protocol="contrarian")
    store.put("album:acl")
    store.put("album:photos")
    print(store.rot(["album:acl", "album:photos"]).values)

    # The same API served by real asyncio tasks on wall-clock time:
    with CausalStore(protocol="contrarian", backend="realtime") as store:
        store.put("album:acl")

    from repro.harness import run_experiment
    outcome = run_experiment("contrarian")
    print(outcome.result.as_row())

Load sweeps (one full simulation per load point) can be fanned out over
worker processes; the results are bit-identical to the serial sweep::

    from repro import parallel_load_sweep
    rows = parallel_load_sweep("contrarian", (4, 16, 48), max_workers=4)

Runs can execute deterministic fault scenarios (partitions, degraded links,
slow nodes, load spikes) with per-phase metrics and consistency checking::

    from repro import ClusterConfig, Scenario, run_experiment
    config = ClusterConfig.test_scale(num_dcs=2, duration_seconds=2.4,
                                      warmup_seconds=0.2)
    scenario = Scenario.at(0.8).partition_dc(1).at(1.6).heal()
    outcome = run_experiment("contrarian", config, scenario=scenario,
                             check_consistency=True)

Exports resolve lazily (PEP 562), so importing a sans-I/O kernel module —
e.g. ``repro.core.vector.kernel`` — never loads the simulator.
"""

from repro._lazy import make_lazy

__version__ = "1.1.0"

_EXPORTS = {
    "CausalStore": "repro.api",
    "ClusterConfig": "repro.cluster.config",
    "ConfigurationError": "repro.errors",
    "ConsistencyViolation": "repro.errors",
    "DEFAULT_WORKLOAD": "repro.workload.parameters",
    "FaultController": "repro.faults",
    "FaultEvent": "repro.faults",
    "OperationResult": "repro.api",
    "ParallelExecutionError": "repro.harness.parallel",
    "ParallelRunner": "repro.harness.parallel",
    "ProcessCluster": "repro.runtime.process",
    "ProtocolError": "repro.errors",
    "ReproError": "repro.errors",
    "RunResult": "repro.metrics.collectors",
    "RunSpec": "repro.harness.parallel",
    "Scenario": "repro.faults",
    "SimulationError": "repro.errors",
    "StorageError": "repro.errors",
    "TheoryError": "repro.errors",
    "TransportError": "repro.errors",
    "WireFormatError": "repro.errors",
    "WorkloadError": "repro.errors",
    "WorkloadParameters": "repro.workload.parameters",
    "derive_seed": "repro.harness.parallel",
    "get_scenario": "repro.faults",
    "load_sweep": "repro.harness.runner",
    "parallel_load_sweep": "repro.harness.parallel",
    "register_protocol": "repro.core.registry",
    "run_experiment": "repro.harness.runner",
    "run_realtime_experiment": "repro.runtime.experiment",
}

__all__ = sorted([*_EXPORTS, "__version__"])

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
