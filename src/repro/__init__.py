"""repro — a reproduction of "Causal Consistency and Latency Optimality:
Friend or Foe?" (Didona, Guerraoui, Wang, Zwaenepoel — VLDB 2018).

The package contains:

* the **Contrarian** protocol (the paper's contribution) plus the **Cure**
  and **CC-LO / COPS-SNOW** baselines, all running on a discrete-event
  simulation of a partitioned, optionally geo-replicated key-value store;
* a workload generator and experiment harness that regenerate every table
  and figure of the paper's evaluation section; and
* an executable rendition of the paper's theoretical result (Theorem 1: the
  cost of latency-optimal ROTs grows linearly with the number of clients).

Quickstart::

    from repro import CausalStore

    store = CausalStore(protocol="contrarian")
    store.put("album:acl")
    store.put("album:photos")
    print(store.rot(["album:acl", "album:photos"]).values)

    from repro.harness import run_experiment
    outcome = run_experiment("contrarian")
    print(outcome.result.as_row())

Load sweeps (one full simulation per load point) can be fanned out over
worker processes; the results are bit-identical to the serial sweep::

    from repro import parallel_load_sweep
    rows = parallel_load_sweep("contrarian", (4, 16, 48), max_workers=4)

Runs can execute deterministic fault scenarios (partitions, degraded links,
slow nodes, load spikes) with per-phase metrics and consistency checking::

    from repro import ClusterConfig, Scenario, run_experiment
    config = ClusterConfig.test_scale(num_dcs=2, duration_seconds=2.4,
                                      warmup_seconds=0.2)
    scenario = Scenario.at(0.8).partition_dc(1).at(1.6).heal()
    outcome = run_experiment("contrarian", config, scenario=scenario,
                             check_consistency=True)
"""

from repro.api import CausalStore, OperationResult
from repro.faults import FaultController, FaultEvent, Scenario, get_scenario
from repro.harness.parallel import (
    ParallelExecutionError,
    ParallelRunner,
    RunSpec,
    derive_seed,
    parallel_load_sweep,
)
from repro.harness.runner import load_sweep, run_experiment
from repro.cluster.config import ClusterConfig
from repro.errors import (
    ConfigurationError,
    ConsistencyViolation,
    ProtocolError,
    ReproError,
    SimulationError,
    StorageError,
    TheoryError,
    WorkloadError,
)
from repro.metrics.collectors import RunResult
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters

__version__ = "1.0.0"

__all__ = [
    "CausalStore",
    "ClusterConfig",
    "ConfigurationError",
    "ConsistencyViolation",
    "DEFAULT_WORKLOAD",
    "FaultController",
    "FaultEvent",
    "OperationResult",
    "ParallelExecutionError",
    "ParallelRunner",
    "ProtocolError",
    "ReproError",
    "RunResult",
    "RunSpec",
    "Scenario",
    "SimulationError",
    "StorageError",
    "TheoryError",
    "WorkloadError",
    "WorkloadParameters",
    "__version__",
    "derive_seed",
    "get_scenario",
    "load_sweep",
    "parallel_load_sweep",
    "run_experiment",
]
