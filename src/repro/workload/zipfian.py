"""Zipfian key-popularity sampling.

The paper draws keys within a partition from a zipfian distribution with
parameter ``z`` (0.99 by default, the YCSB "strong skew" setting; 0 means
uniform).  The sampler below uses the classic YCSB approach (Gray et al.'s
"Quickly generating billion-record synthetic databases" formula): constant-time
sampling after a one-off O(n) computation of the generalised harmonic number.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from functools import lru_cache

from repro.errors import WorkloadError


@lru_cache(maxsize=256)
def _cached_zeta(n: int, theta: float) -> float:
    """Generalised harmonic number ``sum_{i=1..n} 1/i^theta``.

    Every client of a run builds its own sampler over the same
    ``(keys_per_partition, skew)`` point, and a load sweep repeats that for
    every point, so the O(n) zeta computation used to dominate cluster
    construction.  The cache is keyed on the exact ``(n, theta)`` pair and
    shared across samplers, runs and worker processes' lifetimes.
    """
    return sum(1.0 / (i ** theta) for i in range(1, n + 1))


@lru_cache(maxsize=64)
def _harmonic_cdf(n: int) -> tuple[float, ...]:
    """Cumulative harmonic sums ``H_1..H_n`` for the ``theta == 1`` skew.

    Sampling for the harmonic case inverts the CDF; precomputing the
    cumulative sums once per ``n`` turns every draw from an O(n) linear scan
    into an O(log n) bisect.
    """
    sums = []
    cumulative = 0.0
    for index in range(n):
        cumulative += 1.0 / (index + 1)
        sums.append(cumulative)
    return tuple(sums)


class ZipfianSampler:
    """Samples integers in ``[0, num_items)`` with zipfian popularity.

    Item 0 is the most popular.  A ``skew`` of 0 degenerates to the uniform
    distribution (and skips the harmonic-number computation entirely).
    """

    def __init__(self, num_items: int, skew: float, rng: random.Random) -> None:
        if num_items < 1:
            raise WorkloadError(f"num_items must be >= 1, got {num_items}")
        if skew < 0:
            raise WorkloadError(f"skew must be >= 0, got {skew}")
        self._num_items = num_items
        self._skew = skew
        self._rng = rng
        if skew > 0 and num_items > 1:
            self._zetan = self._zeta(num_items, skew)
            self._theta = skew
            self._alpha = 1.0 / (1.0 - skew) if skew != 1.0 else float("inf")
            self._zeta2 = self._zeta(2, skew)
            self._cdf = _harmonic_cdf(num_items) if skew == 1.0 else ()
            if skew == 1.0 or num_items <= 2:
                # The eta shortcut degenerates for two items (zeta2 == zetan)
                # and for skew exactly 1; those cases use inverse-CDF sampling.
                self._eta = 0.0
            else:
                self._eta = ((1.0 - (2.0 / num_items) ** (1.0 - skew))
                             / (1.0 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        """Generalised harmonic number (cached module-wide, see above)."""
        return _cached_zeta(n, theta)

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def skew(self) -> float:
        return self._skew

    def sample(self) -> int:
        """Draw one item index."""
        if self._skew == 0 or self._num_items == 1:
            return self._rng.randrange(self._num_items)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return 1
        if self._theta == 1.0:
            # Harmonic case: invert the precomputed CDF with a bisect.  The
            # old linear scan gave the first index with H_{i+1} >= target;
            # bisect_left on the same cumulative sums returns it in O(log n).
            index = bisect_left(self._cdf, u * self._zetan)
            return min(index, self._num_items - 1)
        value = int(self._num_items
                    * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return min(max(value, 0), self._num_items - 1)

    def sample_distinct(self, count: int) -> list[int]:
        """Draw ``count`` distinct item indices (used for multi-key ROTs)."""
        if count > self._num_items:
            raise WorkloadError(
                f"cannot draw {count} distinct items from {self._num_items}")
        seen: set[int] = set()
        while len(seen) < count:
            seen.add(self.sample())
        return sorted(seen)

    def probability_of(self, index: int) -> float:
        """Theoretical probability of drawing ``index`` (for tests)."""
        if not 0 <= index < self._num_items:
            raise WorkloadError(f"index {index} out of range")
        if self._skew == 0 or self._num_items == 1:
            return 1.0 / self._num_items
        return (1.0 / ((index + 1) ** self._skew)) / self._zetan


def expected_head_mass(num_items: int, skew: float, head: int) -> float:
    """Probability mass of the ``head`` most popular items (analysis helper)."""
    if skew == 0:
        return min(1.0, head / num_items)
    total = sum(1.0 / (i ** skew) for i in range(1, num_items + 1))
    head_sum = sum(1.0 / (i ** skew) for i in range(1, min(head, num_items) + 1))
    return head_sum / total


__all__ = ["ZipfianSampler", "expected_head_mass"]
