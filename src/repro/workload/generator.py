"""Per-client operation generation.

Each closed-loop client owns a :class:`WorkloadGenerator` seeded independently
so clients issue independent streams.  The generator reproduces the paper's
workload model (Section 5.2):

* with probability derived from the write/read ratio ``w`` the next operation
  is a PUT of one key, otherwise it is a ROT;
* a ROT spans ``p`` partitions chosen uniformly at random and reads exactly
  one key per chosen partition;
* within a partition the key is drawn from a zipfian distribution with
  parameter ``z``;
* values are opaque payloads of ``b`` bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.partitioning import HashPartitioner
from repro.errors import WorkloadError
from repro.workload.parameters import WorkloadParameters
from repro.workload.zipfian import ZipfianSampler


@dataclass(frozen=True)
class Operation:
    """One client operation: either a PUT of one key or a ROT over many."""

    kind: str  # "put" or "rot"
    keys: tuple[str, ...]
    value_size: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("put", "rot"):
            raise WorkloadError(f"unknown operation kind {self.kind!r}")
        if not self.keys:
            raise WorkloadError("an operation needs at least one key")
        if self.kind == "put" and len(self.keys) != 1:
            raise WorkloadError("a PUT targets exactly one key")

    @property
    def is_put(self) -> bool:
        return self.kind == "put"

    @property
    def is_rot(self) -> bool:
        return self.kind == "rot"


class WorkloadGenerator:
    """Generates the operation stream for one client."""

    def __init__(self, parameters: WorkloadParameters,
                 partitioner: HashPartitioner,
                 keys_per_partition: int,
                 rng: random.Random) -> None:
        if parameters.rot_size > partitioner.num_partitions:
            raise WorkloadError(
                f"ROT size {parameters.rot_size} exceeds the number of "
                f"partitions {partitioner.num_partitions}")
        self.parameters = parameters
        self._partitioner = partitioner
        self._keys_per_partition = keys_per_partition
        self._rng = rng
        self._key_sampler = ZipfianSampler(keys_per_partition, parameters.skew, rng)
        self._put_probability = parameters.put_probability
        self._key_offset = 0
        self.generated_puts = 0
        self.generated_rots = 0

    # ---------------------------------------------------------- phase changes
    def set_parameters(self, parameters: WorkloadParameters) -> None:
        """Switch to a new workload point mid-run (scenario-driven shift).

        The zipfian sampler is rebuilt only when the skew changes, so shifts
        of the write ratio or value size do not perturb the key-draw stream.
        """
        if parameters.rot_size > self._partitioner.num_partitions:
            raise WorkloadError(
                f"ROT size {parameters.rot_size} exceeds the number of "
                f"partitions {self._partitioner.num_partitions}")
        if parameters.skew != self.parameters.skew:
            self._key_sampler = ZipfianSampler(self._keys_per_partition,
                                               parameters.skew, self._rng)
        self.parameters = parameters
        self._put_probability = parameters.put_probability

    def rotate_keys(self, offset: int) -> None:
        """Shift the key popularity mapping by ``offset`` positions.

        Models hot-key churn: the zipfian ranks stay the same but map to
        different keys, so previously cold keys become the new hot set.
        """
        self._key_offset = (self._key_offset + offset) % self._keys_per_partition

    # ------------------------------------------------------------------ keys
    def _key_on_partition(self, partition: int) -> str:
        index = self._key_sampler.sample()
        if self._key_offset:
            index = (index + self._key_offset) % self._keys_per_partition
        return HashPartitioner.structured_key(partition, index)

    def _choose_partitions(self, count: int) -> list[int]:
        return self._rng.sample(range(self._partitioner.num_partitions), count)

    # ------------------------------------------------------------- operations
    def next_operation(self) -> Operation:
        """Draw the next operation for the owning client."""
        if self._rng.random() < self._put_probability:
            self.generated_puts += 1
            partition = self._choose_partitions(1)[0]
            return Operation(kind="put",
                             keys=(self._key_on_partition(partition),),
                             value_size=self.parameters.value_size)
        self.generated_rots += 1
        partitions = self._choose_partitions(self.parameters.rot_size)
        keys = tuple(self._key_on_partition(partition) for partition in partitions)
        return Operation(kind="rot", keys=keys,
                         value_size=self.parameters.value_size)

    def preload_versions(self, partition: int, count: int) -> list[str]:
        """Keys to preload on ``partition`` before the run starts."""
        limit = min(count, self._keys_per_partition)
        return [HashPartitioner.structured_key(partition, index)
                for index in range(limit)]

    @property
    def put_fraction_generated(self) -> float:
        """Observed fraction of PUTs among generated operations (diagnostics)."""
        total = self.generated_puts + self.generated_rots
        if total == 0:
            return 0.0
        return self.generated_puts / total


__all__ = ["Operation", "WorkloadGenerator"]
