"""Workload parameters from Table 1 of the paper.

The evaluation varies four knobs:

=====================  =====================================  ===============
Parameter              Definition                              Values
=====================  =====================================  ===============
Write/read ratio ``w``  #PUTs / (#PUTs + #individual reads)    0.01, 0.05, 0.1
Size of a ROT ``p``     partitions involved in a ROT           4, 8, 24
Size of values ``b``    value size in bytes (keys are 8 B)     8, 128, 2048
Skew ``z``              zipfian parameter of key popularity    0.99, 0.8, 0
=====================  =====================================  ===============

The default workload (bold in the paper's Table 1) is ``w=0.05``, ``z=0.99``,
``p=4``, ``b=8``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError

#: The parameter grids from Table 1.
WRITE_RATIOS: tuple[float, ...] = (0.01, 0.05, 0.1)
ROT_SIZES: tuple[int, ...] = (4, 8, 24)
VALUE_SIZES: tuple[int, ...] = (8, 128, 2048)
SKEWS: tuple[float, ...] = (0.99, 0.8, 0.0)

#: Fixed key size in bytes (Table 1: "Keys take 8 bytes").
KEY_SIZE_BYTES = 8


@dataclass(frozen=True)
class WorkloadParameters:
    """One point in the Table-1 parameter space.

    Attributes
    ----------
    write_ratio:
        ``w`` — the fraction of PUTs among all individual operations, where a
        ROT reading ``k`` keys counts as ``k`` reads (the paper's definition).
    rot_size:
        ``p`` — number of partitions a ROT spans (one key per partition).
    value_size:
        ``b`` — value size in bytes.
    skew:
        ``z`` — zipfian parameter of key popularity within a partition
        (0 means uniform).
    """

    write_ratio: float = 0.05
    rot_size: int = 4
    value_size: int = 8
    skew: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_ratio <= 1.0:
            raise WorkloadError(f"write_ratio must be in [0, 1], got {self.write_ratio}")
        if self.rot_size < 1:
            raise WorkloadError(f"rot_size must be >= 1, got {self.rot_size}")
        if self.value_size < 1:
            raise WorkloadError(f"value_size must be >= 1, got {self.value_size}")
        if self.skew < 0:
            raise WorkloadError(f"skew must be >= 0, got {self.skew}")

    @property
    def put_probability(self) -> float:
        """Probability that the next client operation is a PUT.

        ``w`` is defined over *individual reads*: a ROT of ``p`` keys counts
        as ``p`` reads.  If a client issues a PUT with probability ``q`` and a
        ROT otherwise, then ``w = q / (q + (1-q)*p)``, so
        ``q = w*p / (1 - w + w*p)``.
        """
        w, p = self.write_ratio, self.rot_size
        if w == 0.0:
            return 0.0
        return (w * p) / (1.0 - w + w * p)

    def with_changes(self, **changes: object) -> "WorkloadParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        return (f"w={self.write_ratio} p={self.rot_size} "
                f"b={self.value_size}B z={self.skew}")


#: The paper's default workload (bold values in Table 1).
DEFAULT_WORKLOAD = WorkloadParameters()


def table1_grid() -> list[WorkloadParameters]:
    """All single-axis variations of the default workload used in Section 5."""
    points: list[WorkloadParameters] = [DEFAULT_WORKLOAD]
    for w in WRITE_RATIOS:
        if w != DEFAULT_WORKLOAD.write_ratio:
            points.append(DEFAULT_WORKLOAD.with_changes(write_ratio=w))
    for p in ROT_SIZES:
        if p != DEFAULT_WORKLOAD.rot_size:
            points.append(DEFAULT_WORKLOAD.with_changes(rot_size=p))
    for b in VALUE_SIZES:
        if b != DEFAULT_WORKLOAD.value_size:
            points.append(DEFAULT_WORKLOAD.with_changes(value_size=b))
    for z in SKEWS:
        if z != DEFAULT_WORKLOAD.skew:
            points.append(DEFAULT_WORKLOAD.with_changes(skew=z))
    return points


__all__ = [
    "DEFAULT_WORKLOAD",
    "KEY_SIZE_BYTES",
    "ROT_SIZES",
    "SKEWS",
    "VALUE_SIZES",
    "WRITE_RATIOS",
    "WorkloadParameters",
    "table1_grid",
]
