"""Workload generation: Table-1 parameters, zipfian sampling, operation mix."""

from repro.workload.generator import Operation, WorkloadGenerator
from repro.workload.parameters import (
    DEFAULT_WORKLOAD,
    ROT_SIZES,
    SKEWS,
    VALUE_SIZES,
    WRITE_RATIOS,
    WorkloadParameters,
)
from repro.workload.zipfian import ZipfianSampler

__all__ = [
    "DEFAULT_WORKLOAD",
    "Operation",
    "ROT_SIZES",
    "SKEWS",
    "VALUE_SIZES",
    "WRITE_RATIOS",
    "WorkloadGenerator",
    "WorkloadParameters",
    "ZipfianSampler",
]
