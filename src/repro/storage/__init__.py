"""Multi-version key-value storage used by every partition server."""

from repro.storage.mvstore import MultiVersionStore
from repro.storage.version import Version

__all__ = ["MultiVersionStore", "Version"]
