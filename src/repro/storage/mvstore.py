"""Per-partition multi-version store.

Every partition server owns one :class:`MultiVersionStore`.  Versions of the
same key are kept in a list ordered by insertion; reads walk the list from the
newest version backwards applying a protocol-supplied predicate (snapshot
membership, visibility, old-reader exclusion).

The store also implements the simple version garbage collection every real CC
store needs: keep at most ``max_versions_per_key`` versions per key (the
newest ones), never collecting the most recent visible version.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.errors import StorageError
from repro.storage.version import Version

#: Predicate deciding whether a version may be returned for a given read.
VersionPredicate = Callable[[Version], bool]

#: Retention policy: given a key's version chain (oldest first) and the
#: number of versions the cap would trim, return how many may actually go.
RetentionPolicy = Callable[[list[Version], int], int]


class MultiVersionStore:
    """A multi-version key-value store for one partition."""

    def __init__(self, max_versions_per_key: int = 32) -> None:
        if max_versions_per_key < 1:
            raise StorageError("max_versions_per_key must be at least 1")
        self._chains: dict[str, list[Version]] = {}
        self._max_versions = max_versions_per_key
        self._retention_policy: Optional[RetentionPolicy] = None
        self.puts_applied = 0
        self.versions_collected = 0

    # ----------------------------------------------------------------- writes
    def install(self, version: Version) -> Version:
        """Install a new version of ``version.key`` and return it."""
        chain = self._chains.setdefault(version.key, [])
        chain.append(version)
        self.puts_applied += 1
        if len(chain) > self._max_versions:
            self._collect(chain)
        return version

    def set_retention_policy(self, policy: Optional[RetentionPolicy]) -> None:
        """Constrain version collection (stable-snapshot / active-reader GC).

        The policy receives the chain (oldest first) and the trim the cap
        asks for, and returns how many of the oldest versions may really be
        collected — real causal stores gate version GC on the stable snapshot
        and the oldest active read.  This matters under faults: a partition
        freezes the stable snapshot (and a draining post-heal backlog keeps
        it stale) while writes keep truncating hot-key chains, so
        unconstrained eviction would leave in-flight snapshots with nothing
        to read.  Chains may then temporarily exceed the cap, exactly like a
        real store's version GC stalling during a partition.  The fault
        controller installs protocol-appropriate policies; scenario-free
        runs never set one, so their eviction behaviour is unchanged.
        """
        self._retention_policy = policy

    def _collect(self, chain: list[Version]) -> None:
        """Trim the oldest versions beyond the retention limit."""
        excess = len(chain) - self._max_versions
        if excess <= 0:
            return
        if self._retention_policy is not None:
            excess = self._retention_policy(chain, excess)
            if excess <= 0:
                return
        del chain[:excess]
        self.versions_collected += excess

    # ------------------------------------------------------------------ reads
    def latest(self, key: str,
               predicate: Optional[VersionPredicate] = None) -> Optional[Version]:
        """Return the newest version of ``key`` satisfying ``predicate``.

        Returns ``None`` when the key does not exist or no version satisfies
        the predicate (the protocol decides how to surface that: the paper's
        API returns the bottom value in that case).
        """
        chain = self._chains.get(key)
        if not chain:
            return None
        if predicate is None:
            return chain[-1]
        for version in reversed(chain):
            if predicate(version):
                return version
        return None

    def latest_visible(self, key: str) -> Optional[Version]:
        """Return the newest visible version of ``key``."""
        return self.latest(key, lambda v: v.is_visible())

    def versions(self, key: str) -> tuple[Version, ...]:
        """All retained versions of ``key``, oldest first."""
        return tuple(self._chains.get(key, ()))

    def keys(self) -> Iterator[str]:
        """Iterate over all keys with at least one retained version."""
        return iter(self._chains.keys())

    def contains(self, key: str) -> bool:
        """Whether at least one version of ``key`` is stored."""
        return key in self._chains

    def version_count(self, key: Optional[str] = None) -> int:
        """Number of retained versions, for one key or in total."""
        if key is not None:
            return len(self._chains.get(key, ()))
        return sum(len(chain) for chain in self._chains.values())

    # ---------------------------------------------------------------- preload
    def preload(self, versions: Iterable[Version]) -> None:
        """Bulk-install initial versions without counting them as PUTs.

        The harness uses this to populate the store before a run, mirroring
        the paper's 1M-keys-per-partition preloading step.
        """
        for version in versions:
            chain = self._chains.setdefault(version.key, [])
            chain.append(version)

    def __len__(self) -> int:
        return len(self._chains)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MultiVersionStore(keys={len(self._chains)}, "
                f"versions={self.version_count()})")


__all__ = ["MultiVersionStore", "RetentionPolicy", "VersionPredicate"]
