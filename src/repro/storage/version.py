"""Item versions stored by partitions.

The system model (Section 2.1) is a multi-version key-value store: a PUT on
key ``x`` creates a new version ``X`` rather than overwriting the previous
one, and ROTs pick, per key, the version that belongs to the requested
causally consistent snapshot.

A single :class:`Version` class serves all three protocols; protocol-specific
metadata is carried in optional fields:

* ``dependency_vector`` — used by Contrarian and Cure (one entry per DC);
* ``dependencies`` — explicit dependency list (key, timestamp) pairs used by
  CC-LO / COPS-SNOW;
* ``old_readers`` — the CC-LO old-reader record attached to the version
  during the readers check: ROT ids that must **not** observe this version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Version:
    """One version of one key.

    Attributes
    ----------
    key:
        The key this version belongs to.
    value:
        The stored value.  For workload-driven runs this is an opaque payload
        whose only relevant property is its size.
    timestamp:
        The version's creation timestamp in the protocol's clock domain
        (Lamport value, packed HLC, or physical microseconds).
    origin_dc:
        Index of the data center where the PUT was originally executed.
    size_bytes:
        Size of the value, charged by the network and CPU cost models.
    dependency_vector:
        Per-DC dependency vector (Contrarian / Cure).  ``None`` for CC-LO.
    dependencies:
        Explicit dependency list for CC-LO: a tuple of ``(key, timestamp)``
        pairs the writing client had observed.
    dependency_origins:
        Origin DC of each dependency, aligned with ``dependencies`` (CC-LO
        only; needed by the remote dependency check).
    old_readers:
        CC-LO old-reader record: maps ROT id -> logical read time for the
        transactions that read an older version of some causal dependency and
        therefore must not be served this version.
    visible:
        Whether the version may be returned to clients.  CC-LO keeps a version
        invisible until its readers check (and, remotely, dependency check)
        completes; Contrarian/Cure decide visibility of remote versions via
        the GSS instead and keep local versions always visible.
    created_at:
        Simulated time at which the version was installed (used for
        garbage-collection policies and freshness statistics).
    writer:
        Identifier of the client that issued the PUT (used by the causal
        consistency checker to reconstruct session order).
    sequence:
        Per-client sequence number of the PUT (checker bookkeeping).
    """

    key: str
    value: object
    timestamp: int
    origin_dc: int = 0
    size_bytes: int = 8
    dependency_vector: Optional[tuple[int, ...]] = None
    dependencies: tuple[tuple[str, int], ...] = ()
    dependency_origins: tuple[int, ...] = ()
    old_readers: dict[str, int] = field(default_factory=dict)
    visible: bool = True
    created_at: float = 0.0
    writer: str = ""
    sequence: int = 0

    def is_visible(self) -> bool:
        """Whether the version may currently be returned to clients."""
        return self.visible

    def excludes_reader(self, rot_id: str) -> bool:
        """CC-LO: whether ``rot_id`` is an old reader barred from this version."""
        return rot_id in self.old_readers

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Version(key={self.key!r}, ts={self.timestamp}, "
                f"dc={self.origin_dc}, visible={self.visible})")


__all__ = ["Version"]
