"""Theoretical results of the paper (Section 6).

Theorem 1 states that any causally consistent system with latency-optimal
ROTs must, before every *dangerous* PUT completes, exchange information whose
worst-case size grows linearly with the number of clients.  This package
provides:

* :mod:`repro.theory.executions` — an executable rendition of the proof's
  construction: the set of executions ``E`` indexed by the subset of clients
  that issue the ROT, the indistinguishability argument of Lemma 1, and the
  execution ``E*`` in which a protocol that does not communicate readers
  returns a causally inconsistent snapshot (the straw-man Lamport-clock
  implementation of the paper's final remark).
* :mod:`repro.theory.lower_bound` — the counting argument of Lemma 2: with
  ``|D|`` potential readers there are ``2^|D|`` executions that must all
  induce different communication, so at least ``|D|`` bits must flow in the
  worst case; plus helpers to compare the bound against the overhead measured
  in the CC-LO simulation.
"""

from repro.theory.executions import (
    ExecutionOutcome,
    LamportOnlyProtocol,
    ReaderTrackingProtocol,
    build_execution,
    communication_signature,
    find_causal_violation,
    lemma1_holds,
)
from repro.theory.lower_bound import (
    executions_count,
    lower_bound_bits,
    measured_bits_per_dangerous_put,
    verify_bound_against_measurement,
)

__all__ = [
    "ExecutionOutcome",
    "LamportOnlyProtocol",
    "ReaderTrackingProtocol",
    "build_execution",
    "communication_signature",
    "executions_count",
    "find_causal_violation",
    "lemma1_holds",
    "lower_bound_bits",
    "measured_bits_per_dangerous_put",
    "verify_bound_against_measurement",
]
