"""The counting argument of Lemma 2 and its empirical counterpart.

Lemma 2: index the executions of ``E`` by the subset ``R`` of the ``|D|``
potential readers; there are ``2^|D|`` of them, and by Lemma 1 each must
induce a different inter-partition communication string before ``PUT(y, Y1)``
completes.  A set of ``2^|D|`` distinct strings cannot all be shorter than
``|D|`` bits, so in at least one execution the communication carries at least
``log2(2^|D|) = |D|`` bits — linear in the number of clients.

The module also links the bound back to the measurements: the CC-LO
simulation reports how many ROT identifiers a readers check collects
(Figure 6); converting them to bits gives the measured communication that
Theorem 1 says cannot be avoided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TheoryError
from repro.metrics.collectors import RunResult

#: Wire size of one ROT identifier in the CC-LO implementation (8 bytes).
ROT_ID_BITS = 64


def executions_count(num_clients: int) -> int:
    """Number of executions in the set ``E`` (``2^|D|``)."""
    if num_clients < 0:
        raise TheoryError("the number of clients cannot be negative")
    return 2 ** num_clients


def lower_bound_bits(num_clients: int) -> int:
    """Worst-case communication (bits) required before a dangerous PUT completes.

    This is the ``L(|D|)`` of Lemma 2: linear in the number of potential
    readers, i.e. in the number of clients.
    """
    if num_clients < 0:
        raise TheoryError("the number of clients cannot be negative")
    return num_clients


def measured_bits_per_dangerous_put(result: RunResult) -> float:
    """Average bits of reader identifiers exchanged per readers check.

    Every PUT whose dependencies have been read (the common case in the
    paper's workloads) is dangerous in the sense of Theorem 1, and in CC-LO
    its readers check carries ``distinct ids x 64`` bits of reader identity.
    """
    return result.overhead.average_distinct_ids_per_check() * ROT_ID_BITS


@dataclass(frozen=True)
class BoundComparison:
    """Comparison of the theoretical bound with a measured run."""

    clients: int
    lower_bound_bits: int
    measured_bits: float

    @property
    def measured_exceeds_bound(self) -> bool:
        """Whether the measured communication is at least the lower bound."""
        return self.measured_bits >= self.lower_bound_bits

    @property
    def ratio(self) -> float:
        """Measured bits divided by the bound (>= 1 for a correct LO system)."""
        if self.lower_bound_bits == 0:
            return float("inf") if self.measured_bits > 0 else 1.0
        return self.measured_bits / self.lower_bound_bits


def verify_bound_against_measurement(result: RunResult) -> BoundComparison:
    """Compare a measured CC-LO run against the Lemma 2 lower bound."""
    return BoundComparison(
        clients=result.clients,
        lower_bound_bits=lower_bound_bits(result.clients),
        measured_bits=measured_bits_per_dangerous_put(result))


__all__ = [
    "BoundComparison",
    "ROT_ID_BITS",
    "executions_count",
    "lower_bound_bits",
    "measured_bits_per_dangerous_put",
    "verify_bound_against_measurement",
]
