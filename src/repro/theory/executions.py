"""Executable rendition of the Theorem 1 proof construction (Section 6.3).

The proof considers two keys ``x`` and ``y`` on different partitions ``px``
and ``py``, a writer client ``cw`` that issues
``PUT(x, X0); PUT(y, Y0); PUT(x, X1); PUT(y, Y1)`` (each after the previous
one completed, so ``X0 ; X1 ; Y1``), and a set ``D`` of potential reader
clients.  For every subset ``R`` of ``D`` an execution ``E(R)`` is built in
which exactly the clients in ``R`` issue ``ROT({x, y})`` at the same time
``t1``, with both reads arriving at ``t2``, *before* ``PUT(x, X1)`` is
issued.

Lemma 1 says that for a correct latency-optimal protocol, different subsets
``R`` must lead to different inter-partition communication before
``PUT(y, Y1)`` completes — otherwise one can build an execution ``E*`` in
which an old reader's delayed read of ``y`` returns ``Y1`` while its read of
``x`` returned ``X0``, a causally inconsistent snapshot.

This module makes that argument executable with two toy protocols on an
abstract two-partition system:

* :class:`ReaderTrackingProtocol` — communicates the identities of (old)
  readers from ``px`` to ``py`` (the COPS-SNOW behaviour).  Lemma 1 holds:
  the communication signature differs for every subset of readers, and no
  execution produces an inconsistent snapshot.
* :class:`LamportOnlyProtocol` — the straw-man of the paper's final remark:
  only a Lamport timestamp is communicated.  Different subsets of readers can
  produce identical communication, and the ``E*`` construction yields the
  snapshot ``(X0, Y1)``, violating causal consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.errors import TheoryError

#: Version labels used throughout the construction.
X0, X1, Y0, Y1 = "X0", "X1", "Y0", "Y1"


@dataclass(frozen=True)
class ExecutionOutcome:
    """The observable outcome of one constructed execution.

    Attributes
    ----------
    readers:
        The subset ``R`` of clients that issued ``ROT({x, y})`` at ``t1``.
    signature:
        Concatenation of the messages ``px``/``py`` exchange before
        ``PUT(y, Y1)`` completes (Lemma 1's ``str_i``).
    late_read_results:
        For each client whose read of ``y`` is delayed past the completion of
        ``PUT(y, Y1)`` (the ``E*`` schedule), the snapshot ``(x-version,
        y-version)`` it ends up observing.
    """

    readers: frozenset[str]
    signature: tuple[str, ...]
    late_read_results: dict[str, tuple[str, str]]

    def violates_causal_consistency(self) -> bool:
        """Whether any client observed the forbidden snapshot ``(X0, Y1)``."""
        return any(result == (X0, Y1)
                   for result in self.late_read_results.values())


class RotProtocolModel(Protocol):
    """Interface of the toy protocols used by the construction."""

    name: str

    def readers_check_payload(self, old_readers: Sequence[str]) -> tuple[str, ...]:
        """Messages sent from ``px`` to ``py`` when ``y`` is overwritten."""
        ...

    def y_read_result(self, client: str, payload: tuple[str, ...]) -> str:
        """Version of ``y`` returned to a delayed read by ``client``."""
        ...


class ReaderTrackingProtocol:
    """COPS-SNOW-like protocol: the readers check ships reader identities."""

    name = "reader-tracking"

    def readers_check_payload(self, old_readers: Sequence[str]) -> tuple[str, ...]:
        """One message listing every old reader of ``x`` (sorted, explicit)."""
        return tuple(f"old-reader:{client}" for client in sorted(old_readers))

    def y_read_result(self, client: str, payload: tuple[str, ...]) -> str:
        """Return the old version to clients named in the payload."""
        if f"old-reader:{client}" in payload:
            return Y0
        return Y1


class LamportOnlyProtocol:
    """Straw-man protocol: only a Lamport timestamp crosses partitions."""

    name = "lamport-only"

    def readers_check_payload(self, old_readers: Sequence[str]) -> tuple[str, ...]:
        """A single timestamp whose value is the number of reads seen so far.

        The number of increments is bounded by the number of ROTs, so many
        different subsets of readers map to the same payload — exactly the
        pigeonhole collision the proof of Lemma 1 exploits.
        """
        return (f"timestamp:{len(old_readers)}",)

    def y_read_result(self, client: str, payload: tuple[str, ...]) -> str:
        """Without reader identities ``py`` cannot tell old readers apart."""
        del client, payload
        return Y1


def build_execution(protocol: RotProtocolModel, readers: Iterable[str],
                    delayed_readers: Iterable[str] = ()) -> ExecutionOutcome:
    """Construct one execution of the Section 6.3 scenario.

    Parameters
    ----------
    protocol:
        The toy protocol deciding what crosses the ``px`` -> ``py`` link.
    readers:
        The subset ``R`` of clients issuing ``ROT({x, y})`` at ``t1``; their
        read of ``x`` returns ``X0`` and is recorded by ``px`` before
        ``PUT(x, X1)`` is issued.
    delayed_readers:
        Clients whose read of ``y`` is postponed until after ``PUT(y, Y1)``
        completes (the ``E*`` schedule).  They must be a subset of
        ``readers``.
    """
    reader_set = frozenset(readers)
    delayed = frozenset(delayed_readers)
    if not delayed.issubset(reader_set):
        raise TheoryError("delayed readers must be a subset of the readers")
    # t1/t2: every reader's read of x reaches px and returns X0; px records
    # them.  PUT(x, X1) then makes every one of them an old reader of x.
    old_readers_of_x = sorted(reader_set)
    # PUT(y, Y1) declares its dependency on X1; before it completes, px and
    # py exchange whatever the protocol prescribes.
    signature = protocol.readers_check_payload(old_readers_of_x)
    # E* schedule: the delayed readers' reads of y arrive after Y1 is visible.
    late_results = {client: (X0, protocol.y_read_result(client, signature))
                    for client in sorted(delayed)}
    return ExecutionOutcome(readers=reader_set, signature=signature,
                            late_read_results=late_results)


def communication_signature(protocol: RotProtocolModel,
                            readers: Iterable[str]) -> tuple[str, ...]:
    """The Lemma 1 communication string of execution ``E(readers)``."""
    return build_execution(protocol, readers).signature


def lemma1_holds(protocol: RotProtocolModel, clients: Sequence[str]) -> bool:
    """Check Lemma 1 over every pair of subsets of ``clients``.

    Returns True iff any two *different* subsets of readers produce different
    communication signatures.  The check is exponential in ``len(clients)``
    and intended for the small sizes used in tests and benchmarks.
    """
    subsets = _all_subsets(clients)
    seen: dict[tuple[str, ...], frozenset[str]] = {}
    for subset in subsets:
        signature = communication_signature(protocol, subset)
        other = seen.get(signature)
        if other is not None and other != frozenset(subset):
            return False
        seen[signature] = frozenset(subset)
    return True


def find_causal_violation(protocol: RotProtocolModel,
                          clients: Sequence[str]) -> ExecutionOutcome | None:
    """Search for an ``E*``-style execution with an inconsistent snapshot.

    Mirrors the proof: take two subsets ``R1`` and ``R2`` with the same
    communication signature and ``R1 \\ R2`` non-empty; build ``E*`` from
    ``E(R2)`` by letting the clients in ``R1 \\ R2`` read ``y`` after
    ``PUT(y, Y1)`` completed.  ``py`` cannot distinguish ``E*`` from
    ``E(R2)``, so it serves them ``Y1`` and the snapshot ``(X0, Y1)`` appears.
    Returns the violating outcome, or ``None`` for protocols (like the
    reader-tracking one) where no such pair of executions exists.
    """
    subsets = _all_subsets(clients)
    by_signature: dict[tuple[str, ...], list[frozenset[str]]] = {}
    for subset in subsets:
        signature = communication_signature(protocol, subset)
        by_signature.setdefault(signature, []).append(frozenset(subset))
    for signature, groups in by_signature.items():
        if len(groups) < 2:
            continue
        for r1 in groups:
            for r2 in groups:
                difference = r1 - r2
                if not difference:
                    continue
                # E* is built on E(R2): the readers are those of R2, plus the
                # clients of R1 \ R2 whose read of y is delayed.  py observes
                # the same communication (signature) as in E(R2), so it
                # answers the delayed reads as it would there.
                outcome = ExecutionOutcome(
                    readers=r1 | r2, signature=signature,
                    late_read_results={
                        client: (X0, protocol.y_read_result(client, signature))
                        for client in sorted(difference)})
                if outcome.violates_causal_consistency():
                    return outcome
    return None


def _all_subsets(clients: Sequence[str]) -> list[tuple[str, ...]]:
    if len(clients) > 16:
        raise TheoryError("subset enumeration is limited to 16 clients")
    subsets: list[tuple[str, ...]] = []
    for mask in range(1 << len(clients)):
        subsets.append(tuple(client for index, client in enumerate(clients)
                             if mask & (1 << index)))
    return subsets


__all__ = [
    "ExecutionOutcome",
    "LamportOnlyProtocol",
    "ReaderTrackingProtocol",
    "RotProtocolModel",
    "X0",
    "X1",
    "Y0",
    "Y1",
    "build_execution",
    "communication_signature",
    "find_causal_violation",
    "lemma1_holds",
]
