"""Shared PEP 562 lazy-export machinery for the package ``__init__`` files.

Several packages resolve their exports lazily so that importing a sans-I/O
kernel module never drags in the simulator.  Each ``__init__`` declares an
``{export_name: defining_module}`` mapping and calls :func:`make_lazy` for
its ``__getattr__``/``__dir__`` pair — one implementation, six users.

Attribute access falls back to submodules: ``repro.harness`` resolves even
though ``harness`` is not an export, matching the behaviour of the old eager
``__init__`` files (which imported their submodules as a side effect).

This module must stay importable without ``repro.sim`` (it only uses
:mod:`importlib`).
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable, Mapping


def make_lazy(package: str, exports: Mapping[str, str],
              namespace: dict) -> tuple[Callable, Callable]:
    """Build the ``(__getattr__, __dir__)`` pair for ``package``.

    Parameters
    ----------
    package:
        The package's ``__name__``.
    exports:
        ``{attribute: module}`` — where each lazily exported name lives.
    namespace:
        The package's ``globals()``; resolved values are cached there so the
        import machinery runs once per name.
    """

    def __getattr__(name: str):
        module_name = exports.get(name)
        if module_name is not None:
            value = getattr(import_module(module_name), name)
        else:
            # Submodule access (``repro.harness``), as eager packages allow.
            try:
                value = import_module(f"{package}.{name}")
            except ModuleNotFoundError as exc:
                if exc.name != f"{package}.{name}":
                    # A real failure *inside* an existing submodule's import
                    # chain — masking it as AttributeError hides the cause.
                    raise
                raise AttributeError(
                    f"module {package!r} has no attribute {name!r}") from None
        namespace[name] = value
        return value

    def __dir__():
        return sorted(set(namespace) | set(exports))

    return __getattr__, __dir__


__all__ = ["make_lazy"]
