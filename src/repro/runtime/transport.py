"""Pluggable message transports for the real-time backend.

The middle of the three-layer message path (wire -> transport -> runtime): a
:class:`Transport` delivers kernel :class:`~repro.core.common.kernel.Send`
effects between nodes identified by abstract addresses
(:class:`~repro.core.common.kernel.ServerAddr` /
:class:`~repro.core.common.kernel.ClientAddr`), without the kernels or the
cluster knowing whether the destination lives in the same event loop or in
another OS process.

Two implementations:

* :class:`InprocTransport` — every node is local; ``send`` is a dictionary
  lookup plus a mailbox ``put_nowait``.  This preserves the exact behaviour
  (and error messages) of the pre-transport router.
* :class:`TcpTransport` — local nodes plus a peer table mapping remote
  addresses to ``(host, port)`` endpoints.  Remote sends are wire-encoded
  :class:`Envelope` frames (see :mod:`repro.wire`) written to a per-peer
  connection that is opened lazily and written by a dedicated drain task, so
  the synchronous ``send`` path never blocks a kernel.  Inbound connections
  are served by one handler per peer; graceful shutdown flushes every
  outbound queue (bounded) before closing.

Both transports optionally *coalesce* sends (``batch=`` a
:class:`~repro.wire.batch.FlushPolicy` or ``True`` for the default): pending
messages are flushed together at the policy's count/byte thresholds or when
the event loop next goes idle.  Over TCP a flush of two or more envelopes
becomes one :mod:`batch frame <repro.wire.batch>` — one length prefix, one
queue hop, one socket write for the whole burst, with homogeneous runs
(replication, heartbeats) encoded columnar.  Batching transports emit
``batch_flush``/``batch_recv`` trace events; per-message ``msg_send`` /
``msg_recv`` events stay with the nodes, so traces are gap-free either way.

Both are single-loop objects: all methods except the constructor must be
called from the event loop that runs the cluster.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.common.kernel import Addr, ClientAddr, ServerAddr
from repro.errors import ConfigurationError, TransportError
from repro.obs.events import BATCH_FLUSH, BATCH_RECV
from repro.wire.batch import (
    DEFAULT_FLUSH_POLICY,
    BatchFrame,
    FlushPolicy,
    encode_batch,
)
from repro.wire.codec import decode, encode, register_wire_type
from repro.wire.framing import frame, read_frame

#: Names a registered protocol can support (``ProtocolSpec.transports``).
TRANSPORTS = ("inproc", "tcp")

#: What call sites may pass as a batching policy: ``None``/``False`` for the
#: classic one-message-per-frame path, ``True`` for the default policy, or
#: an explicit :class:`~repro.wire.batch.FlushPolicy`.
BatchOption = Union[None, bool, FlushPolicy]


def resolve_flush_policy(batch: BatchOption) -> Optional[FlushPolicy]:
    """Normalise a ``batch`` argument into a policy (or None for off)."""
    if batch is None or batch is False:
        return None
    if batch is True:
        return DEFAULT_FLUSH_POLICY
    if isinstance(batch, FlushPolicy):
        return batch
    raise ConfigurationError(
        f"batch must be None, a bool or a FlushPolicy, got {batch!r}")


def _estimate_bytes(message: object) -> int:
    """Cheap wire-size estimate for the flush byte threshold."""
    size_fn = getattr(message, "size_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    return 64

#: Reserved wire type ids of the runtime layer (kept out of the message and
#: dynamic ranges so every process agrees on them without import-order luck).
_WIRE_ID_SERVER_ADDR = 512
_WIRE_ID_CLIENT_ADDR = 513
_WIRE_ID_ENVELOPE = 514

register_wire_type(ServerAddr, type_id=_WIRE_ID_SERVER_ADDR)
register_wire_type(ClientAddr, type_id=_WIRE_ID_CLIENT_ADDR)


@dataclass(frozen=True)
class Envelope:
    """One routed message on the wire: sender, destination, payload.

    ``trace`` carries the causal trace id of the operation the payload
    belongs to (see :mod:`repro.obs`); it defaults to ``None`` so wire
    version 1 frames — which predate the field — still decode.
    """

    sender: Optional[Addr]
    dest: Addr
    payload: object
    trace: Optional[str] = None


register_wire_type(Envelope, type_id=_WIRE_ID_ENVELOPE)

#: Connection attempts before an outbound link gives up (the peer table is
#: only distributed after every listener is bound, so retries cover transient
#: accept-queue pressure, not absent peers).
CONNECT_ATTEMPTS = 10
CONNECT_BACKOFF_SECONDS = 0.05
#: Bound on flushing one peer's outbound queue during graceful shutdown.
FLUSH_TIMEOUT_SECONDS = 5.0


def _unroutable(dest: Addr) -> ConfigurationError:
    """The error for a destination no routing table knows."""
    if isinstance(dest, ServerAddr):
        return ConfigurationError(
            f"no server at DC {dest.dc} partition {dest.partition}")
    if isinstance(dest, ClientAddr):
        return ConfigurationError(f"unknown client {dest.client_id!r}")
    return ConfigurationError(f"cannot route to {dest!r}")


class Transport(ABC):
    """Message delivery between nodes addressed by :class:`Addr`."""

    def __init__(self, batch: BatchOption = None) -> None:
        self._local: dict[Addr, object] = {}
        #: First delivery/connection error; surfaced through the cluster's
        #: ``first_failure`` so a broken link fails the run with its cause.
        self.failure: Optional[BaseException] = None
        #: Flush policy when coalescing is on, else ``None`` (the default):
        #: the unbatched path is bit-identical to the pre-batching transport.
        self.flush_policy: Optional[FlushPolicy] = resolve_flush_policy(batch)
        #: Optional :class:`~repro.obs.bus.EventBus` for transport-level
        #: ``batch_flush``/``batch_recv`` events; attached by the cluster.
        self.tracer = None

    def _emit_batch(self, kind: str, count: int,
                    peer: Optional[str] = None) -> None:
        if self.tracer is not None and count:
            data = (("count", count),)
            if peer is not None:
                data += (("peer", peer),)
            self.tracer.emit("transport", kind, data=data)

    def register_local(self, addr: Addr, node) -> None:
        """Attach a node (anything with ``deliver(sender, message, trace)``)."""
        self._local[addr] = node

    def local_addrs(self) -> tuple[Addr, ...]:
        """Addresses of every locally attached node."""
        return tuple(self._local)

    @abstractmethod
    def send(self, sender: Optional[Addr], dest: Addr, message: object,
             trace: Optional[str] = None) -> None:
        """Deliver ``message`` to ``dest`` (synchronous, non-blocking).

        ``trace`` is opaque observability metadata carried alongside the
        message; transports must deliver it unchanged (or ``None``).
        """

    async def start(self) -> None:
        """Bring up any I/O resources; idempotent."""

    async def stop(self) -> None:
        """Tear down I/O resources gracefully; idempotent."""


class InprocTransport(Transport):
    """All nodes share one event loop; delivery is a mailbox enqueue.

    With ``batch`` set, sends are buffered and fanned out together — at the
    policy's message threshold, or when the event loop next goes idle (one
    ``call_soon`` hop).  In-process delivery has no frames to coalesce, so
    the win is purely scheduling (fewer mailbox wakeups per burst); mostly
    this mode exists so batched semantics are testable without sockets.
    """

    def __init__(self, batch: BatchOption = None) -> None:
        super().__init__(batch)
        self._pending: list[tuple[object, Optional[Addr], object,
                                  Optional[str]]] = []
        self._flush_scheduled = False

    def send(self, sender: Optional[Addr], dest: Addr, message: object,
             trace: Optional[str] = None) -> None:
        node = self._local.get(dest)
        if node is None:
            raise _unroutable(dest)
        if self.flush_policy is None:
            node.deliver(sender, message, trace)
            return
        self._pending.append((node, sender, message, trace))
        if len(self._pending) >= self.flush_policy.max_messages:
            self.flush()
        elif not self._flush_scheduled:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                # No loop (unit tests driving the transport directly):
                # deliver now rather than strand the buffer.
                self.flush()
                return
            self._flush_scheduled = True
            loop.call_soon(self._idle_flush)

    def _idle_flush(self) -> None:
        self._flush_scheduled = False
        self.flush()

    def flush(self) -> None:
        """Deliver every buffered send, in order."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._emit_batch(BATCH_FLUSH, len(pending))
        for node, sender, message, trace in pending:
            node.deliver(sender, message, trace)

    async def stop(self) -> None:
        self.flush()


class _PeerLink:
    """One lazily connected outbound TCP connection with a drain task."""

    _CLOSE = object()

    def __init__(self, transport: "TcpTransport",
                 endpoint: tuple[str, int]) -> None:
        self.transport = transport
        self.endpoint = endpoint
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task = asyncio.ensure_future(self._run())
        self.task.add_done_callback(self._done)

    def enqueue(self, data: bytes) -> None:
        self.queue.put_nowait(data)

    async def _connect(self) -> tuple[asyncio.StreamReader,
                                      asyncio.StreamWriter]:
        host, port = self.endpoint
        last_error: Optional[OSError] = None
        for attempt in range(CONNECT_ATTEMPTS):
            try:
                return await asyncio.open_connection(host, port)
            except OSError as exc:
                last_error = exc
                await asyncio.sleep(CONNECT_BACKOFF_SECONDS * (attempt + 1))
        raise TransportError(
            f"cannot connect to peer {host}:{port} after "
            f"{CONNECT_ATTEMPTS} attempts: {last_error}")

    async def _run(self) -> None:
        _reader, writer = await self._connect()
        try:
            while True:
                data = await self.queue.get()
                if data is self._CLOSE:
                    break
                writer.write(data)
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    def _done(self, task: asyncio.Task) -> None:
        if task.cancelled():
            return
        error = task.exception()
        if error is not None and self.transport.failure is None:
            self.transport.failure = error

    async def close(self) -> None:
        """Flush queued frames (bounded), then close the connection."""
        self.queue.put_nowait(self._CLOSE)
        try:
            await asyncio.wait_for(asyncio.shield(self.task),
                                   FLUSH_TIMEOUT_SECONDS)
        except asyncio.TimeoutError:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        except Exception:  # noqa: BLE001 - already captured via _done
            pass


class TcpTransport(Transport):
    """Length-prefixed wire frames over asyncio TCP streams.

    Lifecycle: construct, :meth:`start` (binds the listener; ``port`` is the
    bound port), :meth:`set_peers` with the cluster-wide address table, then
    ``send`` freely; :meth:`stop` flushes and closes everything.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 batch: BatchOption = None) -> None:
        super().__init__(batch)
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self._endpoints: dict[Addr, tuple[str, int]] = {}
        self._links: dict[tuple[str, int], _PeerLink] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._inbound: set[asyncio.Task] = set()
        # Batching state, all keyed by peer endpoint.
        self._pending: dict[tuple[str, int], list[Envelope]] = {}
        self._pending_bytes: dict[tuple[str, int], int] = {}
        self._flush_scheduled: set[tuple[str, int]] = set()

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        for endpoint in list(self._pending):
            self._flush_endpoint(endpoint, raise_errors=False)
        links, self._links = list(self._links.values()), {}
        for link in links:
            await link.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        inbound, self._inbound = list(self._inbound), set()
        for task in inbound:
            task.cancel()
        for task in inbound:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass

    # ---------------------------------------------------------------- routing
    def set_peers(self, table: dict[Addr, tuple[str, int]]) -> None:
        """Install the remote address table (local nodes take precedence)."""
        for addr, endpoint in table.items():
            if addr not in self._local:
                self._endpoints[addr] = endpoint

    def send(self, sender: Optional[Addr], dest: Addr, message: object,
             trace: Optional[str] = None) -> None:
        node = self._local.get(dest)
        if node is not None:
            node.deliver(sender, message, trace)
            return
        endpoint = self._endpoints.get(dest)
        if endpoint is None:
            raise _unroutable(dest)
        if self.flush_policy is None:
            link = self._link_for(endpoint)
            link.enqueue(frame(encode(Envelope(sender, dest, message,
                                               trace))))
            return
        pending = self._pending.setdefault(endpoint, [])
        pending.append(Envelope(sender, dest, message, trace))
        self._pending_bytes[endpoint] = (
            self._pending_bytes.get(endpoint, 0) + _estimate_bytes(message))
        if (len(pending) >= self.flush_policy.max_messages
                or self._pending_bytes[endpoint]
                >= self.flush_policy.max_bytes):
            self._flush_endpoint(endpoint)
        elif endpoint not in self._flush_scheduled:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                self._flush_endpoint(endpoint)
                return
            self._flush_scheduled.add(endpoint)
            loop.call_soon(self._idle_flush, endpoint)

    def _link_for(self, endpoint: tuple[str, int]) -> _PeerLink:
        link = self._links.get(endpoint)
        if link is not None and link.task.done():
            # The drain task died (peer unreachable/crashed): enqueueing
            # more frames would buffer unboundedly and never send.  Failing
            # the sender here surfaces the root cause within one operation
            # instead of after a 30s timeout.
            raise TransportError(
                f"connection to peer {endpoint[0]}:{endpoint[1]} is down "
                f"({self.failure or 'drain task exited'})")
        if link is None:
            link = self._links[endpoint] = _PeerLink(self, endpoint)
        return link

    def _idle_flush(self, endpoint: tuple[str, int]) -> None:
        self._flush_scheduled.discard(endpoint)
        self._flush_endpoint(endpoint, raise_errors=False)

    def _flush_endpoint(self, endpoint: tuple[str, int], *,
                        raise_errors: bool = True) -> None:
        """Write the endpoint's pending envelopes as one coalesced frame.

        A single pending envelope goes out as a plain per-message frame
        (identical to the unbatched path, decodable by v2 peers); two or
        more become one batch frame.  With ``raise_errors`` off (idle and
        shutdown flushes, which have no caller to fail) link errors are
        parked in :attr:`failure` instead of raised.
        """
        pending = self._pending.get(endpoint)
        if not pending:
            return
        self._pending[endpoint] = []
        self._pending_bytes[endpoint] = 0
        try:
            link = self._link_for(endpoint)
        except TransportError as exc:
            if raise_errors:
                raise
            if self.failure is None:
                self.failure = exc
            return
        if len(pending) == 1:
            link.enqueue(frame(encode(pending[0])))
        else:
            link.enqueue(frame(encode_batch(pending)))
        self._emit_batch(BATCH_FLUSH, len(pending),
                         peer=f"{endpoint[0]}:{endpoint[1]}")

    # ---------------------------------------------------------------- inbound
    def _deliver_envelope(self, envelope: Envelope) -> None:
        if not isinstance(envelope, Envelope):
            raise TransportError(
                f"batch frame carries a {type(envelope).__name__}, "
                f"expected an Envelope")
        node = self._local.get(envelope.dest)
        if node is None:
            raise TransportError(
                f"received a message for {envelope.dest!r}, which "
                f"is not attached to this transport")
        node.deliver(envelope.sender, envelope.payload, envelope.trace)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound.add(task)
            task.add_done_callback(self._inbound.discard)
        try:
            while True:
                payload = await read_frame(reader)
                if payload is None:
                    break
                decoded = decode(payload)
                if isinstance(decoded, BatchFrame):
                    self._emit_batch(BATCH_RECV, len(decoded))
                    for envelope in decoded.envelopes:
                        self._deliver_envelope(envelope)
                elif isinstance(decoded, Envelope):
                    self._deliver_envelope(decoded)
                else:
                    raise TransportError(
                        f"expected an Envelope or batch frame, got "
                        f"{type(decoded).__name__}")
        except asyncio.CancelledError:
            # Cancelled only by stop(); swallowing (rather than re-raising)
            # keeps asyncio.streams' internal done-callback from logging a
            # spurious "Exception in callback" during teardown.
            return
        except Exception as exc:  # noqa: BLE001 - surfaced via failure
            if self.failure is None:
                self.failure = exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass


__all__ = [
    "BatchOption",
    "Envelope",
    "InprocTransport",
    "TRANSPORTS",
    "TcpTransport",
    "Transport",
    "resolve_flush_policy",
]
