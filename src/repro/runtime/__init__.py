"""Real-time backend: the sans-I/O protocol kernels on asyncio.

This package is the second driver of the protocol kernels in
:mod:`repro.core` (the first is the discrete-event simulator in
:mod:`repro.sim`), layered as wire -> transport -> runtime:

* :mod:`repro.wire` encodes messages into self-describing frames;
* :mod:`repro.runtime.transport` delivers them — in-process mailboxes
  (:class:`InprocTransport`) or length-prefixed frames over asyncio TCP
  streams (:class:`TcpTransport`);
* the runtime drives the kernels: servers and clients are asyncio tasks on
  wall-clock time — real concurrency, real HLC/physical clocks, the same
  protocol logic, the same metrics and the same causal-consistency checker.
  With :class:`ProcessCluster`, every partition server runs in its own OS
  process (true multi-core execution) and the parent checks the merged
  cross-process history.

Entry points:

* :func:`~repro.runtime.experiment.run_realtime_experiment` — a
  workload-driven wall-clock run (``transport="inproc"`` or ``"tcp"``)
  returning a :class:`~repro.metrics.collectors.RunResult`;
* ``CausalStore(backend="realtime", transport=...)`` (:mod:`repro.api`) —
  the interactive facade served by this backend;
* :class:`~repro.runtime.cluster.RealtimeCluster` /
  :class:`~repro.runtime.process.ProcessCluster` — the building blocks.
"""

from repro._lazy import make_lazy

_EXPORTS = {
    "DEFAULT_REALTIME_DURATION": "repro.runtime.experiment",
    "Envelope": "repro.runtime.transport",
    "InprocTransport": "repro.runtime.transport",
    "ProcessCluster": "repro.runtime.process",
    "RealtimeClient": "repro.runtime.nodes",
    "RealtimeCluster": "repro.runtime.cluster",
    "RealtimeOutcome": "repro.runtime.experiment",
    "RealtimeServer": "repro.runtime.nodes",
    "TRANSPORTS": "repro.runtime.transport",
    "TcpTransport": "repro.runtime.transport",
    "Transport": "repro.runtime.transport",
    "run_realtime_experiment": "repro.runtime.experiment",
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = make_lazy(__name__, _EXPORTS, globals())
