"""Real-time backend: the sans-I/O protocol kernels on asyncio.

This package is the second driver of the protocol kernels in
:mod:`repro.core` (the first is the discrete-event simulator in
:mod:`repro.sim`).  Servers and clients become asyncio tasks exchanging
messages through in-process mailboxes on wall-clock time — real concurrency,
real HLC/physical clocks, the same protocol logic, the same metrics and the
same causal-consistency checker.

Entry points:

* :func:`~repro.runtime.experiment.run_realtime_experiment` — a
  workload-driven wall-clock run returning a
  :class:`~repro.metrics.collectors.RunResult`;
* ``CausalStore(backend="realtime")`` (:mod:`repro.api`) — the interactive
  facade served by this backend;
* :class:`~repro.runtime.cluster.RealtimeCluster` — the building block both
  use.
"""

from repro.runtime.cluster import RealtimeCluster
from repro.runtime.experiment import (
    DEFAULT_REALTIME_DURATION,
    RealtimeOutcome,
    run_realtime_experiment,
)
from repro.runtime.nodes import RealtimeClient, RealtimeServer

__all__ = [
    "DEFAULT_REALTIME_DURATION",
    "RealtimeClient",
    "RealtimeCluster",
    "RealtimeOutcome",
    "RealtimeServer",
    "run_realtime_experiment",
]
