"""Multi-process TCP clusters: one OS process per partition server.

A :class:`ProcessCluster` is the top of the transport stack: it spawns every
partition server of a run in its own OS process (``multiprocessing`` spawn
context, one asyncio loop per worker), wires all of them — plus optional
per-DC client worker processes and any parent-local interactive clients —
into one mesh of :class:`~repro.runtime.transport.TcpTransport` peers, and
coordinates the run over a TCP *control plane* that speaks the same wire
codec as the data path.

Control protocol (all frames are :mod:`repro.wire` encodings)::

    worker -> parent   WorkerHello(worker_id, host, port)   after binding
    parent -> worker   PeerTable(entries, wall_epoch)       full address map
    worker -> parent   WorkerReady(worker_id)               cluster started
    parent -> worker   StartRun(duration_seconds)           begin closed loops
    worker -> parent   WorkerResult(...)                    measurements +
                                                            observation log
    parent -> worker   Shutdown()                           graceful exit
    worker -> parent   WorkerError(worker_id, message)      on any failure

Client workers ship their latency samples *and* the causal-consistency
observation log (:class:`~repro.causal.checker.RecordedPut` /
:class:`~repro.causal.checker.RecordedRot`) back over the wire; the parent
folds every worker's log into one checker and validates the whole multi-
process history.  Server workers ship their protocol-overhead counters at
shutdown.

Clocks: per-process monotonic origins are arbitrary, so the parent
distributes one ``time.time()`` epoch in the peer table and every worker
aligns its :class:`~repro.clocks.timesource.WallClock` to it — cross-process
skew collapses from process start-up stagger to system-clock read jitter.
Randomness: every node seed derives from
:func:`repro.cluster.seeding.node_rng`, so a node draws the same stream in a
worker as it would in-process.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Optional

from repro.causal.checker import RecordedPut, RecordedRead, RecordedRot
from repro.causal.streaming import ObservationBuffer, StreamingChecker
from repro.cluster.config import ClusterConfig
from repro.core.common.kernel import Addr, ClientAddr, ServerAddr
from repro.core.registry import resolve_spec
from repro.errors import (
    ConfigurationError,
    RuntimeBackendError,
    WireFormatError,
)
from repro.metrics.overheads import OverheadCounters
from repro.obs.events import TraceEvent
from repro.obs.trace import TraceAssembler
from repro.runtime.cluster import (
    RealtimeCluster,
    client_node_id,
    drive_closed_loops,
)
from repro.runtime.nodes import OPERATION_TIMEOUT_SECONDS
from repro.runtime.transport import (
    BatchOption,
    TcpTransport,
    resolve_flush_policy,
)
from repro.wire.batch import (
    FlushPolicy,
    decode_record_batch,
    encode_record_batch,
)
from repro.wire.codec import decode, encode, register_wire_type
from repro.wire.framing import read_frame, write_frame
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters

#: Bound on worker start-up (spawn + import + bind + hello) and handshakes.
WORKER_STARTUP_TIMEOUT_SECONDS = 60.0
#: Bound on a worker's shutdown-time result + exit.
WORKER_SHUTDOWN_TIMEOUT_SECONDS = 30.0
#: Drain interval of a streaming worker's observation flusher: worker-side
#: buffering (and the parent checker's ingest lag) is bounded by one
#: interval's worth of operations, not the run length.
OBSERVATION_FLUSH_SECONDS = 0.1

# Reserved wire ids of the control plane (see repro.runtime.transport for
# the 512-block convention).
register_wire_type(RecordedPut, type_id=520)
register_wire_type(RecordedRead, type_id=521)
register_wire_type(RecordedRot, type_id=522)
register_wire_type(OverheadCounters, type_id=523)


@dataclass(frozen=True)
class WorkerRole:
    """What one worker process hosts: server and/or client nodes."""

    worker_id: int
    server_ids: tuple[tuple[int, int], ...]
    client_ids: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to build its cluster slice (picklable)."""

    protocol: str
    config: ClusterConfig
    workload: WorkloadParameters
    role: WorkerRole
    control_host: str
    control_port: int
    enable_checker: bool
    #: Enable the repro.obs event bus in the worker (trailing default keeps
    #: the wire encoding decodable by peers that predate tracing).
    trace: bool = False
    #: Flush policy for the worker's TcpTransport, or None for unbatched.
    batch: Optional[FlushPolicy] = None
    #: Ship the observation log incrementally as ObservationChunk frames
    #: during the run (the parent feeds them into its streaming checker)
    #: instead of one giant WorkerResult at the end.  Trailing default keeps
    #: the wire encoding decodable by pre-streaming peers.
    stream_observations: bool = False


@dataclass(frozen=True)
class WorkerHello:
    """Worker -> parent: the worker's data listener is bound."""

    worker_id: int
    host: str
    port: int


@dataclass(frozen=True)
class PeerEntry:
    """One address -> endpoint binding of the cluster-wide peer table."""

    addr: Addr
    host: str
    port: int


@dataclass(frozen=True)
class PeerTable:
    """Parent -> worker: the full mesh plus the shared clock epoch."""

    entries: tuple[PeerEntry, ...]
    wall_epoch: float


@dataclass(frozen=True)
class WorkerReady:
    """Worker -> parent: peers installed, cluster started."""

    worker_id: int


@dataclass(frozen=True)
class StartRun:
    """Parent -> worker: serve closed-loop traffic for this long."""

    duration_seconds: float


@dataclass(frozen=True)
class Shutdown:
    """Parent -> worker: stop serving, report, exit."""


@dataclass(frozen=True)
class WorkerError:
    """Worker -> parent: the worker failed; ``message`` carries the trace."""

    worker_id: int
    message: str


@dataclass(frozen=True)
class WorkerResult:
    """Worker -> parent: measurements and the observation log.

    ``puts``/``rots`` is the worker-local causal-consistency observation log
    (empty for server-only workers); ``overhead`` the merged counters of the
    worker's partition servers (empty for client-only workers).
    """

    worker_id: int
    rot_samples: tuple[float, ...]
    put_samples: tuple[float, ...]
    rots_issued: int
    puts_issued: int
    puts: tuple[RecordedPut, ...]
    rots: tuple[RecordedRot, ...]
    overhead: OverheadCounters
    #: Drained repro.obs trace events (empty when tracing is off) plus the
    #: worker bus's drop counter, so the parent's assembler can tell lost
    #: events from an idle worker.  Trailing defaults keep the frame
    #: decodable by pre-tracing peers.
    events: tuple[TraceEvent, ...] = ()
    events_dropped: int = 0


@dataclass(frozen=True)
class ObservationChunk:
    """Worker -> parent: one drained slice of the observation log.

    Sent during the run by streaming workers (``stream_observations``), so
    the parent's :class:`~repro.causal.streaming.StreamingChecker` verifies
    windows while traffic is still flowing and no process ever holds the
    whole history.  ``puts_blob``/``rots_blob`` are
    :func:`repro.wire.batch.encode_record_batch` encodings (the PR 7
    columnar struct-array layout); the redundant counts let the parent
    detect truncated blobs before feeding the checker.  ``sequence`` is
    per-worker and monotonically increasing from 1.
    """

    worker_id: int
    sequence: int
    put_count: int
    rot_count: int
    puts_blob: bytes
    rots_blob: bytes


for _index, _cls in enumerate((WorkerHello, PeerEntry, PeerTable, WorkerReady,
                               StartRun, Shutdown, WorkerError, WorkerResult,
                               ObservationChunk)):
    register_wire_type(_cls, type_id=540 + _index)


def default_placement(config: ClusterConfig, *,
                      workload_clients: bool) -> tuple[WorkerRole, ...]:
    """One worker per partition server, plus one client worker per DC."""
    roles: list[WorkerRole] = []
    for dc in range(config.num_dcs):
        for partition in range(config.num_partitions):
            roles.append(WorkerRole(len(roles), ((dc, partition),), ()))
    if workload_clients:
        for dc in range(config.num_dcs):
            roles.append(WorkerRole(
                len(roles), (),
                tuple((dc, index)
                      for index in range(config.clients_per_dc))))
    return tuple(roles)


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _collect_result(cluster: RealtimeCluster, worker_id: int) -> WorkerResult:
    """Snapshot a worker's measurements for shipping to the parent."""
    puts: tuple[RecordedPut, ...] = ()
    rots: tuple[RecordedRot, ...] = ()
    if cluster.checker is not None:
        puts, rots = cluster.checker.recorded_history()
    events: tuple[TraceEvent, ...] = ()
    events_dropped = 0
    if cluster.trace_bus is not None:
        events = cluster.trace_bus.drain()
        events_dropped = cluster.trace_bus.dropped
    metrics = cluster.metrics
    return WorkerResult(
        worker_id=worker_id,
        rot_samples=metrics.rot_latencies.samples(),
        put_samples=metrics.put_latencies.samples(),
        rots_issued=metrics.rots_issued,
        puts_issued=metrics.puts_issued,
        puts=puts,
        rots=rots,
        overhead=cluster.overhead(),
        events=events,
        events_dropped=events_dropped)


async def _flush_observations(buffer: ObservationBuffer,
                              writer: asyncio.StreamWriter,
                              writer_lock: asyncio.Lock,
                              worker_id: int, sequence: int) -> int:
    """Drain ``buffer`` into one ObservationChunk frame (if non-empty)."""
    puts, rots = buffer.drain()
    if not puts and not rots:
        return sequence
    sequence += 1
    payload = encode(ObservationChunk(
        worker_id=worker_id, sequence=sequence,
        put_count=len(puts), rot_count=len(rots),
        puts_blob=encode_record_batch(puts),
        rots_blob=encode_record_batch(rots)))
    async with writer_lock:
        await write_frame(writer, payload)
    return sequence


async def _observation_flusher(buffer: ObservationBuffer,
                               writer: asyncio.StreamWriter,
                               writer_lock: asyncio.Lock,
                               worker_id: int,
                               stop: asyncio.Event) -> None:
    """Periodically ship the observation log while closed loops run.

    Stops via the event rather than cancellation so a flush is never
    interrupted mid-frame (a half-written chunk would corrupt the control
    stream); the final iteration after ``stop`` drains whatever the last
    interval accumulated.
    """
    sequence = 0
    while True:
        stopping = stop.is_set()
        sequence = await _flush_observations(buffer, writer, writer_lock,
                                             worker_id, sequence)
        if stopping:
            return
        try:
            await asyncio.wait_for(stop.wait(), OBSERVATION_FLUSH_SECONDS)
        except asyncio.TimeoutError:
            pass


async def _worker_main(spec: WorkerSpec) -> None:
    role = spec.role
    transport = TcpTransport(batch=spec.batch)
    await transport.start()
    wants_checker = spec.enable_checker and bool(role.client_ids)
    observations: Optional[ObservationBuffer] = (
        ObservationBuffer()
        if wants_checker and spec.stream_observations else None)
    cluster = RealtimeCluster(
        spec.protocol, spec.config, spec.workload,
        enable_checker=wants_checker, checker=observations,
        workload_clients=False, transport=transport,
        server_ids=role.server_ids,
        trace=spec.trace, trace_source=f"worker-{role.worker_id}")
    for dc, index in role.client_ids:
        cluster.add_workload_client(dc, index)

    reader, writer = await asyncio.open_connection(
        spec.control_host, spec.control_port)
    writer_lock = asyncio.Lock()
    result_sent = False
    try:
        await write_frame(writer, encode(WorkerHello(
            role.worker_id, transport.host, transport.port)))
        while True:
            payload = await read_frame(reader)
            if payload is None:
                break  # parent vanished; exit quietly
            message = decode(payload)
            if isinstance(message, PeerTable):
                transport.set_peers({entry.addr: (entry.host, entry.port)
                                     for entry in message.entries})
                await cluster.start(wall_epoch=message.wall_epoch)
                async with writer_lock:
                    await write_frame(writer,
                                      encode(WorkerReady(role.worker_id)))
            elif isinstance(message, StartRun):
                if cluster.clients:
                    # Re-anchor the warmup window at traffic start: the
                    # shared epoch began at spawn time, long before the
                    # first operation.
                    cluster.metrics.warmup_seconds = (
                        cluster.clock.now + spec.config.warmup_seconds)
                    if observations is not None:
                        stop_flusher = asyncio.Event()
                        flusher = asyncio.ensure_future(_observation_flusher(
                            observations, writer, writer_lock,
                            role.worker_id, stop_flusher))
                        flusher_error: Optional[BaseException] = None
                        try:
                            await drive_closed_loops(
                                cluster, message.duration_seconds)
                        finally:
                            stop_flusher.set()
                            # Swallowing into a variable keeps a run failure
                            # (the more fundamental error) from being
                            # replaced by a flusher failure mid-finally.
                            try:
                                await flusher
                            except Exception as exc:  # noqa: BLE001
                                flusher_error = exc
                        if flusher_error is not None:
                            raise flusher_error
                    else:
                        await drive_closed_loops(cluster,
                                                 message.duration_seconds)
                    async with writer_lock:
                        await write_frame(writer, encode(
                            _collect_result(cluster, role.worker_id)))
                    result_sent = True
            elif isinstance(message, Shutdown):
                await cluster.stop()
                if not result_sent:
                    async with writer_lock:
                        await write_frame(writer, encode(
                            _collect_result(cluster, role.worker_id)))
                    result_sent = True
                break
            else:
                raise RuntimeBackendError(
                    f"worker {role.worker_id} received an unexpected "
                    f"control message {type(message).__name__}")
    except Exception:  # noqa: BLE001 - reported to the parent, then re-raised
        try:
            async with writer_lock:
                await write_frame(writer, encode(WorkerError(
                    role.worker_id, traceback.format_exc())))
        except (OSError, RuntimeError):
            pass
        raise
    finally:
        await cluster.stop()
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


def worker_entry(spec: WorkerSpec) -> None:
    """Process entry point (must stay importable for the spawn context)."""
    try:
        asyncio.run(_worker_main(spec))
    except Exception:  # noqa: BLE001
        traceback.print_exc(file=sys.stderr)
        raise SystemExit(1)


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class _ConnectionClosed:
    """Queue sentinel: the worker's control connection ended."""

    __slots__ = ("error",)

    def __init__(self, error: Optional[BaseException]) -> None:
        self.error = error


class ProcessCluster:
    """A realtime cluster whose partition servers are separate OS processes.

    Facade-compatible with :class:`~repro.runtime.cluster.RealtimeCluster`
    (``clock`` / ``checker`` / ``metrics`` / ``add_client`` /
    ``first_failure`` / ``start`` / ``stop``), so
    :class:`repro.api.CausalStore` and the experiment runner drive either
    interchangeably.  Interactive clients added via :meth:`add_client` live
    in the parent process and must be added *before* :meth:`start` (the peer
    table is distributed once).
    """

    def __init__(self, protocol: str, config: Optional[ClusterConfig] = None,
                 workload: Optional[WorkloadParameters] = None, *,
                 enable_checker: bool = False,
                 checker: object = None,
                 workload_clients: bool = True,
                 batch: BatchOption = None,
                 trace: bool = False) -> None:
        self.protocol = protocol
        self.config = config = config or ClusterConfig()
        self.workload = workload = workload or DEFAULT_WORKLOAD
        spec = resolve_spec(protocol)
        if spec.kernel is None or spec.client_kernel is None:
            raise ConfigurationError(
                f"protocol {protocol!r} is registered without sans-I/O "
                f"kernels; the realtime backend needs them")
        if "tcp" not in spec.transports:
            raise ConfigurationError(
                f"protocol {protocol!r} does not support the 'tcp' "
                f"transport; supported: {list(spec.transports)}")
        self.roles = default_placement(config,
                                       workload_clients=workload_clients)
        # ``checker`` selects the run-wide validation strategy: None or
        # "monolithic" buffers every worker's history in one
        # CausalConsistencyChecker at shutdown; "streaming" (or an explicit
        # StreamingChecker instance) makes workers ship ObservationChunk
        # frames during the run and the parent verify GSS windows on the
        # fly — bounded memory on both sides.
        if isinstance(checker, str):
            if checker not in ("monolithic", "streaming"):
                raise ConfigurationError(
                    f"unknown checker {checker!r}; known: "
                    f"['monolithic', 'streaming']")
            checker = StreamingChecker() if checker == "streaming" else None
        self._checker_instance = checker
        enable_checker = enable_checker or checker is not None
        self._enable_checker = enable_checker
        self.streaming_observations = isinstance(checker, StreamingChecker)
        #: ObservationChunk frames folded into the streaming checker so far.
        self.chunks_ingested = 0
        self._trace = trace
        #: One policy for the whole mesh: every worker transport and the
        #: parent's view transport flush identically.
        self._batch = resolve_flush_policy(batch)
        #: Run-wide timeline: every worker ships its drained event stream
        #: over the control plane and the parent assembles one global view.
        self.trace_assembler: Optional[TraceAssembler] = (
            TraceAssembler() if trace else None)
        #: Parent-local view: no servers, optional interactive clients, one
        #: TcpTransport into the same mesh.  Its metrics/checker are the
        #: run-wide aggregation target.
        self.view = RealtimeCluster(
            protocol, config, workload, enable_checker=enable_checker,
            checker=self._checker_instance,
            workload_clients=False, transport=TcpTransport(batch=self._batch),
            server_ids=(), trace=trace, trace_source="parent")
        self._processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._queues: dict[int, asyncio.Queue] = {}
        self._merged: set[int] = set()
        self._worker_overhead = OverheadCounters()
        self._failure: Optional[BaseException] = None
        self._control: Optional[asyncio.base_events.Server] = None
        self._control_tasks: set[asyncio.Task] = set()
        self._wall_epoch: Optional[float] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------- facade API
    @property
    def clock(self):
        return self.view.clock

    @property
    def checker(self):
        return self.view.checker

    @property
    def metrics(self):
        return self.view.metrics

    @property
    def worker_count(self) -> int:
        """Number of worker OS processes this cluster spawns."""
        return len(self.roles)

    def add_client(self, dc: int, index: int, *, generator=None):
        """Attach a parent-local interactive client (before :meth:`start`)."""
        if self._started:
            raise RuntimeBackendError(
                "interactive clients must be added before the process "
                "cluster starts (the peer table is distributed once)")
        placement = (dc, index)
        if any(placement in role.client_ids for role in self.roles):
            # A duplicate address would make servers route the worker
            # client's replies to the parent — timeouts there, a polluted
            # history here.
            raise ConfigurationError(
                f"client (dc={dc}, index={index}) is already hosted by a "
                f"worker process; pick an index >= "
                f"{self.config.clients_per_dc}")
        return self.view.add_client(dc, index, generator=generator)

    def first_failure(self) -> Optional[BaseException]:
        failure = self.view.first_failure()
        return failure if failure is not None else self._failure

    def overhead(self) -> OverheadCounters:
        """Merged overhead counters across every worker's servers."""
        overhead = OverheadCounters()
        overhead.merge(self._worker_overhead)
        overhead.merge(self.view.overhead())
        return overhead

    def collect_trace(self) -> Optional[TraceAssembler]:
        """The run-wide timeline assembler (None when tracing is off).

        Folds in any not-yet-drained parent-local events first; worker
        streams arrive via :meth:`_merge_result` as results come back.
        """
        assembler = self.trace_assembler
        if assembler is not None and self.view.trace_bus is not None:
            assembler.ingest_bus(self.view.trace_bus)
        return assembler

    # ---------------------------------------------------------- control plane
    def _queue_for(self, worker_id: int) -> asyncio.Queue:
        queue = self._queues.get(worker_id)
        if queue is None:
            queue = self._queues[worker_id] = asyncio.Queue()
        return queue

    async def _on_worker_connection(self, reader: asyncio.StreamReader,
                                    writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._control_tasks.add(task)
            task.add_done_callback(self._control_tasks.discard)
        worker_id: Optional[int] = None
        error: Optional[BaseException] = None
        try:
            while True:
                payload = await read_frame(reader)
                if payload is None:
                    break
                message = decode(payload)
                if worker_id is None:
                    if not isinstance(message, WorkerHello):
                        raise RuntimeBackendError(
                            f"control connection opened with "
                            f"{type(message).__name__}, expected WorkerHello")
                    worker_id = message.worker_id
                    self._writers[worker_id] = writer
                if isinstance(message, ObservationChunk):
                    # Fed straight into the streaming checker instead of the
                    # queue: ingestion (and window verification) overlaps the
                    # run, and the per-connection FIFO guarantees every chunk
                    # lands before the worker's final WorkerResult.
                    self._ingest_chunk(message)
                    continue
                self._queue_for(worker_id).put_nowait(message)
        except asyncio.CancelledError:
            return
        except Exception as exc:  # noqa: BLE001 - surfaced via the queue
            error = exc
        finally:
            if worker_id is not None:
                self._queue_for(worker_id).put_nowait(_ConnectionClosed(error))

    def _ingest_chunk(self, chunk: ObservationChunk) -> None:
        """Fold one streamed observation chunk into the streaming checker."""
        checker = self.view.checker
        if not isinstance(checker, StreamingChecker):
            raise RuntimeBackendError(
                f"worker {chunk.worker_id} streamed an ObservationChunk but "
                f"the parent checker is "
                f"{type(checker).__name__ if checker else 'disabled'}")
        puts = decode_record_batch(chunk.puts_blob)
        rots = decode_record_batch(chunk.rots_blob)
        if len(puts) != chunk.put_count or len(rots) != chunk.rot_count:
            raise WireFormatError(
                f"observation chunk {chunk.sequence} from worker "
                f"{chunk.worker_id} announced {chunk.put_count} puts / "
                f"{chunk.rot_count} rots but carries {len(puts)} / "
                f"{len(rots)}")
        checker.record_history(puts, rots,
                               source=f"worker-{chunk.worker_id}")
        self.chunks_ingested += 1

    async def _expect(self, worker_id: int, expected: type, timeout: float):
        """The next control message from ``worker_id``, of the given type.

        Fails fast when the worker process died without anything left in its
        queue (a crash before the hello would otherwise burn the whole
        timeout).
        """
        queue = self._queue_for(worker_id)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        death_observed = False
        while True:
            try:
                message = await asyncio.wait_for(
                    queue.get(), min(0.2, max(deadline - loop.time(), 0.01)))
                break
            except asyncio.TimeoutError:
                process = self._processes.get(worker_id)
                dead = process is not None and not process.is_alive()
                if dead and queue.empty():
                    # One extra poll after first observing the death: a
                    # gracefully exiting worker's final frame may still sit
                    # in the socket buffer, waiting for the connection
                    # reader task to be scheduled.
                    if not death_observed:
                        death_observed = True
                        continue
                    raise RuntimeBackendError(
                        f"worker {worker_id} exited with code "
                        f"{process.exitcode} before sending "
                        f"{expected.__name__}") from None
                if loop.time() >= deadline:
                    state = (f"exited with code {process.exitcode}"
                             if dead else "still running")
                    raise RuntimeBackendError(
                        f"timed out after {timeout}s waiting for "
                        f"{expected.__name__} from worker {worker_id} "
                        f"(process {state})") from None
        if isinstance(message, WorkerError):
            failure = RuntimeBackendError(
                f"worker {worker_id} failed:\n{message.message}")
            self._failure = self._failure or failure
            raise failure
        if isinstance(message, _ConnectionClosed):
            raise RuntimeBackendError(
                f"worker {worker_id} closed its control connection while "
                f"{expected.__name__} was expected"
                + (f" ({message.error})" if message.error else ""))
        if not isinstance(message, expected):
            raise RuntimeBackendError(
                f"expected {expected.__name__} from worker {worker_id}, "
                f"got {type(message).__name__}")
        return message

    async def _broadcast(self, message: object) -> None:
        """Best-effort send to every worker.

        A single dead control connection must not stop the remaining
        workers from receiving the message; the per-worker ``_expect`` calls
        surface the dead one with its exit state.
        """
        payload = encode(message)
        for worker_id, writer in self._writers.items():
            try:
                await write_frame(writer, payload)
            except (OSError, RuntimeError) as exc:
                if self._failure is None:
                    self._failure = RuntimeBackendError(
                        f"control connection to worker {worker_id} "
                        f"failed: {exc}")

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Spawn the workers, distribute the peer table, start everything."""
        if self._closed:
            raise RuntimeBackendError("cluster is closed")
        if self._started:
            return
        self._started = True
        self._wall_epoch = time.time()
        self._control = await asyncio.start_server(
            self._on_worker_connection, "127.0.0.1", 0)
        control_port = self._control.sockets[0].getsockname()[1]
        await self.view.transport.start()

        context = multiprocessing.get_context("spawn")
        for role in self.roles:
            spec = WorkerSpec(
                protocol=self.protocol, config=self.config,
                workload=self.workload, role=role,
                control_host="127.0.0.1", control_port=control_port,
                enable_checker=self._enable_checker,
                trace=self._trace, batch=self._batch,
                stream_observations=self.streaming_observations)
            process = context.Process(target=worker_entry, args=(spec,),
                                      daemon=True)
            process.start()
            self._processes[role.worker_id] = process

        hellos = {role.worker_id: await self._expect(
                      role.worker_id, WorkerHello,
                      WORKER_STARTUP_TIMEOUT_SECONDS)
                  for role in self.roles}

        entries: list[PeerEntry] = []
        for role in self.roles:
            hello = hellos[role.worker_id]
            for dc, partition in role.server_ids:
                entries.append(PeerEntry(ServerAddr(dc, partition),
                                         hello.host, hello.port))
            for dc, index in role.client_ids:
                entries.append(PeerEntry(ClientAddr(client_node_id(dc, index)),
                                         hello.host, hello.port))
        parent_transport = self.view.transport
        for addr in parent_transport.local_addrs():
            entries.append(PeerEntry(addr, parent_transport.host,
                                     parent_transport.port))
        table = PeerTable(entries=tuple(entries), wall_epoch=self._wall_epoch)
        parent_transport.set_peers({entry.addr: (entry.host, entry.port)
                                    for entry in entries})
        await self._broadcast(table)
        for role in self.roles:
            await self._expect(role.worker_id, WorkerReady,
                               WORKER_STARTUP_TIMEOUT_SECONDS)
        await self.view.start(wall_epoch=self._wall_epoch)

    async def run_workload(self, duration_seconds: float) -> None:
        """Run every client worker's closed loops and merge their results."""
        if not self._started or self._closed:
            raise RuntimeBackendError("cluster is not running")
        client_workers = [role for role in self.roles if role.client_ids]
        if not client_workers:
            raise RuntimeBackendError(
                "this process cluster has no workload client workers "
                "(constructed with workload_clients=False)")
        await self._broadcast(StartRun(duration_seconds))
        timeout = (duration_seconds + OPERATION_TIMEOUT_SECONDS
                   + WORKER_SHUTDOWN_TIMEOUT_SECONDS)
        for role in client_workers:
            result = await self._expect(role.worker_id, WorkerResult, timeout)
            self._merge_result(result)

    def _merge_result(self, result: WorkerResult) -> None:
        if result.worker_id in self._merged:
            return
        self._merged.add(result.worker_id)
        self.view.metrics.absorb(
            rot_samples=result.rot_samples, put_samples=result.put_samples,
            rots_issued=result.rots_issued, puts_issued=result.puts_issued)
        self._worker_overhead.merge(result.overhead)
        if self.view.checker is not None:
            self.view.checker.record_history(result.puts, result.rots)
        if self.trace_assembler is not None and (
                result.events or result.events_dropped):
            self.trace_assembler.add_events(
                result.events, source=f"worker-{result.worker_id}",
                dropped=result.events_dropped)

    async def stop(self) -> None:
        """Shut every worker down gracefully, then the parent; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._writers:
                await self._broadcast(Shutdown())
                for role in self.roles:
                    if role.worker_id in self._merged:
                        continue
                    if role.worker_id not in self._writers:
                        continue
                    try:
                        result = await self._expect(
                            role.worker_id, WorkerResult,
                            WORKER_SHUTDOWN_TIMEOUT_SECONDS)
                    except RuntimeBackendError as exc:
                        self._failure = self._failure or exc
                        continue
                    self._merge_result(result)
        finally:
            for writer in self._writers.values():
                writer.close()
            if self._control is not None:
                self._control.close()
                await self._control.wait_closed()
            for task in list(self._control_tasks):
                task.cancel()
            await self.view.stop()
            await self._join_processes()

    async def _join_processes(self) -> None:
        deadline = (asyncio.get_running_loop().time()
                    + WORKER_SHUTDOWN_TIMEOUT_SECONDS)
        for process in self._processes.values():
            while process.is_alive() and \
                    asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.02)
            if process.is_alive():
                process.terminate()
                await asyncio.sleep(0.05)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
            process.join(timeout=1.0)


__all__ = [
    "OBSERVATION_FLUSH_SECONDS",
    "ObservationChunk",
    "PeerEntry",
    "PeerTable",
    "ProcessCluster",
    "Shutdown",
    "StartRun",
    "WorkerError",
    "WorkerHello",
    "WorkerReady",
    "WorkerResult",
    "WorkerRole",
    "WorkerSpec",
    "default_placement",
    "worker_entry",
]
