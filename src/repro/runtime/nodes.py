"""Real-time (asyncio) drivers for the sans-I/O protocol kernels.

Where the simulated backend wraps a kernel in a
:class:`~repro.sim.node.Node` with a FIFO CPU queue and virtual time, the
real-time backend wraps the *same kernel* in an asyncio task with a real
mailbox (:class:`asyncio.Queue`) and wall-clock time:

* :class:`RealtimeServer` — one task draining the mailbox; every message is
  fed to ``kernel.on_message`` and the returned effects are executed
  immediately (sends route through the cluster, ``SetTimer`` becomes an
  ``asyncio.sleep`` task, periodic timers become looping tasks).
* :class:`RealtimeClient` — the closed-loop / interactive client: it issues
  an operation by executing the client kernel's effects and awaits the
  :class:`~repro.core.common.kernel.Complete` effect, recording wall-clock
  latency into the shared :class:`~repro.metrics.collectors.MetricsRegistry`
  and (optionally) the operation history for the causal checker.

Kernels are only ever touched from the event loop's thread, and every
``on_message`` / ``on_timer`` call runs synchronously between awaits, so no
locking is needed despite the genuine concurrency between clients.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Optional

from repro.causal.checker import RecordedPut, RecordedRead, RecordedRot
from repro.core.common.kernel import (
    Addr,
    ClientAddr,
    ClientKernel,
    Complete,
    Effect,
    PutOutcome,
    RotOutcome,
    Send,
    ServerAddr,
    ServerKernel,
    SetTimer,
    TimerSpec,
)
from repro.errors import ProtocolError, RuntimeBackendError
from repro.obs.events import EFFECT, MSG_RECV, MSG_SEND, OP_FINISH, OP_START

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.cluster import RealtimeCluster

#: Upper bound on one operation's wall-clock completion (a generous guard:
#: in-process operations complete in microseconds; hitting this means a
#: protocol bug, and failing beats hanging CI).
OPERATION_TIMEOUT_SECONDS = 30.0

#: Upper bound on waiting for one node's cancelled tasks to finish during
#: :meth:`_MailboxNode.stop`.  A task that swallows cancellation must not
#: hang teardown forever — after this window it is abandoned (and reported),
#: which still beats leaking it to the garbage collector.
NODE_STOP_TIMEOUT_SECONDS = 5.0


class _MailboxNode:
    """Shared mailbox/task machinery of the real-time nodes."""

    def __init__(self, cluster: "RealtimeCluster") -> None:
        self.cluster = cluster
        self.mailbox: asyncio.Queue = asyncio.Queue()
        self._tasks: set[asyncio.Task] = set()
        #: First exception that killed one of this node's tasks; surfaced by
        #: :meth:`RealtimeCluster.first_failure` so a dead pump fails the run
        #: with its root cause instead of an opaque downstream timeout.
        self.failure: Optional[BaseException] = None
        #: Event bus (see :mod:`repro.obs`), attached by the cluster when
        #: tracing is enabled, and the trace id of the message currently
        #: being served; both stay None with tracing disabled and every emit
        #: site guards on ``tracer is not None``.
        self.tracer = None
        self.current_trace: Optional[str] = None

    def deliver(self, sender: Addr, message: object,
                trace: Optional[str] = None) -> None:
        """Called by the cluster router when a message arrives here."""
        self.mailbox.put_nowait((sender, message, trace))

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._task_done)
        return task

    def _task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if not task.cancelled():
            error = task.exception()
            if error is not None and self.failure is None:
                self.failure = error

    def start(self) -> None:
        """Spawn this node's tasks on the running event loop."""
        self._spawn(self._pump())

    async def stop(self) -> None:
        """Cancel and *await* every task this node spawned (bounded).

        Deterministic teardown is part of the close contract: relying on the
        garbage collector to reap still-pending tasks produces
        ``Task was destroyed but it is pending!`` warnings and leaves the
        event loop unclosable.  Cancellation is awaited with a bounded
        timeout so a task that ignores it cannot hang ``close()``.
        """
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        if not tasks:
            return
        done, pending = await asyncio.wait(
            tasks, timeout=NODE_STOP_TIMEOUT_SECONDS)
        for task in done:
            if not task.cancelled() and task.exception() is not None \
                    and self.failure is None:
                self.failure = task.exception()
        if pending and self.failure is None:
            self.failure = RuntimeBackendError(
                f"{len(pending)} task(s) of this node ignored cancellation "
                f"for {NODE_STOP_TIMEOUT_SECONDS}s during stop()")

    async def _pump(self) -> None:
        raise NotImplementedError


class RealtimeServer(_MailboxNode):
    """An asyncio task serving one partition through its kernel."""

    def __init__(self, cluster: "RealtimeCluster", kernel: ServerKernel) -> None:
        super().__init__(cluster)
        self.kernel = kernel
        self.addr = ServerAddr(kernel.dc_id, kernel.partition_index)
        self.node_id = kernel.node_id
        self.dc_id = kernel.dc_id

    # ------------------------------------------------------------------ store
    @property
    def store(self):
        return self.kernel.store

    @property
    def counters(self):
        return self.kernel.counters

    # ---------------------------------------------------------------- effects
    def execute_effects(self, effects: list[Effect]) -> None:
        tracer = self.tracer
        for effect in effects:
            if isinstance(effect, Send):
                self.counters.messages_sent += 1
                size_fn = getattr(effect.message, "size_bytes", None)
                if callable(size_fn):
                    self.counters.bytes_sent += int(size_fn())
                if tracer is not None:
                    tracer.emit(self.node_id, MSG_SEND,
                                trace=self.current_trace,
                                name=type(effect.message).__name__,
                                dc=self.dc_id)
                self.cluster.route(self.addr, effect.dest, effect.message,
                                   self.current_trace)
            elif isinstance(effect, SetTimer):
                if tracer is not None:
                    tracer.emit(self.node_id, EFFECT,
                                trace=self.current_trace,
                                name=f"set-timer:{effect.tag}", dc=self.dc_id)
                # The coroutine captures the current trace so timer-deferred
                # work keeps its operation's trace (always None when tracing
                # is disabled).
                self._spawn(self._one_shot(effect, self.current_trace))
            else:
                raise ProtocolError(
                    f"{self.node_id} cannot execute effect {effect!r}")

    async def _one_shot(self, timer: SetTimer,
                        trace: Optional[str] = None) -> None:
        await asyncio.sleep(timer.delay)
        self.current_trace = trace
        if self.tracer is not None:
            self.kernel.current_trace = trace
        self.execute_effects(self.kernel.on_timer(
            timer.tag, timer.payload, self.cluster.clock.now))

    async def _periodic(self, spec: TimerSpec) -> None:
        delay = spec.interval if spec.start_delay is None else spec.start_delay
        await asyncio.sleep(delay)
        while True:
            # Background protocol work runs outside any operation's trace.
            self.current_trace = None
            if self.tracer is not None:
                self.kernel.current_trace = None
            self.execute_effects(self.kernel.on_timer(
                spec.tag, None, self.cluster.clock.now))
            await asyncio.sleep(spec.interval)

    def start(self) -> None:
        super().start()
        for spec in self.kernel.periodic_timers():
            self._spawn(self._periodic(spec))

    async def _pump(self) -> None:
        while True:
            sender, message, trace = await self.mailbox.get()
            self.current_trace = trace
            tracer = self.tracer
            if tracer is not None:
                self.kernel.current_trace = trace
                tracer.emit(self.node_id, MSG_RECV, trace=trace,
                            name=type(message).__name__, dc=self.dc_id)
            self.execute_effects(self.kernel.on_message(
                sender, message, self.cluster.clock.now))


class RealtimeClient(_MailboxNode):
    """A client driving one operation at a time through its kernel.

    Used in two modes: *closed loop* (:meth:`run_closed_loop`, the load
    generator of :func:`repro.runtime.experiment.run_realtime_experiment`)
    and *interactive* (:meth:`perform`, the realtime backend of
    :class:`repro.api.CausalStore`).
    """

    def __init__(self, cluster: "RealtimeCluster", kernel: ClientKernel,
                 generator=None) -> None:
        super().__init__(cluster)
        self.kernel = kernel
        self.node_id = kernel.client_id
        self.addr = ClientAddr(kernel.client_id)
        self.dc_id = kernel.dc_id
        self.generator = generator
        self.metrics = cluster.metrics
        self.checker = cluster.checker
        self.sequence = 0
        self._op_started_at = 0.0
        self._op_future: Optional[asyncio.Future] = None
        # Set when an operation timed out: the kernel still considers that
        # operation in flight, so a later completion could otherwise resolve
        # (and mis-record) the *next* operation.  A broken client refuses
        # further operations instead.
        self._broken: Optional[str] = None

    # ---------------------------------------------------------------- effects
    def execute_effects(self, effects: list[Effect]) -> None:
        tracer = self.tracer
        for effect in effects:
            if isinstance(effect, Send):
                if tracer is not None:
                    tracer.emit(self.node_id, MSG_SEND,
                                trace=self.current_trace,
                                name=type(effect.message).__name__,
                                dc=self.dc_id)
                self.cluster.route(self.addr, effect.dest, effect.message,
                                   self.current_trace)
            elif isinstance(effect, Complete):
                self._finish(effect)
            else:
                raise ProtocolError(
                    f"{self.node_id} cannot execute effect {effect!r}")

    def _finish(self, effect: Complete) -> None:
        now = self.cluster.clock.now
        result = effect.result
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(self.node_id, OP_FINISH, trace=self.current_trace,
                        name=effect.op, dc=self.dc_id)
        if effect.op == "put":
            assert isinstance(result, PutOutcome)
            self.metrics.record_put(self._op_started_at, now)
            if self.checker is not None:
                self.checker.record_put(RecordedPut(
                    key=result.key, timestamp=result.timestamp,
                    origin_dc=result.origin_dc, client=self.node_id,
                    sequence=self.sequence,
                    dependencies=result.dependencies))
        else:
            assert isinstance(result, RotOutcome)
            self.metrics.record_rot(self._op_started_at, now)
            if self.checker is not None:
                reads = tuple(RecordedRead(key=r.key, timestamp=r.timestamp,
                                           origin_dc=r.origin_dc)
                              for r in result.results.values())
                self.checker.record_rot(RecordedRot(
                    rot_id=result.rot_id, client=self.node_id,
                    sequence=self.sequence, reads=reads))
        future, self._op_future = self._op_future, None
        if future is not None and not future.done():
            future.set_result(result)

    # ------------------------------------------------------------- operations
    async def perform(self, operation,
                      timeout: float = OPERATION_TIMEOUT_SECONDS):
        """Issue ``operation`` and wait for its completion.

        Returns the kernel's outcome (:class:`PutOutcome` /
        :class:`RotOutcome`).
        """
        if self._broken is not None:
            raise RuntimeBackendError(
                f"{self.node_id} is unusable after a timed-out operation: "
                f"{self._broken}")
        if self._op_future is not None:
            raise RuntimeBackendError(
                f"{self.node_id} already has an operation in flight")
        self.sequence += 1
        self.metrics.note_issue(operation.is_put)
        tracer = self.tracer
        if tracer is not None:
            trace = f"{self.node_id}#{self.sequence}"
            self.current_trace = trace
            self.kernel.current_trace = trace
            tracer.emit(self.node_id, OP_START, trace=trace,
                        name=operation.kind, dc=self.dc_id,
                        data=(("key", operation.keys[0]),))
        self._op_started_at = self.cluster.clock.now
        self._op_future = asyncio.get_running_loop().create_future()
        self.execute_effects(self.kernel.start_operation(
            operation, self.sequence, self._op_started_at))
        try:
            return await asyncio.wait_for(
                asyncio.shield(self._op_future), timeout)
        except asyncio.TimeoutError as exc:
            self._op_future = None
            self._broken = (f"operation {operation.kind} (sequence "
                            f"{self.sequence}) did not complete within "
                            f"{timeout}s")
            raise RuntimeBackendError(
                f"{self.node_id}: {self._broken}") from exc

    async def run_closed_loop(self, stop: asyncio.Event) -> None:
        """Issue operations back-to-back until ``stop`` is set."""
        while not stop.is_set():
            await self.perform(self.generator.next_operation())

    async def _pump(self) -> None:
        while True:
            _sender, message, trace = await self.mailbox.get()
            self.current_trace = trace
            tracer = self.tracer
            if tracer is not None:
                self.kernel.current_trace = trace
                tracer.emit(self.node_id, MSG_RECV, trace=trace,
                            name=type(message).__name__, dc=self.dc_id)
            self.execute_effects(self.kernel.on_message(
                message, self.cluster.clock.now))


__all__ = ["NODE_STOP_TIMEOUT_SECONDS", "OPERATION_TIMEOUT_SECONDS",
           "RealtimeClient", "RealtimeServer"]
