"""Workload-driven runs on the real-time backend (any transport).

:func:`run_realtime_experiment` is the wall-clock sibling of
:func:`repro.harness.runner.run_experiment`: it builds a real-time cluster,
serves genuinely concurrent closed-loop clients for a wall-clock duration,
and condenses the measured latencies/overheads into the same
:class:`~repro.metrics.collectors.RunResult` row format the figures use — so
simulated and real-time numbers can sit in the same table
(``benchmarks/run_smoke_benchmark.py --backend realtime``).

``transport`` selects the message path:

* ``"inproc"`` (default) — one process, one event loop, queue delivery
  (:class:`~repro.runtime.cluster.RealtimeCluster` over
  :class:`~repro.runtime.transport.InprocTransport`);
* ``"tcp"`` — a :class:`~repro.runtime.process.ProcessCluster`: every
  partition server in its own OS process, per-DC client worker processes,
  wire-codec frames over TCP, observation logs shipped back to the parent
  for run-wide consistency checking.

Real seconds are expensive compared to simulated ones, so the default
duration is deliberately short; pass ``duration_seconds`` explicitly for
longer measurements.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Union

from repro.causal.checker import CheckerReport
from repro.causal.streaming import StreamingChecker
from repro.cluster.config import ClusterConfig
from repro.core.registry import resolve_spec
from repro.errors import ConfigurationError
from repro.metrics.collectors import RunResult
from repro.obs.trace import TraceAssembler
from repro.runtime.cluster import RealtimeCluster, drive_closed_loops
from repro.runtime.process import ProcessCluster
from repro.runtime.transport import TRANSPORTS, BatchOption
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters

#: Default wall-clock run length (seconds) including warmup.
DEFAULT_REALTIME_DURATION = 1.0


@dataclass
class RealtimeOutcome:
    """The full outcome of one real-time run (result row plus state)."""

    result: RunResult
    cluster: Union[RealtimeCluster, ProcessCluster]
    checker_report: Optional[CheckerReport] = None
    #: Assembled run-wide timeline (None unless ``trace=True``); feed to
    #: :func:`repro.obs.export.write_chrome_trace` for a Perfetto dump.
    trace: Optional[TraceAssembler] = None


def _validate_transport(protocol: str, transport: str) -> None:
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"unknown transport {transport!r}; known: {list(TRANSPORTS)}")
    spec = resolve_spec(protocol)
    if transport not in spec.transports:
        raise ConfigurationError(
            f"protocol {protocol!r} does not support the {transport!r} "
            f"transport; supported: {list(spec.transports)}")


def run_realtime_experiment(protocol: str,
                            config: Optional[ClusterConfig] = None,
                            workload: Optional[WorkloadParameters] = None, *,
                            duration_seconds: Optional[float] = None,
                            transport: str = "inproc",
                            batch: BatchOption = None,
                            enable_checker: bool = False,
                            check_consistency: bool = False,
                            checker: str = "monolithic",
                            trace: bool = False,
                            label: str = "") -> RealtimeOutcome:
    """Run one wall-clock experiment and return its outcome.

    Parameters mirror :func:`repro.harness.runner.run_experiment`;
    ``duration_seconds`` (wall-clock, including the config's warmup window)
    defaults to :data:`DEFAULT_REALTIME_DURATION` rather than the config's
    simulated duration, because real seconds actually elapse.  With
    ``transport="tcp"`` the warmup window is re-anchored at traffic start in
    every client worker, so the measurement window matches the in-process
    semantics.  ``batch`` turns on send coalescing on every transport in the
    run (``True`` for the default :class:`~repro.wire.batch.FlushPolicy`).
    ``checker`` selects the validation strategy when checking is enabled:
    ``"monolithic"`` buffers the whole history and checks at the end;
    ``"streaming"`` verifies GSS-bounded windows incrementally with bounded
    memory — and over TCP additionally makes the workers ship their
    observation logs as chunks during the run instead of one giant result
    frame (see :mod:`repro.causal.streaming`).
    """
    config = config or ClusterConfig.test_scale()
    workload = workload or DEFAULT_WORKLOAD
    _validate_transport(protocol, transport)
    if checker not in ("monolithic", "streaming"):
        raise ConfigurationError(
            f"unknown checker {checker!r}; known: "
            f"['monolithic', 'streaming']")
    duration = (DEFAULT_REALTIME_DURATION if duration_seconds is None
                else duration_seconds)
    if duration <= config.warmup_seconds:
        # Mirror ClusterConfig's own duration/warmup validation instead of
        # silently stretching an explicitly requested duration.
        raise ConfigurationError(
            f"duration_seconds ({duration}) must be greater than the "
            f"config's warmup_seconds ({config.warmup_seconds})")

    enable_checker = enable_checker or check_consistency
    streaming = enable_checker and checker == "streaming"
    if transport == "tcp":
        cluster: Union[RealtimeCluster, ProcessCluster] = ProcessCluster(
            protocol, config, workload, enable_checker=enable_checker,
            checker="streaming" if streaming else None,
            workload_clients=True, batch=batch, trace=trace)

        async def _run() -> None:
            # stop() also covers a start() that failed mid-handshake: the
            # already-spawned worker processes must not be leaked.
            try:
                await cluster.start()
                await cluster.run_workload(duration)
            finally:
                await cluster.stop()
            failure = cluster.first_failure()
            if failure is not None:
                raise failure
    else:
        cluster = RealtimeCluster(protocol, config, workload,
                                  enable_checker=enable_checker,
                                  checker=(StreamingChecker() if streaming
                                           else None),
                                  batch=batch, trace=trace)

        async def _run() -> None:
            try:
                await cluster.start()
                await drive_closed_loops(cluster, duration)
            finally:
                await cluster.stop()
            # Failures recorded during teardown (e.g. a task that ignored
            # cancellation) must fail the run too, not just mid-run ones.
            failure = cluster.first_failure()
            if failure is not None:
                raise failure

    asyncio.run(_run())

    assembler = cluster.collect_trace() if trace else None
    measurement = max(duration - config.warmup_seconds, 1e-9)
    result = cluster.metrics.finalize(
        protocol=protocol,
        num_dcs=config.num_dcs,
        clients=config.total_clients,
        measurement_seconds=measurement,
        overhead=cluster.overhead(),
        cpu_utilization=0.0,
        label=label or f"realtime[{transport}] {workload.describe()}",
        visibility_trace=(assembler.visibility_summary()
                          if assembler is not None else None))

    report: Optional[CheckerReport] = None
    if cluster.checker is not None:
        report = cluster.checker.check()
        if check_consistency:
            report.raise_if_violations()
    return RealtimeOutcome(result=result, cluster=cluster,
                           checker_report=report, trace=assembler)


__all__ = ["DEFAULT_REALTIME_DURATION", "RealtimeOutcome",
           "run_realtime_experiment"]
