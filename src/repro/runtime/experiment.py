"""Workload-driven runs on the real-time (asyncio) backend.

:func:`run_realtime_experiment` is the wall-clock sibling of
:func:`repro.harness.runner.run_experiment`: it builds a
:class:`~repro.runtime.cluster.RealtimeCluster`, serves genuinely concurrent
closed-loop clients for a wall-clock duration, and condenses the measured
latencies/overheads into the same :class:`~repro.metrics.collectors.RunResult`
row format the figures use — so simulated and real-time numbers can sit in
the same table (``benchmarks/run_smoke_benchmark.py --backend realtime``).

Real seconds are expensive compared to simulated ones, so the default
duration is deliberately short; pass ``duration_seconds`` explicitly for
longer measurements.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from repro.causal.checker import CheckerReport
from repro.cluster.config import ClusterConfig
from repro.errors import ConfigurationError, RuntimeBackendError
from repro.metrics.collectors import RunResult
from repro.runtime.cluster import RealtimeCluster
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters

#: Default wall-clock run length (seconds) including warmup.
DEFAULT_REALTIME_DURATION = 1.0


@dataclass
class RealtimeOutcome:
    """The full outcome of one real-time run (result row plus state)."""

    result: RunResult
    cluster: RealtimeCluster
    checker_report: Optional[CheckerReport] = None


def run_realtime_experiment(protocol: str,
                            config: Optional[ClusterConfig] = None,
                            workload: Optional[WorkloadParameters] = None, *,
                            duration_seconds: Optional[float] = None,
                            enable_checker: bool = False,
                            check_consistency: bool = False,
                            label: str = "") -> RealtimeOutcome:
    """Run one wall-clock experiment and return its outcome.

    Parameters mirror :func:`repro.harness.runner.run_experiment`;
    ``duration_seconds`` (wall-clock, including the config's warmup window)
    defaults to :data:`DEFAULT_REALTIME_DURATION` rather than the config's
    simulated duration, because real seconds actually elapse.
    """
    config = config or ClusterConfig.test_scale()
    workload = workload or DEFAULT_WORKLOAD
    duration = (DEFAULT_REALTIME_DURATION if duration_seconds is None
                else duration_seconds)
    if duration <= config.warmup_seconds:
        # Mirror ClusterConfig's own duration/warmup validation instead of
        # silently stretching an explicitly requested duration.
        raise ConfigurationError(
            f"duration_seconds ({duration}) must be greater than the "
            f"config's warmup_seconds ({config.warmup_seconds})")

    cluster = RealtimeCluster(protocol, config, workload,
                              enable_checker=enable_checker or check_consistency)

    async def _run() -> None:
        await cluster.start()
        stop = asyncio.Event()
        loops = [asyncio.ensure_future(client.run_closed_loop(stop))
                 for client in cluster.clients]
        await asyncio.sleep(duration)
        stop.set()
        # Closed loops re-check ``stop`` after the in-flight operation; give
        # them a bounded grace period, then tear everything down.  A client
        # loop that died (protocol bug, operation timeout) must FAIL the run
        # — degraded numbers with exit 0 would defeat the CI smoke job.
        stuck: list[asyncio.Task] = []
        errors: list[BaseException] = []
        if loops:
            done, pending = await asyncio.wait(loops, timeout=10.0)
            stuck = list(pending)
            for task in stuck:
                task.cancel()
            if stuck:
                await asyncio.gather(*stuck, return_exceptions=True)
            errors = [error for task in done
                      if not task.cancelled()
                      and (error := task.exception()) is not None]
        await cluster.stop()
        # Root cause first: a dead server pump explains both the client-side
        # timeout errors and any stuck loops.
        failure = cluster.first_failure()
        if failure is not None:
            raise failure
        if errors:
            raise errors[0]
        if stuck:
            raise RuntimeBackendError(
                f"{len(stuck)} closed-loop client(s) failed to stop within "
                f"the grace period (an operation is stuck)")

    asyncio.run(_run())

    measurement = max(duration - config.warmup_seconds, 1e-9)
    result = cluster.metrics.finalize(
        protocol=protocol,
        num_dcs=config.num_dcs,
        clients=config.total_clients,
        measurement_seconds=measurement,
        overhead=cluster.overhead(),
        cpu_utilization=0.0,
        label=label or f"realtime {workload.describe()}")

    report: Optional[CheckerReport] = None
    if cluster.checker is not None:
        report = cluster.checker.check()
        if check_consistency:
            report.raise_if_violations()
    return RealtimeOutcome(result=result, cluster=cluster,
                           checker_report=report)


__all__ = ["DEFAULT_REALTIME_DURATION", "RealtimeOutcome",
           "run_realtime_experiment"]
