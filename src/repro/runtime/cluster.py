"""Real-time cluster: kernels wired over a pluggable transport.

A :class:`RealtimeCluster` is the real-time analogue of the harness builder
plus :class:`~repro.cluster.topology.ClusterTopology`: it instantiates sans-I/O
server kernels (one per local (DC, partition) pair), preloads the keyspace
exactly like the simulated builder, creates clients, and routes kernel
:class:`~repro.core.common.kernel.Send` effects through a
:class:`~repro.runtime.transport.Transport`.  Time is wall-clock
(:class:`~repro.clocks.timesource.WallClock`), so HLC physical components
and Cure's skew-induced blocking are driven by the actual clock.

With the default :class:`~repro.runtime.transport.InprocTransport` every node
lives on one event loop and delivery is a queue enqueue — genuine concurrency
without serialisation cost.  With a
:class:`~repro.runtime.transport.TcpTransport` the cluster holds only the
*local* subset of nodes (``server_ids``) and remote sends become wire-encoded
frames — the building block :class:`~repro.runtime.process.ProcessCluster`
spawns one of per worker process.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Optional

from repro.causal.checker import CausalConsistencyChecker
from repro.clocks.timesource import WallClock
from repro.cluster.config import ClusterConfig
from repro.cluster.partitioning import HashPartitioner
from repro.cluster.seeding import node_rng, preload_initial_keyspace
from repro.core.common.kernel import Addr
from repro.core.registry import resolve_spec
from repro.errors import ConfigurationError, RuntimeBackendError
from repro.metrics.collectors import MetricsRegistry
from repro.metrics.overheads import OverheadCounters
from repro.obs.bus import EventBus
from repro.obs.trace import TraceAssembler
from repro.runtime.nodes import RealtimeClient, RealtimeServer
from repro.runtime.transport import BatchOption, InprocTransport, Transport
from repro.workload.generator import WorkloadGenerator
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters


def client_node_id(dc: int, index: int) -> str:
    """The globally unique id of client ``index`` in data center ``dc``.

    One naming scheme shared by in-process clusters, worker processes and
    the process-cluster peer table, so a client's address is derivable from
    its (DC, index) placement alone.
    """
    return f"client-dc{dc}-{index}"


class RealtimeCluster:
    """The real-time nodes of one run (or of one worker's local slice).

    Parameters
    ----------
    protocol:
        Registered protocol name; the registration must carry kernel classes
        (see :func:`repro.core.registry.register_protocol`).
    config / workload:
        Same objects the simulated builder takes.
    enable_checker:
        Record every PUT/ROT for the causal-consistency checker.
    checker:
        An explicit checker-shaped recorder (``record_put`` /
        ``record_rot``) to use instead of a fresh
        :class:`~repro.causal.checker.CausalConsistencyChecker` — a
        :class:`~repro.causal.streaming.StreamingChecker` for windowed
        validation, or an :class:`~repro.causal.streaming.ObservationBuffer`
        in worker processes that stream their log to the parent.  Implies
        ``enable_checker``.
    workload_clients:
        Create the ``config.clients_per_dc`` closed-loop clients.  The
        :class:`~repro.api.CausalStore` facade passes ``False`` and attaches
        interactive clients instead.
    transport:
        Message delivery between nodes; defaults to a fresh
        :class:`~repro.runtime.transport.InprocTransport`.
    batch:
        Flush policy for the default transport (``True`` for the default
        :class:`~repro.wire.batch.FlushPolicy`); mutually exclusive with an
        explicit ``transport``, which carries its own policy.
    server_ids:
        The (DC, partition) pairs instantiated *locally*; ``None`` (default)
        means the full topology.  Worker processes pass their slice and rely
        on the transport's peer table for everything else.
    trace / trace_source:
        Enable the :mod:`repro.obs` event bus on every local node (wall-clock
        timestamps); ``trace_source`` labels this cluster's event stream in
        the merged timeline (worker processes pass their worker id).
    """

    def __init__(self, protocol: str, config: Optional[ClusterConfig] = None,
                 workload: Optional[WorkloadParameters] = None, *,
                 enable_checker: bool = False,
                 checker: Optional[object] = None,
                 workload_clients: bool = True,
                 transport: Optional[Transport] = None,
                 batch: BatchOption = None,
                 server_ids: Optional[Iterable[tuple[int, int]]] = None,
                 trace: bool = False, trace_source: str = "local") -> None:
        self.protocol = protocol
        self.config = config = config or ClusterConfig()
        self.workload = workload = workload or DEFAULT_WORKLOAD
        spec = resolve_spec(protocol)
        if spec.kernel is None or spec.client_kernel is None:
            raise ConfigurationError(
                f"protocol {protocol!r} is registered without sans-I/O "
                f"kernels; the realtime backend needs them")
        self._spec = spec
        self.clock = WallClock()
        if transport is not None:
            if batch is not None:
                raise ConfigurationError(
                    "pass batch= to the transport constructor when "
                    "supplying an explicit transport")
            self.transport = transport
        else:
            self.transport = InprocTransport(batch=batch)
        self.partitioner = HashPartitioner(config.num_partitions)
        self.metrics = MetricsRegistry(warmup_seconds=config.warmup_seconds)
        if checker is not None:
            self.checker: Optional[object] = checker
        else:
            self.checker = CausalConsistencyChecker() if enable_checker else None
        self.trace_bus: Optional[EventBus] = (
            EventBus(self.clock, source=trace_source) if trace else None)
        if self.trace_bus is not None:
            self.transport.tracer = self.trace_bus
            if self.checker is not None and hasattr(self.checker, "tracer"):
                self.checker.tracer = self.trace_bus
        self._closed = False
        self._started = False

        if server_ids is None:
            server_ids = [(dc, partition)
                          for dc in range(config.num_dcs)
                          for partition in range(config.num_partitions)]
        self.servers: dict[tuple[int, int], RealtimeServer] = {}
        for dc, partition in server_ids:
            skew_rng = node_rng(config.seed, "clock-skew", dc, partition)
            offset = config.skew_model.draw_offset(skew_rng)
            kernel = spec.kernel.from_config(
                config, dc, partition, partitioner=self.partitioner,
                time_source=self.clock, skew_offset_us=offset)
            server = RealtimeServer(self, kernel)
            if self.trace_bus is not None:
                server.tracer = self.trace_bus
                kernel.tracer = self.trace_bus
            self.servers[(dc, partition)] = server
            self.transport.register_local(server.addr, server)
        self._preload_keyspace()

        self.clients: list[RealtimeClient] = []
        self._clients_by_id: dict[str, RealtimeClient] = {}
        if workload_clients:
            for dc in range(config.num_dcs):
                for index in range(config.clients_per_dc):
                    self.add_workload_client(dc, index)

    def _preload_keyspace(self) -> None:
        """Seed every local store with the shared initial-keyspace invariant."""
        preload_initial_keyspace(
            ((partition, server.store)
             for (_dc, partition), server in self.servers.items()),
            num_dcs=self.config.num_dcs,
            keys_per_partition=self.config.keys_per_partition,
            value_size=self.workload.value_size)

    # ---------------------------------------------------------------- clients
    def add_client(self, dc: int, index: int, *,
                   generator=None) -> RealtimeClient:
        """Create (and register) a client bound to data center ``dc``."""
        client_id = client_node_id(dc, index)
        kernel = self._spec.client_kernel.from_config(
            self.config, client_id, dc, partitioner=self.partitioner,
            rng=node_rng(self.config.seed, "client", dc, index))
        client = RealtimeClient(self, kernel, generator=generator)
        if self.trace_bus is not None:
            client.tracer = self.trace_bus
            kernel.tracer = self.trace_bus
        self.clients.append(client)
        self._clients_by_id[client_id] = client
        self.transport.register_local(client.addr, client)
        if self._started:
            client.start()
        return client

    def add_workload_client(self, dc: int, index: int) -> RealtimeClient:
        """Create a closed-loop client with its deterministic generator.

        Used both by the in-process constructor and by worker processes, so
        client ``(dc, index)`` draws the same operation stream wherever it
        is instantiated.
        """
        generator = WorkloadGenerator(
            self.workload, self.partitioner, self.config.keys_per_partition,
            rng=node_rng(self.config.seed, "workload", dc, index))
        return self.add_client(dc, index, generator=generator)

    def clients_in_dc(self, dc: int) -> list[RealtimeClient]:
        """Clients attached to data center ``dc``."""
        return [client for client in self.clients if client.dc_id == dc]

    # ---------------------------------------------------------------- routing
    def route(self, sender: Optional[Addr], dest: Addr, message: object,
              trace: Optional[str] = None) -> None:
        """Deliver a kernel Send effect through the transport."""
        self.transport.send(sender, dest, message, trace)

    # -------------------------------------------------------------- lifecycle
    async def start(self, *, wall_epoch: Optional[float] = None) -> None:
        """Spawn every node's tasks on the running event loop.

        ``wall_epoch`` (a ``time.time()`` instant) aligns this cluster's
        clock with other processes of the same run; without it the clock
        re-zeros locally (the single-process behaviour).
        """
        if self._closed:
            raise RuntimeBackendError("cluster is closed")
        if self._started:
            # Idempotent: a second start must not duplicate pump/timer tasks
            # (doubled stabilization and heartbeat traffic otherwise).
            return
        await self.transport.start()
        # Re-zero the run clock: construction work (keyspace preload) must
        # not eat into the warmup window the metrics discard.
        if wall_epoch is None:
            self.clock.reset()
        else:
            self.clock.sync_to_wall_epoch(wall_epoch)
        self._started = True
        for server in self.servers.values():
            server.start()
        for client in self.clients:
            client.start()

    async def stop(self) -> None:
        """Cancel every node task, then close the transport; idempotent."""
        if self._closed:
            return
        self._closed = True
        for client in self.clients:
            await client.stop()
        for server in self.servers.values():
            await server.stop()
        await self.transport.stop()

    def first_failure(self) -> Optional[BaseException]:
        """The first exception that killed any node task or transport link.

        A dead pump, timer task or peer connection otherwise only manifests
        as downstream operation timeouts; the experiment runner raises this
        root cause instead.
        """
        for node in [*self.servers.values(), *self.clients]:
            if node.failure is not None:
                return node.failure
        return self.transport.failure

    # ------------------------------------------------------------------ trace
    def collect_trace(self) -> Optional[TraceAssembler]:
        """Drain the local event bus into a fresh assembler (None if off)."""
        bus = self.trace_bus
        if bus is None:
            return None
        assembler = TraceAssembler()
        assembler.ingest_bus(bus)
        return assembler

    # ------------------------------------------------------------------ stats
    def overhead(self) -> OverheadCounters:
        """Merged overhead counters across all local partition servers."""
        overhead = OverheadCounters()
        for server in self.servers.values():
            overhead.merge(server.counters)
        return overhead


#: Grace period for closed loops to finish their in-flight operation after
#: the stop event is set.
CLOSED_LOOP_GRACE_SECONDS = 10.0


async def drive_closed_loops(cluster: RealtimeCluster,
                             duration_seconds: float) -> None:
    """Serve ``cluster``'s closed-loop clients for a wall-clock duration.

    Starts one loop per client, lets them run for ``duration_seconds``, then
    stops them with a bounded grace period.  A client loop that died
    (protocol bug, operation timeout) FAILS the call — degraded numbers with
    exit 0 would defeat the CI smoke jobs.  Used by the in-process
    experiment runner and, per worker process, by the TCP process cluster.
    The caller owns cluster start/stop.
    """
    stop = asyncio.Event()
    loops = [asyncio.ensure_future(client.run_closed_loop(stop))
             for client in cluster.clients]
    await asyncio.sleep(duration_seconds)
    stop.set()
    stuck: list[asyncio.Task] = []
    errors: list[BaseException] = []
    if loops:
        done, pending = await asyncio.wait(
            loops, timeout=CLOSED_LOOP_GRACE_SECONDS)
        stuck = list(pending)
        for task in stuck:
            task.cancel()
        if stuck:
            await asyncio.gather(*stuck, return_exceptions=True)
        errors = [error for task in done
                  if not task.cancelled()
                  and (error := task.exception()) is not None]
    # Root cause first: a dead server pump explains both the client-side
    # timeout errors and any stuck loops.
    failure = cluster.first_failure()
    if failure is not None:
        raise failure
    if errors:
        raise errors[0]
    if stuck:
        raise RuntimeBackendError(
            f"{len(stuck)} closed-loop client(s) failed to stop within "
            f"the grace period (an operation is stuck)")


__all__ = ["CLOSED_LOOP_GRACE_SECONDS", "RealtimeCluster", "client_node_id",
           "drive_closed_loops"]
