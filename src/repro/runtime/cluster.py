"""In-process real-time cluster: kernels wired over asyncio mailboxes.

A :class:`RealtimeCluster` is the real-time analogue of the harness builder
plus :class:`~repro.cluster.topology.ClusterTopology`: it instantiates one
sans-I/O server kernel per (DC, partition) pair, preloads the keyspace
exactly like the simulated builder, creates clients, and routes kernel
:class:`~repro.core.common.kernel.Send` effects between the nodes'
:class:`asyncio.Queue` mailboxes.  Time is wall-clock
(:class:`~repro.clocks.timesource.WallClock`), so HLC physical components
and Cure's skew-induced blocking are driven by the actual clock.

Message channels are in-process queues: delivery is FIFO per receiver and
effectively instantaneous — the real-time backend measures protocol and
scheduling behaviour under genuine concurrency, not WAN latency (the
simulator models that).
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional

from repro.causal.checker import CausalConsistencyChecker
from repro.clocks.timesource import WallClock
from repro.cluster.config import ClusterConfig
from repro.cluster.partitioning import HashPartitioner
from repro.cluster.seeding import preload_initial_keyspace
from repro.core.common.kernel import Addr, ClientAddr, ServerAddr
from repro.core.registry import resolve_spec
from repro.errors import ConfigurationError, RuntimeBackendError
from repro.metrics.collectors import MetricsRegistry
from repro.metrics.overheads import OverheadCounters
from repro.runtime.nodes import RealtimeClient, RealtimeServer
from repro.workload.generator import WorkloadGenerator
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters


class RealtimeCluster:
    """All real-time nodes of one run, indexed by DC and partition.

    Parameters
    ----------
    protocol:
        Registered protocol name; the registration must carry kernel classes
        (see :func:`repro.core.registry.register_protocol`).
    config / workload:
        Same objects the simulated builder takes.
    enable_checker:
        Record every PUT/ROT for the causal-consistency checker.
    workload_clients:
        Create the ``config.clients_per_dc`` closed-loop clients.  The
        :class:`~repro.api.CausalStore` facade passes ``False`` and attaches
        interactive clients instead.
    """

    def __init__(self, protocol: str, config: Optional[ClusterConfig] = None,
                 workload: Optional[WorkloadParameters] = None, *,
                 enable_checker: bool = False,
                 workload_clients: bool = True) -> None:
        self.protocol = protocol
        self.config = config = config or ClusterConfig()
        self.workload = workload = workload or DEFAULT_WORKLOAD
        spec = resolve_spec(protocol)
        if spec.kernel is None or spec.client_kernel is None:
            raise ConfigurationError(
                f"protocol {protocol!r} is registered without sans-I/O "
                f"kernels; the realtime backend needs them")
        self._spec = spec
        self.clock = WallClock()
        self.partitioner = HashPartitioner(config.num_partitions)
        self.metrics = MetricsRegistry(warmup_seconds=config.warmup_seconds)
        self.checker = CausalConsistencyChecker() if enable_checker else None
        self._closed = False
        self._started = False

        self.servers: dict[tuple[int, int], RealtimeServer] = {}
        for dc in range(config.num_dcs):
            for partition in range(config.num_partitions):
                skew_rng = random.Random(
                    f"{config.seed}:clock-skew:{dc}:{partition}")
                offset = config.skew_model.draw_offset(skew_rng)
                kernel = spec.kernel.from_config(
                    config, dc, partition, partitioner=self.partitioner,
                    time_source=self.clock, skew_offset_us=offset)
                self.servers[(dc, partition)] = RealtimeServer(self, kernel)
        self._preload_keyspace()

        self.clients: list[RealtimeClient] = []
        self._clients_by_id: dict[str, RealtimeClient] = {}
        if workload_clients:
            for dc in range(config.num_dcs):
                for index in range(config.clients_per_dc):
                    generator = WorkloadGenerator(
                        workload, self.partitioner, config.keys_per_partition,
                        rng=random.Random(f"{config.seed}:workload:{dc}:{index}"))
                    self.add_client(dc, index, generator=generator)

    def _preload_keyspace(self) -> None:
        """Seed every store with the shared initial-keyspace invariant."""
        preload_initial_keyspace(
            ((partition, server.store)
             for (_dc, partition), server in self.servers.items()),
            num_dcs=self.config.num_dcs,
            keys_per_partition=self.config.keys_per_partition,
            value_size=self.workload.value_size)

    # ---------------------------------------------------------------- clients
    def add_client(self, dc: int, index: int, *,
                   generator=None) -> RealtimeClient:
        """Create (and register) a client bound to data center ``dc``."""
        client_id = f"client-dc{dc}-{index}"
        kernel = self._spec.client_kernel.from_config(
            self.config, client_id, dc, partitioner=self.partitioner,
            rng=random.Random(f"{self.config.seed}:client:{dc}:{index}"))
        client = RealtimeClient(self, kernel, generator=generator)
        self.clients.append(client)
        self._clients_by_id[client_id] = client
        if self._started:
            client.start()
        return client

    def clients_in_dc(self, dc: int) -> list[RealtimeClient]:
        """Clients attached to data center ``dc``."""
        return [client for client in self.clients if client.dc_id == dc]

    # ---------------------------------------------------------------- routing
    def route(self, sender: Optional[Addr], dest: Addr, message: object) -> None:
        """Deliver a kernel Send effect to the destination mailbox."""
        if isinstance(dest, ServerAddr):
            try:
                node = self.servers[(dest.dc, dest.partition)]
            except KeyError as exc:
                raise ConfigurationError(
                    f"no server at DC {dest.dc} partition {dest.partition}") \
                    from exc
        elif isinstance(dest, ClientAddr):
            try:
                node = self._clients_by_id[dest.client_id]
            except KeyError as exc:
                raise ConfigurationError(
                    f"unknown client {dest.client_id!r}") from exc
        else:
            raise ConfigurationError(f"cannot route to {dest!r}")
        node.deliver(sender, message)

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Spawn every node's tasks on the running event loop."""
        if self._closed:
            raise RuntimeBackendError("cluster is closed")
        if self._started:
            # Idempotent: a second start must not duplicate pump/timer tasks
            # (doubled stabilization and heartbeat traffic otherwise).
            return
        # Re-zero the run clock: construction work (keyspace preload) must
        # not eat into the warmup window the metrics discard.
        self.clock.reset()
        self._started = True
        for server in self.servers.values():
            server.start()
        for client in self.clients:
            client.start()

    async def stop(self) -> None:
        """Cancel every node task; idempotent."""
        if self._closed:
            return
        self._closed = True
        for client in self.clients:
            await client.stop()
        for server in self.servers.values():
            await server.stop()

    def first_failure(self) -> Optional[BaseException]:
        """The first exception that killed any node task, if one did.

        A dead pump or timer task otherwise only manifests as downstream
        operation timeouts; the experiment runner raises this root cause
        instead.
        """
        for node in [*self.servers.values(), *self.clients]:
            if node.failure is not None:
                return node.failure
        return None

    # ------------------------------------------------------------------ stats
    def overhead(self) -> OverheadCounters:
        """Merged overhead counters across all partition servers."""
        overhead = OverheadCounters()
        for server in self.servers.values():
            overhead.merge(server.counters)
        return overhead


__all__ = ["RealtimeCluster"]
