"""Causal-consistency checker for recorded histories.

Every protocol run can record its history (PUTs with their causal context and
ROT results) and hand it to this checker, which verifies the guarantees the
paper's system model requires (Section 2.2):

1. **Causally consistent snapshots** — if a ROT returns ``X`` for key ``x``
   and ``Y`` for key ``y``, there must be no ``X'`` with ``X ; X' ; Y``.
   Operationally: for every version ``Y`` returned by the ROT and every other
   requested key ``x``, if some version ``X'`` of ``x`` lies in the causal
   past of ``Y`` and the version ``X`` actually returned for ``x`` lies in the
   causal past of ``X'``, the snapshot is invalid.
2. **Session guarantees** — read-your-writes and monotonic reads per client,
   which follow from causal consistency for single threads of execution.

Versions are identified by ``(key, timestamp, origin_dc)``: timestamps from
different data centers live in different clock domains (CC-LO uses per-server
Lamport clocks), so the origin DC is part of the identity and cross-DC
timestamps are never compared directly.  Candidate anomalies found through
per-key timestamp comparison are confirmed with an explicit reachability test
over the recorded dependency graph, so versions that are merely *concurrent*
with a newer one are not reported as violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ConsistencyViolation

#: A version is identified by ``(key, timestamp, origin_dc)``.
VersionId = tuple[str, int, int]


@dataclass(frozen=True)
class RecordedPut:
    """A PUT as recorded in a history."""

    key: str
    timestamp: int
    origin_dc: int
    client: str
    sequence: int
    dependencies: tuple[tuple[str, int, int], ...] = ()

    @property
    def version_id(self) -> VersionId:
        return (self.key, self.timestamp, self.origin_dc)


@dataclass(frozen=True)
class RecordedRead:
    """One key's result within a recorded ROT."""

    key: str
    timestamp: Optional[int]
    origin_dc: int = 0

    @property
    def version_id(self) -> Optional[VersionId]:
        if self.timestamp is None:
            return None
        return (self.key, self.timestamp, self.origin_dc)


@dataclass(frozen=True)
class RecordedRot:
    """A ROT as recorded in a history."""

    rot_id: str
    client: str
    sequence: int
    reads: tuple[RecordedRead, ...]


@dataclass
class CheckerReport:
    """Summary of a checker run."""

    puts: int = 0
    rots: int = 0
    snapshot_violations: list[str] = field(default_factory=list)
    session_violations: list[str] = field(default_factory=list)
    #: Divergent final reads on quiesced histories.  Only the streaming
    #: checker populates this (opt-in, see
    #: :class:`repro.causal.streaming.StreamingChecker`); the monolithic
    #: checker leaves it empty, so reports stay comparable.
    convergence_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.snapshot_violations and not self.session_violations
                and not self.convergence_violations)

    def raise_if_violations(self) -> None:
        """Raise :class:`ConsistencyViolation` if any violation was found."""
        if not self.ok:
            problems = (self.snapshot_violations + self.session_violations
                        + self.convergence_violations)
            raise ConsistencyViolation("; ".join(problems[:10]))


class CausalConsistencyChecker:
    """Validates recorded histories against the causal-consistency model."""

    def __init__(self) -> None:
        self._puts: dict[VersionId, RecordedPut] = {}
        self._rots: list[RecordedRot] = []
        # Memoised "newest version per key in the causal past" maps.  Versions
        # of the same key from different DCs are summarised separately (the
        # map value is a per-origin dict) so no cross-DC comparison happens.
        # Invalidation is a dirty flag rather than a clear-per-record: the
        # caches are dropped lazily on the first query after new PUTs, so a
        # record-everything-then-check run never throws warm entries away.
        self._closure_cache: dict[VersionId, dict[tuple[str, int], int]] = {}
        self._ancestor_cache: dict[tuple[VersionId, VersionId], bool] = {}
        self._caches_stale = False

    # -------------------------------------------------------------- recording
    def record_put(self, put: RecordedPut) -> None:
        """Record one PUT event."""
        self._puts[put.version_id] = put
        self._caches_stale = True

    def record_rot(self, rot: RecordedRot) -> None:
        """Record one completed ROT."""
        self._rots.append(rot)

    def record_history(self, puts: Iterable[RecordedPut],
                       rots: Iterable[RecordedRot]) -> None:
        """Record many events at once (convenience for tests)."""
        for put in puts:
            self.record_put(put)
        for rot in rots:
            self.record_rot(rot)

    def recorded_history(self) -> tuple[tuple[RecordedPut, ...],
                                        tuple[RecordedRot, ...]]:
        """Every recorded event, for shipping across process boundaries.

        The inverse of :meth:`record_history`: a worker process records its
        clients' operations locally, ships the history over the wire, and
        the parent folds it into the run-wide checker.
        """
        return tuple(self._puts.values()), tuple(self._rots)

    @property
    def recorded_puts(self) -> int:
        return len(self._puts)

    @property
    def recorded_rots(self) -> int:
        return len(self._rots)

    # ------------------------------------------------------------------ check
    def check(self) -> CheckerReport:
        """Run all checks and return a report (does not raise)."""
        report = CheckerReport(puts=len(self._puts), rots=len(self._rots))
        for rot in self._rots:
            self._check_snapshot(rot, report)
        self._check_sessions(report)
        return report

    # -------------------------------------------------------- causal structure
    def _refresh_caches(self) -> None:
        """Drop memoised closures if PUTs were recorded since the last query.

        A new PUT can extend the causal past of versions that depend on it,
        so any cached summary may be stale; correctness needs the drop, the
        dirty flag merely defers it to the next query so that recording N
        PUTs costs no N cache clears.
        """
        if self._caches_stale:
            self._closure_cache.clear()
            self._ancestor_cache.clear()
            self._caches_stale = False

    def _causal_past(self, version_id: VersionId) -> dict[tuple[str, int], int]:
        """Newest timestamp per ``(key, origin_dc)`` in the causal past.

        Built bottom-up with memoisation so long dependency chains (the norm
        with closed-loop clients) are expanded only once.
        """
        self._refresh_caches()
        cached = self._closure_cache.get(version_id)
        if cached is not None:
            return cached
        start = self._puts.get(version_id)
        if start is None:
            self._closure_cache[version_id] = {}
            return {}
        stack: list[tuple[RecordedPut, bool]] = [(start, False)]
        in_progress: set[VersionId] = set()
        while stack:
            current, expanded = stack.pop()
            if current.version_id in self._closure_cache:
                continue
            dep_puts = [self._puts[dep] for dep in current.dependencies
                        if dep in self._puts]
            if not expanded:
                in_progress.add(current.version_id)
                stack.append((current, True))
                for dep_put in dep_puts:
                    if dep_put.version_id not in self._closure_cache \
                            and dep_put.version_id not in in_progress:
                        stack.append((dep_put, False))
                continue
            newest: dict[tuple[str, int], int] = {}
            for key, ts, origin in current.dependencies:
                slot = (key, origin)
                if newest.get(slot, -1) < ts:
                    newest[slot] = ts
            for dep_put in dep_puts:
                for slot, ts in self._closure_cache.get(dep_put.version_id, {}).items():
                    if newest.get(slot, -1) < ts:
                        newest[slot] = ts
            self._closure_cache[current.version_id] = newest
        return self._closure_cache[version_id]

    def _is_ancestor(self, ancestor: VersionId, descendant: VersionId) -> bool:
        """Whether ``ancestor`` precedes ``descendant`` in the causal-cut order.

        The test uses the memoised per-``(key, origin)`` summary of the
        descendant's causal past: ``ancestor`` precedes ``descendant`` when the
        past contains a version of the same key *from the same origin DC* with
        a timestamp at least as large.  Timestamps of the same key and origin
        are assigned by one partition server, so this order is exactly the
        per-key convergence (last-writer-wins) order the protocols use to pick
        which version a snapshot may return; cross-DC timestamps are never
        compared.
        """
        if ancestor == descendant:
            return False
        self._refresh_caches()
        cache_key = (ancestor, descendant)
        cached = self._ancestor_cache.get(cache_key)
        if cached is not None:
            return cached
        past = self._causal_past(descendant)
        key, ts, origin = ancestor
        result = past.get((key, origin), -1) >= ts
        self._ancestor_cache[cache_key] = result
        return result

    # ------------------------------------------------------- snapshot checking
    def _check_snapshot(self, rot: RecordedRot, report: CheckerReport) -> None:
        returned: dict[str, RecordedRead] = {read.key: read for read in rot.reads}
        for read in rot.reads:
            version_id = read.version_id
            if version_id is None or version_id not in self._puts:
                # Preloaded versions have no recorded PUT and no dependencies.
                continue
            past = self._causal_past(version_id)
            for (dep_key, dep_origin), dep_ts in past.items():
                other = returned.get(dep_key)
                if other is None or dep_key == read.key:
                    continue
                required_id: VersionId = (dep_key, dep_ts, dep_origin)
                other_id = other.version_id
                if other_id == required_id:
                    continue
                candidate = (other_id is None
                             or (other.origin_dc == dep_origin
                                 and other.timestamp is not None
                                 and other.timestamp < dep_ts)
                             or (other.origin_dc != dep_origin))
                if not candidate:
                    continue
                # Confirm the anomaly: the returned version must itself be in
                # the causal past of the required one (otherwise the two are
                # concurrent and the snapshot is still a valid causal cut).
                # The preloaded initial version (timestamp 0, never recorded
                # as a PUT) precedes every recorded version of its key.
                returned_is_initial = (other_id is not None
                                       and other.timestamp == 0
                                       and other_id not in self._puts)
                if other_id is None or returned_is_initial \
                        or self._is_ancestor(other_id, required_id):
                    report.snapshot_violations.append(
                        f"ROT {rot.rot_id}: returned {dep_key}@"
                        f"{other.timestamp if other else None} but "
                        f"{read.key}@{read.timestamp} causally depends on "
                        f"{dep_key}@{dep_ts} (origin DC {dep_origin})")

    # -------------------------------------------------------- session checking
    def _check_sessions(self, report: CheckerReport) -> None:
        """Check read-your-writes and monotonic reads per client."""
        per_client: dict[str, list[tuple[int, str, object]]] = {}
        for put in self._puts.values():
            per_client.setdefault(put.client, []).append((put.sequence, "put", put))
        for rot in self._rots:
            per_client.setdefault(rot.client, []).append((rot.sequence, "rot", rot))
        for client, operations in per_client.items():
            operations.sort(key=lambda entry: entry[0])
            observed: dict[str, VersionId] = {}
            for _, kind, op in operations:
                if kind == "put":
                    put = op  # type: ignore[assignment]
                    observed[put.key] = put.version_id
                    continue
                rot = op  # type: ignore[assignment]
                for read in rot.reads:
                    previous = observed.get(read.key)
                    if previous is None:
                        if read.version_id is not None:
                            observed[read.key] = read.version_id
                        continue
                    current = read.version_id
                    went_backwards = (
                        current is None
                        or (current != previous
                            and self._is_ancestor(current, previous)))
                    if went_backwards:
                        report.session_violations.append(
                            f"client {client}: ROT {rot.rot_id} read "
                            f"{read.key}@{read.timestamp} after having observed "
                            f"{previous[1]} (origin DC {previous[2]})")
                    elif current is not None and previous != current \
                            and self._is_ancestor(previous, current):
                        observed[read.key] = current


__all__ = [
    "CausalConsistencyChecker",
    "CheckerReport",
    "RecordedPut",
    "RecordedRead",
    "RecordedRot",
    "VersionId",
]
