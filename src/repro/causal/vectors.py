"""Vector-clock style helpers used by Contrarian and Cure.

Both protocols encode causality with *per-DC* vectors (Section 4): items carry
a dependency vector ``DV`` with one entry per data center, servers maintain a
version vector ``VV`` and the stabilization protocol computes the Global
Stable Snapshot ``GSS`` as the entry-wise minimum of all ``VV`` in a DC.

Vectors are represented as plain tuples of ints so they can be stored on
frozen dataclasses and compared cheaply.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ProtocolError


def zero_vector(num_dcs: int) -> tuple[int, ...]:
    """An all-zero vector with one entry per data center."""
    if num_dcs < 1:
        raise ProtocolError(f"a vector needs at least one entry, got {num_dcs}")
    return (0,) * num_dcs


def _check_same_length(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ProtocolError(
            f"vector length mismatch: {len(a)} vs {len(b)} ({a!r} vs {b!r})")


def entrywise_max(a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
    """Entry-wise maximum of two vectors."""
    _check_same_length(a, b)
    return tuple(max(x, y) for x, y in zip(a, b))


def entrywise_min(a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
    """Entry-wise minimum of two vectors."""
    _check_same_length(a, b)
    return tuple(min(x, y) for x, y in zip(a, b))


def entrywise_min_all(vectors: Iterable[Sequence[int]]) -> tuple[int, ...]:
    """Entry-wise minimum of a non-empty collection of vectors."""
    result: tuple[int, ...] | None = None
    for vector in vectors:
        if result is None:
            result = tuple(vector)
        else:
            result = entrywise_min(result, vector)
    if result is None:
        raise ProtocolError("entrywise_min_all requires at least one vector")
    return result


def vector_leq(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether ``a`` <= ``b`` entry-wise.

    This is the snapshot-membership test: an item with dependency vector
    ``DV`` belongs to the snapshot ``SV`` iff ``vector_leq(DV, SV)``.
    """
    _check_same_length(a, b)
    return all(x <= y for x, y in zip(a, b))


def with_entry(vector: Sequence[int], index: int, value: int) -> tuple[int, ...]:
    """Return a copy of ``vector`` with ``vector[index]`` replaced by ``value``."""
    if not 0 <= index < len(vector):
        raise ProtocolError(f"index {index} out of range for vector of length {len(vector)}")
    result = list(vector)
    result[index] = value
    return tuple(result)


__all__ = [
    "entrywise_max",
    "entrywise_min",
    "entrywise_min_all",
    "vector_leq",
    "with_entry",
    "zero_vector",
]
