"""Deterministic synthetic causal histories for checker benchmarks.

The checker benchmark (``benchmarks/run_checker_benchmark.py``) needs
million-operation histories that are (a) reproducible bit-for-bit from a
seed, (b) *violation-free* — so a reported violation always means a checker
bug, never workload noise — and (c) generated in O(keys × lag) memory, so
the measured peak belongs to the checker under test rather than the
generator.

The generator maintains a virtual global put log and gives every client a
monotone **visibility cut** into it: a prefix index that only advances
(``max(previous cut, log length - visibility_lag, own last put)``).  Each
ROT returns, per key, the newest version at or below the client's cut.
Because every read comes from one prefix cut, every dependency of a
returned version lies inside that same prefix, and per-origin timestamps
increase along the log — so snapshots are causally consistent and sessions
monotone by construction (the properties the checkers verify).  The
``own last put`` term keeps read-your-writes; the ``- visibility_lag`` term
models replication lag while bounding how stale any read can be, which also
keeps every causal reference inside the streaming checker's retirement
horizon for any reasonable window size.

Dependencies mirror the runtime's client contexts: each put carries the
client's last ``context_size`` observed versions, so frontier computation
does real transitive work instead of degenerating to empty dep lists.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.causal.checker import RecordedPut, RecordedRead, RecordedRot
from repro.errors import ConfigurationError

#: One generated operation: ``("put", RecordedPut)`` or ``("rot", RecordedRot)``.
SynthOp = tuple[str, Union[RecordedPut, RecordedRot]]


@dataclass(frozen=True)
class SynthParameters:
    """Shape of the synthetic workload (defaults match the benchmark)."""

    clients: int = 8
    keys: int = 32
    dcs: int = 2
    write_fraction: float = 0.5
    reads_per_rot: int = 2
    #: Dependency-context entries carried per client (the runtime's
    #: dependency metadata analogue).
    context_size: int = 4
    #: How far (in log entries) a client's visibility cut may trail the
    #: global put log — the synthetic replication lag.
    visibility_lag: int = 48
    seed: int = 1234

    def validate(self) -> None:
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1: {self.clients}")
        if self.keys < 1:
            raise ConfigurationError(f"keys must be >= 1: {self.keys}")
        if self.dcs < 1:
            raise ConfigurationError(f"dcs must be >= 1: {self.dcs}")
        if not 0.0 < self.write_fraction < 1.0:
            raise ConfigurationError(
                f"write_fraction must be in (0, 1): {self.write_fraction}")
        if self.reads_per_rot < 1:
            raise ConfigurationError(
                f"reads_per_rot must be >= 1: {self.reads_per_rot}")
        if self.context_size < 0:
            raise ConfigurationError(
                f"context_size must be >= 0: {self.context_size}")
        if self.visibility_lag < 0:
            raise ConfigurationError(
                f"visibility_lag must be >= 0: {self.visibility_lag}")


def _latest_at(versions: deque, cut: int) -> Optional[tuple[int, int, int]]:
    """Newest ``(index, timestamp, origin)`` entry with index <= cut."""
    for entry in reversed(versions):
        if entry[0] <= cut:
            return entry
    return None


def generate_history(total_ops: int,
                     params: Optional[SynthParameters] = None,
                     ) -> Iterator[SynthOp]:
    """Yield ``total_ops`` operations of a violation-free causal history.

    A generator so million-op histories can be streamed straight into a
    :class:`~repro.causal.streaming.StreamingChecker` without ever being
    materialised; :func:`materialize` collects the same stream into the
    monolithic checker's ``(puts, rots)`` shape.
    """
    params = params or SynthParameters()
    params.validate()
    if total_ops < 0:
        raise ConfigurationError(f"total_ops must be >= 0: {total_ops}")
    rng = random.Random(params.seed)
    clients = [f"client-{i}" for i in range(params.clients)]
    key_names = [f"key-{i:03d}" for i in range(params.keys)]
    sequences = {client: 0 for client in clients}
    cuts = {client: 0 for client in clients}
    own_put = {client: 0 for client in clients}
    contexts: dict[str, list[tuple[str, int, int]]] = {
        client: [] for client in clients}
    timestamps = [0] * params.dcs
    #: Per-key version log entries ``(global index, timestamp, origin)``,
    #: pruned below to O(visibility_lag) each.
    store: dict[str, deque] = {key: deque() for key in key_names}
    log_length = 0
    rot_count = 0

    def observe(client: str, version: tuple[str, int, int]) -> None:
        context = contexts[client]
        if version in context:
            context.remove(version)
        context.append(version)
        if len(context) > params.context_size:
            del context[0]

    for _ in range(total_ops):
        client = clients[rng.randrange(params.clients)]
        sequences[client] += 1
        cut = max(cuts[client], log_length - params.visibility_lag,
                  own_put[client])
        cuts[client] = cut
        if rng.random() < params.write_fraction:
            origin = rng.randrange(params.dcs)
            timestamps[origin] += 1
            key = key_names[rng.randrange(params.keys)]
            put = RecordedPut(key=key, timestamp=timestamps[origin],
                              origin_dc=origin, client=client,
                              sequence=sequences[client],
                              dependencies=tuple(contexts[client]))
            log_length += 1
            own_put[client] = log_length
            versions = store[key]
            versions.append((log_length, put.timestamp, origin))
            # Keep the newest entry at/below every possible cut (cuts are
            # always >= log_length - visibility_lag) plus everything newer.
            floor = log_length - params.visibility_lag
            while len(versions) > 1 and versions[1][0] <= floor:
                versions.popleft()
            observe(client, (key, put.timestamp, origin))
            yield "put", put
        else:
            rot_count += 1
            keys = rng.sample(key_names,
                              k=min(params.reads_per_rot, params.keys))
            reads = []
            for key in keys:
                entry = _latest_at(store[key], cut)
                if entry is None:
                    # Preloaded initial version, never written within the cut.
                    reads.append(RecordedRead(key=key, timestamp=0,
                                              origin_dc=0))
                else:
                    _index, timestamp, origin = entry
                    reads.append(RecordedRead(key=key, timestamp=timestamp,
                                              origin_dc=origin))
                    observe(client, (key, timestamp, origin))
            yield "rot", RecordedRot(rot_id=f"synth-{rot_count}",
                                     client=client,
                                     sequence=sequences[client],
                                     reads=tuple(reads))


def materialize(total_ops: int,
                params: Optional[SynthParameters] = None,
                ) -> tuple[list[RecordedPut], list[RecordedRot]]:
    """Collect :func:`generate_history` into ``(puts, rots)`` lists (the
    monolithic checker's record order — which is also session order here,
    because the stream interleaves each client's operations in sequence)."""
    puts: list[RecordedPut] = []
    rots: list[RecordedRot] = []
    for kind, op in generate_history(total_ops, params):
        (puts if kind == "put" else rots).append(op)
    return puts, rots


__all__ = ["SynthOp", "SynthParameters", "generate_history", "materialize"]
