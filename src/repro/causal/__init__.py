"""Causality metadata: dependency vectors, snapshots, stabilization, checking."""

from repro.causal.checker import CausalConsistencyChecker, CheckerReport
from repro.causal.dependencies import ClientDependencyContext
from repro.causal.stabilization import GlobalStableSnapshot
from repro.causal.streaming import ObservationBuffer, StreamingChecker
from repro.causal.synth import SynthParameters, generate_history, materialize
from repro.causal.vectors import (
    entrywise_max,
    entrywise_min,
    vector_leq,
    zero_vector,
)

__all__ = [
    "CausalConsistencyChecker",
    "CheckerReport",
    "ClientDependencyContext",
    "GlobalStableSnapshot",
    "ObservationBuffer",
    "StreamingChecker",
    "SynthParameters",
    "entrywise_max",
    "entrywise_min",
    "generate_history",
    "materialize",
    "vector_leq",
    "zero_vector",
]
