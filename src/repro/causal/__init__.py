"""Causality metadata: dependency vectors, snapshots, stabilization, checking."""

from repro.causal.checker import CausalConsistencyChecker, CheckerReport
from repro.causal.dependencies import ClientDependencyContext
from repro.causal.stabilization import GlobalStableSnapshot
from repro.causal.vectors import (
    entrywise_max,
    entrywise_min,
    vector_leq,
    zero_vector,
)

__all__ = [
    "CausalConsistencyChecker",
    "CheckerReport",
    "ClientDependencyContext",
    "GlobalStableSnapshot",
    "entrywise_max",
    "entrywise_min",
    "vector_leq",
    "zero_vector",
]
