"""Global Stable Snapshot (GSS) computation.

Contrarian and Cure determine the visibility of remotely-replicated items with
a *stabilization protocol* (Section 4): every partition periodically exchanges
its version vector ``VV`` with the other partitions in its DC and computes the
entry-wise minimum, the GSS.  An item replicated from DC ``i`` with timestamp
``t`` is visible in the local DC once ``GSS[i] >= t``: all of its causal
dependencies from DC ``i`` (which have smaller timestamps) must already have
arrived.

This module holds the *state* of the computation for one partition; the
periodic broadcast itself is driven by the protocol servers so the messages go
through the simulated network and are charged CPU time.
"""

from __future__ import annotations

from typing import Sequence

from repro.causal.vectors import entrywise_max, entrywise_min_all, zero_vector
from repro.errors import ProtocolError


class GlobalStableSnapshot:
    """Tracks the known version vectors of the partitions in one DC.

    Parameters
    ----------
    num_dcs:
        Number of data centers (vector width).
    num_partitions:
        Number of partitions in the local DC participating in stabilization.
    partition_index:
        Index of the partition owning this instance.
    """

    def __init__(self, num_dcs: int, num_partitions: int, partition_index: int) -> None:
        if not 0 <= partition_index < num_partitions:
            raise ProtocolError(
                f"partition_index {partition_index} out of range [0, {num_partitions})")
        self._num_dcs = num_dcs
        self._known_vv: list[tuple[int, ...]] = [zero_vector(num_dcs)
                                                 for _ in range(num_partitions)]
        self._partition_index = partition_index
        self._gss = zero_vector(num_dcs)

    @property
    def gss(self) -> tuple[int, ...]:
        """The current Global Stable Snapshot (entry-wise minimum of VVs)."""
        return self._gss

    def update_local_vv(self, vv: Sequence[int]) -> None:
        """Record this partition's own version vector."""
        self._record(self._partition_index, vv)

    def observe_remote_vv(self, partition_index: int, vv: Sequence[int]) -> tuple[int, ...]:
        """Record a VV received from another partition and recompute the GSS."""
        self._record(partition_index, vv)
        return self._gss

    def _record(self, partition_index: int, vv: Sequence[int]) -> None:
        if len(vv) != self._num_dcs:
            raise ProtocolError(
                f"version vector has {len(vv)} entries, expected {self._num_dcs}")
        # VV entries never move backwards; guard against reordered messages.
        current = self._known_vv[partition_index]
        self._known_vv[partition_index] = entrywise_max(current, tuple(vv))
        self._gss = entrywise_min_all(self._known_vv)

    def merge_observed_gss(self, other: Sequence[int]) -> tuple[int, ...]:
        """Merge a GSS observed from a client or coordinator (entry-wise max).

        Clients piggyback the freshest GSS they have seen on their requests so
        that they observe monotonically increasing snapshots; a partition
        merging that value may only move its own view forward.
        """
        self._gss = entrywise_max(self._gss, tuple(other))
        return self._gss


__all__ = ["GlobalStableSnapshot"]
