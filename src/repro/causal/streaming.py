"""Streaming GSS-windowed consistency checker: bounded memory, parallel windows.

:class:`~repro.causal.checker.CausalConsistencyChecker` buffers the entire
history and re-walks the dependency graph per ROT, which makes million-op
:class:`~repro.runtime.process.ProcessCluster` histories infeasible to check.
This module is the scalable sibling: a :class:`StreamingChecker` that ingests
the observation log *incrementally*, verifies it in **windows**, and retires
versions once every ingestion source has moved past them — the same idea the
paper's vector protocols use for the Global Stable Snapshot, applied to
offline validation.

Windowing model
---------------
Operations accumulate in arrival order into fixed-size windows of
``window_ops`` operations.  A full window *seals* — is handed to the
verifiers — only once the **global stable vector** covers it: for every
origin DC named by the window (by a put's timestamp, a dependency entry or a
read result), every ingestion source's running high-water mark for that
origin has reached the window's maximum.  Exactly like a GSS entry, the
stable vector is the entry-wise minimum over sources of per-origin maxima,
and a window below it can still receive causally relevant versions from a
lagging source, so it waits.  With a single source (synthetic histories, the
in-process runtime) the gate is always satisfied and windows seal purely by
op count.  If a source stalls, the buffered backlog is bounded: once
``window_ops * force_seal_factor`` operations are pending, the oldest window
seals anyway (missing puts then degrade exactly like the monolithic
checker's never-recorded puts: checks involving them are skipped, never
misreported).

``retire_lag`` windows after sealing, a window's puts are *retired* —
dropped from the live version index — so memory is O(window), not
O(history).  The documented horizon assumption is that a causal reference
(dependency, session predecessor, snapshot witness) points at most
``retire_lag`` sealed windows back; real runs satisfy this by construction
because the seal gate itself lags ingestion by replication delay, and the
checker benchmark validates a million-op history with a flat live-set curve.

Equivalence with the monolithic checker
---------------------------------------
The verifiers are literal re-implementations of the monolithic checks over
the live window (same candidate filter, same confirmation rule, same message
strings), and report assembly replays the monolithic ordering: snapshot
violations in ROT record order, session violations grouped per client with
clients ordered by first appearance (writers before pure readers).  On any
history whose references stay inside the retirement horizon the two checkers
produce equal :class:`~repro.causal.checker.CheckerReport` objects —
``tests/test_streaming_checker.py`` pins this for all three protocols and
for violations injected inside, across and at window boundaries.

Window verification can run on the :class:`repro.harness.parallel.TaskPool`
(``max_workers=``): sealed windows are checked in worker processes while
ingestion continues, and results are folded back in window order at
:meth:`StreamingChecker.finish`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional

from repro.causal.checker import (
    CheckerReport,
    RecordedPut,
    RecordedRot,
    VersionId,
)
from repro.errors import SimulationError
from repro.obs.events import WINDOW_RETIRE, WINDOW_SEAL

#: Default operations per window.  Large enough that frontier memoisation
#: amortises, small enough that a retire horizon of a few windows keeps the
#: live set in the tens of thousands of versions.
DEFAULT_WINDOW_OPS = 4096

#: Node name the checker emits trace events under.
CHECKER_NODE = "checker"


class _FrontierIndex:
    """Memoised causal frontiers over a (live) put index.

    The frontier of a version is the newest timestamp per ``(key,
    origin_dc)`` in its causal past — the same summary the monolithic
    checker memoises, computed by the same bottom-up expansion so the
    per-slot insertion order (and therefore violation order) is identical.
    A frontier is a pure function of the version's (immutable) dependency
    closure, so cached entries stay valid across window seals; retirement
    :meth:`evict`\\ s them so cache memory tracks the live set.  Within the
    retirement horizon a warm cache, a pool worker's cold rebuild from the
    shipped live set, and the monolithic checker all compute identical
    frontiers.
    """

    __slots__ = ("_puts", "_cache")

    def __init__(self, puts: dict[VersionId, RecordedPut]) -> None:
        self._puts = puts
        self._cache: dict[VersionId, dict[tuple[str, int], int]] = {}

    def reset(self) -> None:
        self._cache.clear()

    def evict(self, version_id: VersionId) -> None:
        self._cache.pop(version_id, None)

    def causal_past(self, version_id: VersionId) -> dict[tuple[str, int], int]:
        cached = self._cache.get(version_id)
        if cached is not None:
            return cached
        start = self._puts.get(version_id)
        if start is None:
            self._cache[version_id] = {}
            return {}
        stack: list[tuple[RecordedPut, bool]] = [(start, False)]
        in_progress: set[VersionId] = set()
        while stack:
            current, expanded = stack.pop()
            if current.version_id in self._cache:
                continue
            dep_puts = [self._puts[dep] for dep in current.dependencies
                        if dep in self._puts]
            if not expanded:
                in_progress.add(current.version_id)
                stack.append((current, True))
                for dep_put in dep_puts:
                    if dep_put.version_id not in self._cache \
                            and dep_put.version_id not in in_progress:
                        stack.append((dep_put, False))
                continue
            newest: dict[tuple[str, int], int] = {}
            for key, ts, origin in current.dependencies:
                slot = (key, origin)
                if newest.get(slot, -1) < ts:
                    newest[slot] = ts
            for dep_put in dep_puts:
                for slot, ts in self._cache.get(dep_put.version_id, {}).items():
                    if newest.get(slot, -1) < ts:
                        newest[slot] = ts
            self._cache[current.version_id] = newest
        return self._cache[version_id]

    def is_ancestor(self, ancestor: VersionId, descendant: VersionId) -> bool:
        if ancestor == descendant:
            return False
        past = self.causal_past(descendant)
        key, ts, origin = ancestor
        return past.get((key, origin), -1) >= ts


def snapshot_violations_for_rot(rot: RecordedRot,
                                puts: dict[VersionId, RecordedPut],
                                index: _FrontierIndex) -> list[str]:
    """The monolithic snapshot check for one ROT over the live put index.

    Same candidate filter, same concurrent-version confirmation, same
    message strings as ``CausalConsistencyChecker._check_snapshot`` — the
    streaming checker's equivalence guarantee rests on this being a literal
    re-statement.
    """
    violations: list[str] = []
    returned = {read.key: read for read in rot.reads}
    for read in rot.reads:
        version_id = read.version_id
        if version_id is None or version_id not in puts:
            # Preloaded versions have no recorded PUT and no dependencies.
            continue
        past = index.causal_past(version_id)
        for (dep_key, dep_origin), dep_ts in past.items():
            other = returned.get(dep_key)
            if other is None or dep_key == read.key:
                continue
            required_id: VersionId = (dep_key, dep_ts, dep_origin)
            other_id = other.version_id
            if other_id == required_id:
                continue
            candidate = (other_id is None
                         or (other.origin_dc == dep_origin
                             and other.timestamp is not None
                             and other.timestamp < dep_ts)
                         or (other.origin_dc != dep_origin))
            if not candidate:
                continue
            returned_is_initial = (other_id is not None
                                   and other.timestamp == 0
                                   and other_id not in puts)
            if other_id is None or returned_is_initial \
                    or index.is_ancestor(other_id, required_id):
                violations.append(
                    f"ROT {rot.rot_id}: returned {dep_key}@"
                    f"{other.timestamp if other else None} but "
                    f"{read.key}@{read.timestamp} causally depends on "
                    f"{dep_key}@{dep_ts} (origin DC {dep_origin})")
    return violations


def check_window_job(rot_entries: tuple[tuple[int, RecordedRot], ...],
                     puts: tuple[RecordedPut, ...],
                     ) -> list[tuple[int, list[str]]]:
    """Check one sealed window's ROTs against a live-set snapshot.

    Module-level so :class:`repro.harness.parallel.TaskPool` workers can
    import it under the ``spawn`` start method.  Returns ``(rot_rank,
    violations)`` pairs for offending ROTs only; ranks let the parent
    reassemble the global ROT record order.
    """
    mapping = {put.version_id: put for put in puts}
    index = _FrontierIndex(mapping)
    results: list[tuple[int, list[str]]] = []
    for rank, rot in rot_entries:
        violations = snapshot_violations_for_rot(rot, mapping, index)
        if violations:
            results.append((rank, violations))
    return results


def iter_session_order(puts: Iterable[RecordedPut],
                       rots: Iterable[RecordedRot],
                       ) -> Iterator[tuple[str, object]]:
    """Yield ``("put", op)`` / ``("rot", op)`` in monolithic session order.

    The monolithic checker stable-sorts each client's operations by sequence
    with all puts recorded before all rots, so ties break put-first in
    record order.  Replaying a split ``(puts, rots)`` history through this
    order restores every client's true execution interleaving (client
    sequence numbers are shared across both kinds and strictly increase).
    """
    entries: list[tuple[int, int, int, str, object]] = [
        (put.sequence, 0, position, "put", put)
        for position, put in enumerate(puts)]
    entries.extend((rot.sequence, 1, position, "rot", rot)
                   for position, rot in enumerate(rots))
    entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    for _seq, _kind_rank, _position, kind, op in entries:
        yield kind, op


class ObservationBuffer:
    """Checker-shaped recorder for worker processes that stream observations.

    Stands in for the worker-local :class:`CausalConsistencyChecker` when
    the parent runs the streaming checker: clients call
    :meth:`record_put`/:meth:`record_rot` exactly as before, and the
    observation flusher periodically :meth:`drain`\\ s the buffer into an
    :class:`~repro.runtime.process.ObservationChunk` — so worker memory is
    bounded by the flush period, not the run length.
    """

    def __init__(self) -> None:
        self._puts: list[RecordedPut] = []
        self._rots: list[RecordedRot] = []

    def record_put(self, put: RecordedPut) -> None:
        self._puts.append(put)

    def record_rot(self, rot: RecordedRot) -> None:
        self._rots.append(rot)

    @property
    def pending(self) -> int:
        return len(self._puts) + len(self._rots)

    def drain(self) -> tuple[tuple[RecordedPut, ...], tuple[RecordedRot, ...]]:
        puts, rots = tuple(self._puts), tuple(self._rots)
        self._puts.clear()
        self._rots.clear()
        return puts, rots

    def recorded_history(self) -> tuple[tuple[RecordedPut, ...],
                                        tuple[RecordedRot, ...]]:
        """Facade parity with the monolithic checker (final, post-drain
        snapshot — empty when the flusher drained everything)."""
        return tuple(self._puts), tuple(self._rots)


class StreamingChecker:
    """Bounded-memory, window-parallel causal-consistency checker.

    Parameters
    ----------
    window_ops:
        Operations per verification window.
    retire_lag:
        How many sealed windows a put stays live after its window seals;
        also the causal-reference horizon (see module docstring).
    force_seal_factor:
        Backstop on buffered-but-unsealed operations: the oldest full
        window force-seals once ``window_ops * force_seal_factor``
        operations are pending, so a stalled source cannot grow memory
        without bound.
    max_workers / pool:
        Run sealed-window snapshot checks on a
        :class:`repro.harness.parallel.TaskPool` — an explicit ``pool``
        (caller-owned) or a private one sized ``max_workers`` (closed by
        :meth:`finish`).  Serial by default; both modes produce identical
        reports.
    check_convergence:
        Also verify eventual convergence on *quiesced* histories: two
        clients whose final reads of a key return causally incomparable
        cross-DC versions indicate the replicas had not converged.  Off by
        default because abruptly-stopped realtime runs are not quiesced.
    tracer:
        Optional :class:`repro.obs.bus.EventBus`; seals and retirements are
        emitted as ``window_seal`` / ``window_retire`` events.
    """

    def __init__(self, *, window_ops: int = DEFAULT_WINDOW_OPS,
                 retire_lag: int = 2, force_seal_factor: int = 4,
                 max_workers: Optional[int] = None, pool=None,
                 check_convergence: bool = False, tracer=None) -> None:
        if window_ops < 1:
            raise SimulationError(f"window_ops must be >= 1, got {window_ops}")
        if retire_lag < 1:
            raise SimulationError(f"retire_lag must be >= 1, got {retire_lag}")
        if force_seal_factor < 1:
            raise SimulationError(
                f"force_seal_factor must be >= 1, got {force_seal_factor}")
        self.window_ops = window_ops
        self.retire_lag = retire_lag
        self.force_seal_factor = force_seal_factor
        self.check_convergence = check_convergence
        self.tracer = tracer
        self._pool = pool
        self._pool_workers = max_workers
        self._owns_pool = pool is None and max_workers is not None

        #: Versions whose windows have not retired yet.
        self._live_puts: dict[VersionId, RecordedPut] = {}
        self._index = _FrontierIndex(self._live_puts)
        #: Open (still filling) window: ``(kind, op, rot_rank)`` triples.
        self._open: list[tuple[str, object, int]] = []
        self._open_high: dict[int, int] = {}
        #: Full windows awaiting their seal gate, oldest first.
        self._frozen: deque[tuple[list[tuple[str, object, int]],
                                  dict[int, int]]] = deque()
        #: Sealed windows awaiting retirement: ``(index, member versions)``.
        self._sealed_members: deque[tuple[int, list[VersionId]]] = deque()
        #: Sealed-window snapshot results awaiting :meth:`finish`, in seal
        #: order; each entry is a pool handle or an inline result list.
        self._pending: deque[tuple[int, object]] = deque()
        #: Per-source, per-origin running maximum timestamp (puts, their
        #: dependency entries, and read results all advance it).
        self._progress: dict[str, dict[int, int]] = {}

        self._next_window = 0
        self._next_rot_rank = 0
        self._client_put_rank: dict[str, int] = {}
        self._client_rot_rank: dict[str, int] = {}
        self._session_observed: dict[str, dict[str, VersionId]] = {}
        self._session_violations: dict[str, list[str]] = {}
        #: key -> client -> version returned by the client's last read.
        self._final_reads: dict[str, dict[str, Optional[VersionId]]] = {}

        #: Snapshot-check results of already-drained windows, accumulated
        #: across :meth:`finish` calls: ``(rot_rank, violations)`` pairs.
        self._snapshot_entries: list[tuple[int, list[str]]] = []

        self._distinct_puts = 0
        self._rot_count = 0
        self.windows_sealed = 0
        self.versions_retired = 0
        self.peak_live_versions = 0
        self.force_seals = 0

    # -------------------------------------------------------------- recording
    @property
    def recorded_puts(self) -> int:
        return self._distinct_puts

    @property
    def recorded_rots(self) -> int:
        return self._rot_count

    @property
    def live_versions(self) -> int:
        """Versions currently held in memory (the O(window) bound)."""
        return len(self._live_puts)

    def _ensure_pool(self):
        """Lazily (re)create the private pool: :meth:`finish` closes it, and
        ingestion may legitimately resume afterwards (mid-run ``check()``)."""
        if self._owns_pool and self._pool is None:
            from repro.harness.parallel import TaskPool
            self._pool = TaskPool(max_workers=self._pool_workers)
        return self._pool

    def record_put(self, put: RecordedPut, *, source: str = "local") -> None:
        """Ingest one PUT (arrival order is the window order)."""
        self._client_put_rank.setdefault(put.client,
                                         len(self._client_put_rank))
        self._ingest_put(put, source)
        self._maybe_seal()

    def record_rot(self, rot: RecordedRot, *, source: str = "local") -> None:
        """Ingest one completed ROT."""
        self._client_rot_rank.setdefault(rot.client,
                                         len(self._client_rot_rank))
        rank = self._next_rot_rank
        self._next_rot_rank += 1
        self._ingest_rot(rot, source, rank)
        self._maybe_seal()

    def record_history(self, puts: Iterable[RecordedPut],
                       rots: Iterable[RecordedRot], *,
                       source: str = "history") -> None:
        """Ingest one batch (an observation chunk, or a recorded history).

        The batch is replayed in :func:`iter_session_order` so each client's
        put/rot interleaving matches its execution order even though the
        split ``(puts, rots)`` representation lost it; seal decisions wait
        for the whole batch so intra-batch references are always resolvable.
        """
        puts = list(puts)
        rots = list(rots)
        for put in puts:
            self._client_put_rank.setdefault(put.client,
                                             len(self._client_put_rank))
        for rot in rots:
            self._client_rot_rank.setdefault(rot.client,
                                             len(self._client_rot_rank))
        base_rank = self._next_rot_rank
        self._next_rot_rank += len(rots)
        entries: list[tuple[int, int, int, str, object]] = [
            (put.sequence, 0, position, "put", put)
            for position, put in enumerate(puts)]
        entries.extend((rot.sequence, 1, position, "rot", rot)
                       for position, rot in enumerate(rots))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        for _seq, kind_rank, position, kind, op in entries:
            if kind_rank == 0:
                self._ingest_put(op, source)
            else:
                self._ingest_rot(op, source, base_rank + position)
        self._maybe_seal()

    # -------------------------------------------------------------- ingestion
    def _advance(self, source: str, origin: int, timestamp: int) -> None:
        if timestamp > self._open_high.get(origin, -1):
            self._open_high[origin] = timestamp
        progress = self._progress.get(source)
        if progress is None:
            progress = self._progress[source] = {}
        if timestamp > progress.get(origin, -1):
            progress[origin] = timestamp

    def _ingest_put(self, put: RecordedPut, source: str) -> None:
        if put.version_id not in self._live_puts:
            self._distinct_puts += 1
        self._live_puts[put.version_id] = put
        if len(self._live_puts) > self.peak_live_versions:
            self.peak_live_versions = len(self._live_puts)
        self._open.append(("put", put, -1))
        self._advance(source, put.origin_dc, put.timestamp)
        for _key, ts, origin in put.dependencies:
            self._advance(source, origin, ts)
        if len(self._open) >= self.window_ops:
            self._freeze_open()

    def _ingest_rot(self, rot: RecordedRot, source: str, rank: int) -> None:
        self._rot_count += 1
        self._open.append(("rot", rot, rank))
        for read in rot.reads:
            if read.timestamp is not None:
                self._advance(source, read.origin_dc, read.timestamp)
            if self.check_convergence:
                self._final_reads.setdefault(
                    read.key, {})[rot.client] = read.version_id
        if len(self._open) >= self.window_ops:
            self._freeze_open()

    def _freeze_open(self) -> None:
        self._frozen.append((self._open, self._open_high))
        self._open = []
        self._open_high = {}

    # ---------------------------------------------------------------- sealing
    def _gate_passes(self, high: dict[int, int]) -> bool:
        """Does the global stable vector cover this window's high-water?"""
        for progress in self._progress.values():
            for origin, timestamp in high.items():
                if progress.get(origin, -1) < timestamp:
                    return False
        return True

    def _maybe_seal(self) -> None:
        while self._frozen:
            buffered = (sum(len(ops) for ops, _high in self._frozen)
                        + len(self._open))
            ops, high = self._frozen[0]
            forced = buffered >= self.window_ops * self.force_seal_factor
            if not forced and not self._gate_passes(high):
                return
            if forced and not self._gate_passes(high):
                self.force_seals += 1
            self._frozen.popleft()
            self._seal_window(ops)

    def _seal_window(self, ops: list[tuple[str, object, int]]) -> None:
        index = self._next_window
        self._next_window += 1
        self.windows_sealed += 1
        for kind, op, _rank in ops:
            self._session_step(kind, op)
        rot_entries = tuple((rank, op) for kind, op, rank in ops
                            if kind == "rot")
        if rot_entries:
            pool = self._ensure_pool()
            if pool is not None:
                snapshot = tuple(self._live_puts.values())
                handle = pool.submit(check_window_job, rot_entries, snapshot)
                self._pending.append((index, handle))
            else:
                results = [
                    (rank, violations) for rank, rot in rot_entries
                    if (violations := snapshot_violations_for_rot(
                        rot, self._live_puts, self._index))]
                if results:
                    self._pending.append((index, results))
        if self.tracer is not None:
            self.tracer.emit(
                CHECKER_NODE, WINDOW_SEAL, name=f"window-{index}",
                data=(("ops", len(ops)), ("rots", len(rot_entries)),
                      ("live", len(self._live_puts))))
        members = [op.version_id for kind, op, _rank in ops if kind == "put"]
        self._sealed_members.append((index, members))
        self._retire_through(index - self.retire_lag)

    def _retire_through(self, horizon: int) -> None:
        while self._sealed_members and self._sealed_members[0][0] <= horizon:
            index, members = self._sealed_members.popleft()
            retired = 0
            for version_id in members:
                if self._live_puts.pop(version_id, None) is not None:
                    retired += 1
                self._index.evict(version_id)
            self.versions_retired += retired
            if self.tracer is not None:
                self.tracer.emit(
                    CHECKER_NODE, WINDOW_RETIRE, name=f"window-{index}",
                    data=(("versions", retired),
                          ("live", len(self._live_puts))))

    # --------------------------------------------------------------- sessions
    def _session_step(self, kind: str, op) -> None:
        """One operation of the monolithic per-client session replay."""
        if kind == "put":
            observed = self._session_observed.setdefault(op.client, {})
            observed[op.key] = op.version_id
            return
        rot = op
        observed = self._session_observed.setdefault(rot.client, {})
        for read in rot.reads:
            previous = observed.get(read.key)
            if previous is None:
                if read.version_id is not None:
                    observed[read.key] = read.version_id
                continue
            current = read.version_id
            went_backwards = (
                current is None
                or (current != previous
                    and self._index.is_ancestor(current, previous)))
            if went_backwards:
                self._session_violations.setdefault(rot.client, []).append(
                    f"client {rot.client}: ROT {rot.rot_id} read "
                    f"{read.key}@{read.timestamp} after having observed "
                    f"{previous[1]} (origin DC {previous[2]})")
            elif current is not None and previous != current \
                    and self._index.is_ancestor(previous, current):
                observed[read.key] = current

    def _client_order_key(self, client: str) -> tuple[int, int]:
        put_rank = self._client_put_rank.get(client)
        if put_rank is not None:
            return (0, put_rank)
        return (1, self._client_rot_rank.get(client, 0))

    # ------------------------------------------------------------ convergence
    def _check_convergence(self) -> list[str]:
        """Divergent final reads on a quiesced history (see class docstring).

        Same-origin differing finals are timestamp-ordered (one client is
        merely behind in the per-key last-writer-wins order) and are not
        divergence; only causally *incomparable* cross-DC finals are.  Pairs
        involving retired versions are skipped — their frontiers are gone,
        so incomparability cannot be confirmed.
        """
        violations: list[str] = []
        for key in sorted(self._final_reads):
            first_reader: dict[VersionId, str] = {}
            finals = self._final_reads[key]
            for client in sorted(finals):
                version_id = finals[client]
                if version_id is not None and version_id not in first_reader:
                    first_reader[version_id] = client
            versions = list(first_reader)
            for i, left in enumerate(versions):
                for right in versions[i + 1:]:
                    if left[2] == right[2]:
                        continue
                    if left not in self._live_puts \
                            or right not in self._live_puts:
                        continue
                    if self._index.is_ancestor(left, right) \
                            or self._index.is_ancestor(right, left):
                        continue
                    violations.append(
                        f"key {key}: divergent final reads: client "
                        f"{first_reader[left]} last read {key}@{left[1]} "
                        f"(origin DC {left[2]}) while client "
                        f"{first_reader[right]} last read {key}@{right[1]} "
                        f"(origin DC {right[2]}) and neither precedes the "
                        f"other")
        return violations

    # ------------------------------------------------------------------ final
    def finish(self) -> CheckerReport:
        """Seal the remainder, drain pending windows, assemble the report.

        Re-entrant, like the monolithic checker's ``check()``: ingestion may
        continue after a mid-run report and a later ``finish()`` folds the
        new windows into the accumulated results.  At finish everything
        buffered has arrived, so the seal gate is waived for the tail
        windows; a private pool is closed and lazily recreated if sealing
        resumes.
        """
        while self._frozen:
            ops, _high = self._frozen.popleft()
            self._seal_window(ops)
        if self._open:
            ops, self._open, self._open_high = self._open, [], {}
            self._seal_window(ops)
        for _window, pending in self._pending:
            results = pending.result() if hasattr(pending, "result") \
                else pending
            self._snapshot_entries.extend(results)
        self._pending.clear()
        entries = sorted(self._snapshot_entries, key=lambda entry: entry[0])
        snapshot_violations = [message for _rank, messages in entries
                               for message in messages]
        session_violations = [
            message
            for client in sorted(self._session_violations,
                                 key=self._client_order_key)
            for message in self._session_violations[client]]
        convergence_violations = (self._check_convergence()
                                  if self.check_convergence else [])
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
        return CheckerReport(
            puts=self._distinct_puts, rots=self._rot_count,
            snapshot_violations=snapshot_violations,
            session_violations=session_violations,
            convergence_violations=convergence_violations)

    def check(self) -> CheckerReport:
        """Alias for :meth:`finish` (facade parity with the monolithic
        checker, so experiment runners drive either interchangeably)."""
        return self.finish()


__all__ = [
    "CHECKER_NODE",
    "DEFAULT_WINDOW_OPS",
    "ObservationBuffer",
    "StreamingChecker",
    "check_window_job",
    "iter_session_order",
    "snapshot_violations_for_rot",
]
