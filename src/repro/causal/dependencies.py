"""Explicit dependency tracking for COPS-style protocols (CC-LO).

COPS, Eiger and COPS-SNOW encode causality as explicit dependencies: the
client remembers which versions it has observed since its last PUT, and a PUT
carries that list so the server can (a) check the dependencies are installed
before making the new version visible in a remote DC and (b), in COPS-SNOW,
run the *readers check* against the partitions storing those dependencies.

After a PUT completes, the new version subsumes the previously accumulated
dependencies (anything read earlier is a transitive dependency of the PUT), so
the context collapses to just the PUT itself — the "nearest dependencies"
optimisation of COPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Dependency:
    """One causal dependency: a specific version of a key."""

    key: str
    timestamp: int
    partition: int
    origin_dc: int = 0

    def as_pair(self) -> tuple[str, int]:
        """The ``(key, timestamp)`` encoding stored on versions."""
        return (self.key, self.timestamp)

    def as_triple(self) -> tuple[str, int, int]:
        """The ``(key, timestamp, origin_dc)`` encoding carried by CC-LO PUTs.

        The origin DC is needed by the remote dependency check: a replica must
        wait for the version *from that DC* with that timestamp, since
        timestamps from different DCs are not comparable.
        """
        return (self.key, self.timestamp, self.origin_dc)


@dataclass
class ClientDependencyContext:
    """The causal context a CC-LO client attaches to its PUTs."""

    _deps: dict[str, Dependency] = field(default_factory=dict)

    def observe_read(self, key: str, timestamp: int, partition: int,
                     origin_dc: int = 0) -> None:
        """Record that the client observed ``key`` at ``timestamp``.

        Only the newest observed version per key is retained — older versions
        are subsumed.
        """
        existing = self._deps.get(key)
        if existing is None or existing.timestamp < timestamp:
            self._deps[key] = Dependency(key, timestamp, partition, origin_dc)

    def observe_write(self, key: str, timestamp: int, partition: int,
                      origin_dc: int = 0) -> None:
        """Record a completed PUT: it subsumes everything observed before it."""
        self._deps.clear()
        self._deps[key] = Dependency(key, timestamp, partition, origin_dc)

    def dependencies(self) -> tuple[Dependency, ...]:
        """The current nearest dependencies, in deterministic order."""
        return tuple(sorted(self._deps.values(), key=lambda d: (d.key, d.timestamp)))

    def dependency_partitions(self) -> tuple[int, ...]:
        """Distinct partitions that store at least one dependency."""
        return tuple(sorted({dep.partition for dep in self._deps.values()}))

    def __len__(self) -> int:
        return len(self._deps)


__all__ = ["ClientDependencyContext", "Dependency"]
