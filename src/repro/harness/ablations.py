"""Programmatic access to the design-choice ablations.

The benchmark suite exercises the ablations DESIGN.md calls out (ROT rounds,
clock family, CC-LO garbage collection, stabilization interval); this module
exposes the same studies as plain functions so they can be run from a script
or a notebook without pytest.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.harness.runner import load_sweep, run_experiment
from repro.metrics.collectors import RunResult
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters


def rot_rounds_ablation(client_counts: Sequence[int] = (4, 16, 48),
                        config: Optional[ClusterConfig] = None,
                        workload: WorkloadParameters = DEFAULT_WORKLOAD
                        ) -> dict[str, list[RunResult]]:
    """Contrarian with 1½-round versus 2-round ROTs (Section 5.3)."""
    base = config or ClusterConfig.bench_scale()
    return {
        "1.5-rounds": load_sweep("contrarian", client_counts,
                                 base.with_changes(rot_rounds=1.5), workload),
        "2-rounds": load_sweep("contrarian", client_counts,
                               base.with_changes(rot_rounds=2.0), workload),
    }


def clock_mode_ablation(clients: int = 16,
                        config: Optional[ClusterConfig] = None,
                        workload: WorkloadParameters = DEFAULT_WORKLOAD
                        ) -> dict[str, RunResult]:
    """Contrarian under HLC, plain logical and physical clocks (Section 4)."""
    base = (config or ClusterConfig.bench_scale()).with_changes(
        clients_per_dc=clients)
    return {mode: run_experiment("contrarian",
                                 base.with_changes(clock_mode=mode),
                                 workload).result
            for mode in ("hlc", "logical", "physical")}


def cclo_gc_ablation(clients: int = 32,
                     config: Optional[ClusterConfig] = None,
                     workload: WorkloadParameters = DEFAULT_WORKLOAD
                     ) -> dict[str, RunResult]:
    """CC-LO with/without the paper's reader-record optimisations."""
    base = (config or ClusterConfig.bench_scale()).with_changes(
        clients_per_dc=clients)
    return {
        "optimized": run_experiment("cc-lo", base, workload).result,
        "long-gc": run_experiment(
            "cc-lo", base.with_changes(cclo_gc_window_ms=5000.0), workload).result,
        "no-compression": run_experiment(
            "cc-lo", base.with_changes(cclo_one_id_per_client=False),
            workload).result,
    }


def stabilization_interval_ablation(clients: int = 16,
                                    intervals_ms: Sequence[float] = (5.0, 50.0),
                                    config: Optional[ClusterConfig] = None,
                                    workload: WorkloadParameters = DEFAULT_WORKLOAD
                                    ) -> dict[float, RunResult]:
    """Contrarian under different GSS stabilization periods."""
    base = (config or ClusterConfig.bench_scale()).with_changes(
        clients_per_dc=clients)
    return {interval: run_experiment(
        "contrarian", base.with_changes(stabilization_interval_ms=interval),
        workload).result for interval in intervals_ms}


__all__ = [
    "cclo_gc_ablation",
    "clock_mode_ablation",
    "rot_rounds_ablation",
    "stabilization_interval_ablation",
]
