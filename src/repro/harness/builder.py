"""Builds a simulated cluster for one experiment run.

The builder instantiates the simulator, the network, one partition server per
(DC, partition) pair for the chosen protocol, preloads the keyspace (the paper
preloads 1M keys per partition before measuring) and creates the closed-loop
clients with independently seeded workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.causal.checker import CausalConsistencyChecker
from repro.cluster.config import ClusterConfig
from repro.cluster.seeding import preload_initial_keyspace
from repro.cluster.topology import ClusterTopology
from repro.core.registry import resolve
from repro.metrics.collectors import MetricsRegistry
from repro.obs.bus import EventBus
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.workload.generator import WorkloadGenerator
from repro.workload.parameters import WorkloadParameters


@dataclass
class BuiltCluster:
    """Everything needed to run (and inspect) one experiment."""

    protocol: str
    config: ClusterConfig
    workload: WorkloadParameters
    sim: Simulator
    topology: ClusterTopology
    metrics: MetricsRegistry
    checker: Optional[CausalConsistencyChecker]
    #: repro.obs event bus stamping virtual time; None unless built with
    #: ``trace=True``.
    trace_bus: Optional[EventBus] = None
    _stopped: bool = False

    def start(self) -> None:
        """Start server background tasks and client loops."""
        self._stopped = False
        for server in self.topology.all_servers():
            server.start()
        for client in self.topology.clients:
            client.start()

    def stop(self) -> None:
        """Stop clients and cancel periodic server tasks; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        for client in self.topology.clients:
            client.stop()
        for server in self.topology.all_servers():
            stop = getattr(server, "stop_background_tasks", None)
            if callable(stop):
                stop()

    # ``close`` is the lifecycle spelling the facade uses; it is the same
    # idempotent teardown.
    close = stop


def build_cluster(protocol: str, config: ClusterConfig,
                  workload: WorkloadParameters, *,
                  enable_checker: bool = False,
                  trace: bool = False) -> BuiltCluster:
    """Construct a ready-to-run cluster for ``protocol``.

    Parameters
    ----------
    protocol:
        One of the registered protocol names (``"contrarian"``, ``"cure"``,
        ``"cc-lo"``).
    config:
        Cluster topology, cost model and run durations.
    workload:
        The Table-1 workload point to generate.
    enable_checker:
        When True, every PUT and ROT is recorded and can be validated with the
        causal-consistency checker after the run (slower; meant for tests).
    trace:
        When True, attach a :class:`repro.obs.bus.EventBus` (virtual-time
        stamps) to every node and kernel; the run's event stream is exposed
        as :attr:`BuiltCluster.trace_bus`.  Tracing never perturbs the
        simulation — a traced run produces bit-identical results.
    """
    server_cls, client_cls = resolve(protocol)
    sim = Simulator(seed=config.seed)
    network = Network(sim, config.latency_model)
    topology = ClusterTopology(sim, network, config)
    metrics = MetricsRegistry(warmup_seconds=config.warmup_seconds)
    checker = CausalConsistencyChecker() if enable_checker else None
    trace_bus = EventBus(sim, source="sim") if trace else None

    for dc in range(config.num_dcs):
        for partition in range(config.num_partitions):
            server = server_cls(topology, dc, partition)
            if trace_bus is not None:
                server._tracer = trace_bus
                server.kernel.tracer = trace_bus
            topology.add_server(server)

    preload_initial_keyspace(
        ((partition, topology.server(dc, partition).store)
         for dc in range(config.num_dcs)
         for partition in range(config.num_partitions)),
        num_dcs=config.num_dcs,
        keys_per_partition=config.keys_per_partition,
        value_size=workload.value_size)

    for dc in range(config.num_dcs):
        for index in range(config.clients_per_dc):
            generator = WorkloadGenerator(
                workload, topology.partitioner, config.keys_per_partition,
                rng=sim.derived_rng(f"workload:{dc}:{index}"))
            client = client_cls(topology, dc, index, generator, metrics, checker)
            if trace_bus is not None:
                client._tracer = trace_bus
                client.kernel.tracer = trace_bus
            topology.add_client(client)

    return BuiltCluster(protocol=protocol, config=config, workload=workload,
                        sim=sim, topology=topology, metrics=metrics,
                        checker=checker, trace_bus=trace_bus)


__all__ = ["BuiltCluster", "build_cluster"]
