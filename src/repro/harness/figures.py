"""Regeneration of every figure of the paper's evaluation (Section 5).

Each ``figureN_*`` function reruns the corresponding experiment — the same
protocols, the same workload axis, a load sweep over the number of closed-loop
clients — and returns a :class:`FigureResult` holding the measured series plus
a plain-text rendition of the figure's data.

The default parameters use the bench-scale configuration (8 partitions, short
runs); every function accepts an explicit :class:`ClusterConfig` to run at a
larger scale.  Figure 9 defaults to ROT sizes ``(2, 4, 8)`` because the
bench-scale cluster has 8 partitions; pass a 24+-partition configuration and
``rot_sizes=(4, 8, 24)`` to match the paper exactly.

Every figure runs its complete (series x load point) grid through the
process-pool runner of :mod:`repro.harness.parallel`: the grid is flattened
into one spec list, executed over however many workers
:func:`~repro.harness.parallel.resolve_worker_count` grants (pass
``max_workers`` to pin it; one worker reproduces the old serial behaviour),
and regrouped per series.  Results are bit-identical to the serial sweeps
because the specs carry exactly the same configurations and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.faults.library import dc_partition
from repro.faults.scenario import Scenario
from repro.harness.parallel import ParallelRunner, RunSpec, sweep_specs
from repro.harness.report import format_series, format_table
from repro.harness.runner import run_experiment
from repro.metrics.collectors import RunResult
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters

#: Default client-per-DC counts of a load sweep at bench scale.
DEFAULT_CLIENT_SWEEP: tuple[int, ...] = (4, 12, 32, 64)

#: Protocols traced by the fault figure.
FAULT_FIGURE_PROTOCOLS: tuple[str, ...] = ("contrarian", "cure", "cc-lo")


def _run_series(series_specs: dict[str, list[RunSpec]],
                max_workers: Optional[int] = None) -> dict[str, list[RunResult]]:
    """Execute every series of a figure in one process-pool invocation.

    Flattening the whole figure into a single pool keeps workers busy across
    series boundaries (protocols differ a lot in cost), then the ordered
    results are sliced back into their series.
    """
    flat: list[RunSpec] = []
    for specs in series_specs.values():
        flat.extend(specs)
    results = ParallelRunner(max_workers=max_workers).run(flat)
    grouped: dict[str, list[RunResult]] = {}
    offset = 0
    for name, specs in series_specs.items():
        grouped[name] = results[offset:offset + len(specs)]
        offset += len(specs)
    return grouped


@dataclass
class FigureResult:
    """The regenerated data behind one figure."""

    name: str
    caption: str
    series: dict[str, list[RunResult]] = field(default_factory=dict)
    extra_rows: list[dict[str, object]] = field(default_factory=list)
    include_p99: bool = False

    def to_text(self) -> str:
        """Render the figure data as aligned text tables."""
        parts = [f"{self.name}: {self.caption}",
                 format_series(self.series, include_p99=self.include_p99)]
        if self.extra_rows:
            headers: list[str] = []
            for row in self.extra_rows:
                headers.extend(column for column in row if column not in headers)
            rows = [[row.get(column, "") for column in headers]
                    for row in self.extra_rows]
            parts.append(format_table(headers, rows))
        return "\n\n".join(parts)


def _base_config(config: Optional[ClusterConfig], num_dcs: int) -> ClusterConfig:
    base = config or ClusterConfig.bench_scale()
    if base.num_dcs != num_dcs:
        base = base.with_changes(num_dcs=num_dcs)
    return base


# ---------------------------------------------------------------------------
# Figure 4 — Contrarian (1 1/2 vs 2 rounds) vs Cure, 2 DCs, default workload
# ---------------------------------------------------------------------------
def figure4_contrarian_vs_cure(
        client_counts: Sequence[int] = DEFAULT_CLIENT_SWEEP,
        config: Optional[ClusterConfig] = None,
        workload: WorkloadParameters = DEFAULT_WORKLOAD,
        max_workers: Optional[int] = None) -> FigureResult:
    """Throughput vs average ROT latency for Contrarian variants and Cure."""
    base = _base_config(config, num_dcs=2)
    series = _run_series({
        "contrarian-1.5-rounds": sweep_specs(
            "contrarian", client_counts, base.with_changes(rot_rounds=1.5),
            workload, label="fig4"),
        "contrarian-2-rounds": sweep_specs(
            "contrarian", client_counts, base.with_changes(rot_rounds=2.0),
            workload, label="fig4"),
        "cure": sweep_specs("cure", client_counts, base, workload, label="fig4"),
    }, max_workers)
    return FigureResult(
        name="Figure 4",
        caption=("Contrarian vs Cure, default workload, 2 DCs: nonblocking "
                 "ROTs beat Cure's clock-skew-bound latency; 1 1/2 rounds is "
                 "faster at low load, 2 rounds peaks slightly higher."),
        series=series)


# ---------------------------------------------------------------------------
# Figure 5 — Contrarian vs CC-LO, default workload, 1 DC and 2 DCs
# ---------------------------------------------------------------------------
def figure5_default_workload(
        client_counts: Sequence[int] = DEFAULT_CLIENT_SWEEP,
        config: Optional[ClusterConfig] = None,
        workload: WorkloadParameters = DEFAULT_WORKLOAD,
        max_workers: Optional[int] = None) -> FigureResult:
    """Average and tail ROT latency vs throughput for Contrarian and CC-LO."""
    specs: dict[str, list[RunSpec]] = {}
    for num_dcs in (1, 2):
        base = _base_config(config, num_dcs=num_dcs)
        specs[f"contrarian-{num_dcs}dc"] = sweep_specs(
            "contrarian", client_counts, base, workload, label="fig5")
        specs[f"cc-lo-{num_dcs}dc"] = sweep_specs(
            "cc-lo", client_counts, base, workload, label="fig5")
    series = _run_series(specs, max_workers)
    return FigureResult(
        name="Figure 5",
        caption=("Contrarian vs CC-LO, default workload: CC-LO is ahead only "
                 "at the lowest load; the readers-check overhead costs it "
                 "throughput and, under load, latency — especially at the tail."),
        series=series, include_p99=True)


# ---------------------------------------------------------------------------
# Figure 6 — readers-check overhead grows linearly with the number of clients
# ---------------------------------------------------------------------------
def figure6_readers_check_overhead(
        client_counts: Sequence[int] = (8, 16, 32, 64),
        config: Optional[ClusterConfig] = None,
        workload: WorkloadParameters = DEFAULT_WORKLOAD,
        max_workers: Optional[int] = None) -> FigureResult:
    """ROT ids collected per readers check as a function of client count."""
    base = _base_config(config, num_dcs=1)
    results = _run_series({"cc-lo": sweep_specs(
        "cc-lo", client_counts, base, workload, label="fig6")},
        max_workers)["cc-lo"]
    extra_rows = []
    for result in results:
        extra_rows.append({
            "clients": result.clients,
            "distinct_rot_ids_per_check": round(
                result.overhead.average_distinct_ids_per_check(), 1),
            "cumulative_rot_ids_per_check": round(
                result.overhead.average_cumulative_ids_per_check(), 1),
            "partitions_contacted_per_check": round(
                result.overhead.average_partitions_per_check(), 1),
            "readers_checks": result.overhead.readers_checks,
        })
    return FigureResult(
        name="Figure 6",
        caption=("ROT ids collected per readers check in CC-LO (1 DC, default "
                 "workload): both the distinct and the cumulative counts grow "
                 "linearly with the number of clients, matching Theorem 1."),
        series={"cc-lo": results}, extra_rows=extra_rows)


# ---------------------------------------------------------------------------
# Figure 7 — effect of the write/read ratio w
# ---------------------------------------------------------------------------
def figure7_write_intensity(
        client_counts: Sequence[int] = DEFAULT_CLIENT_SWEEP,
        write_ratios: Sequence[float] = (0.01, 0.05, 0.1),
        num_dcs: int = 1,
        config: Optional[ClusterConfig] = None,
        max_workers: Optional[int] = None) -> FigureResult:
    """Contrarian vs CC-LO while varying the write intensity."""
    base = _base_config(config, num_dcs=num_dcs)
    specs: dict[str, list[RunSpec]] = {}
    for write_ratio in write_ratios:
        workload = DEFAULT_WORKLOAD.with_changes(write_ratio=write_ratio)
        specs[f"contrarian-w{write_ratio}"] = sweep_specs(
            "contrarian", client_counts, base, workload, label="fig7")
        specs[f"cc-lo-w{write_ratio}"] = sweep_specs(
            "cc-lo", client_counts, base, workload, label="fig7")
    series = _run_series(specs, max_workers)
    return FigureResult(
        name="Figure 7",
        caption=(f"Effect of write intensity ({num_dcs} DC): higher w hurts "
                 "CC-LO disproportionately because readers checks run more "
                 "often; w=0.01 is the only regime where CC-LO stays close."),
        series=series)


# ---------------------------------------------------------------------------
# Figure 8 — effect of the skew in data popularity
# ---------------------------------------------------------------------------
def figure8_skew(
        client_counts: Sequence[int] = DEFAULT_CLIENT_SWEEP,
        skews: Sequence[float] = (0.0, 0.8, 0.99),
        config: Optional[ClusterConfig] = None,
        max_workers: Optional[int] = None) -> FigureResult:
    """Contrarian vs CC-LO while varying the zipfian skew (single DC)."""
    base = _base_config(config, num_dcs=1)
    specs: dict[str, list[RunSpec]] = {}
    for skew in skews:
        workload = DEFAULT_WORKLOAD.with_changes(skew=skew)
        specs[f"contrarian-z{skew}"] = sweep_specs(
            "contrarian", client_counts, base, workload, label="fig8")
        specs[f"cc-lo-z{skew}"] = sweep_specs(
            "cc-lo", client_counts, base, workload, label="fig8")
    series = _run_series(specs, max_workers)
    return FigureResult(
        name="Figure 8",
        caption=("Effect of data-popularity skew (1 DC): skew barely affects "
                 "Contrarian but hampers CC-LO, whose hot keys accumulate "
                 "long, fresh old-reader records."),
        series=series)


# ---------------------------------------------------------------------------
# Figure 9 — effect of the number of partitions involved in a ROT
# ---------------------------------------------------------------------------
def figure9_rot_size(
        client_counts: Sequence[int] = DEFAULT_CLIENT_SWEEP,
        rot_sizes: Sequence[int] = (2, 4, 8),
        config: Optional[ClusterConfig] = None,
        max_workers: Optional[int] = None) -> FigureResult:
    """Contrarian vs CC-LO while varying the ROT size p (single DC)."""
    base = _base_config(config, num_dcs=1)
    specs: dict[str, list[RunSpec]] = {}
    for rot_size in rot_sizes:
        workload = DEFAULT_WORKLOAD.with_changes(rot_size=rot_size)
        specs[f"contrarian-p{rot_size}"] = sweep_specs(
            "contrarian", client_counts, base, workload, label="fig9")
        specs[f"cc-lo-p{rot_size}"] = sweep_specs(
            "cc-lo", client_counts, base, workload, label="fig9")
    series = _run_series(specs, max_workers)
    return FigureResult(
        name="Figure 9",
        caption=("Effect of ROT size (1 DC): CC-LO's low-load latency edge "
                 "shrinks as p grows because contacting more partitions "
                 "amortises Contrarian's extra communication step."),
        series=series)


# ---------------------------------------------------------------------------
# Section 5.8 — effect of the value size (no figure in the paper)
# ---------------------------------------------------------------------------
def section58_value_size(
        client_counts: Sequence[int] = DEFAULT_CLIENT_SWEEP,
        value_sizes: Sequence[int] = (8, 128, 2048),
        config: Optional[ClusterConfig] = None,
        max_workers: Optional[int] = None) -> FigureResult:
    """Contrarian vs CC-LO while varying the value size (single DC)."""
    base = _base_config(config, num_dcs=1)
    specs: dict[str, list[RunSpec]] = {}
    for value_size in value_sizes:
        workload = DEFAULT_WORKLOAD.with_changes(value_size=value_size)
        specs[f"contrarian-b{value_size}"] = sweep_specs(
            "contrarian", client_counts, base, workload, label="sec5.8")
        specs[f"cc-lo-b{value_size}"] = sweep_specs(
            "cc-lo", client_counts, base, workload, label="sec5.8")
    series = _run_series(specs, max_workers)
    return FigureResult(
        name="Section 5.8",
        caption=("Effect of value size (1 DC): larger values add CPU and "
                 "network cost for both systems, shrinking the relative gap; "
                 "Contrarian stays ahead or on par."),
        series=series)


# ---------------------------------------------------------------------------
# Fault figure — protocols traced through a scripted DC partition
# ---------------------------------------------------------------------------
def fig_faults(protocols: Sequence[str] = FAULT_FIGURE_PROTOCOLS,
               clients: int = 12,
               config: Optional[ClusterConfig] = None,
               workload: WorkloadParameters = DEFAULT_WORKLOAD,
               scenario: Optional[Scenario] = None,
               check_consistency: bool = True,
               max_workers: Optional[int] = None) -> FigureResult:
    """Latency/throughput before, during and after a DC partition.

    Not a figure of the paper: the paper evaluates a healthy static cluster,
    while this figure stresses the same three designs with a scripted fault
    scenario (default: partition DC 1 away mid-run, then heal it) and slices
    the metrics per phase.  The causal-consistency checker runs inside every
    simulation (``check_consistency=True``) and the run *fails* on any
    violation — causal consistency must hold through partitions; only
    liveness (visibility of remote updates) may degrade.
    """
    base = config or ClusterConfig.test_scale(
        num_dcs=2, clients_per_dc=clients, duration_seconds=2.4,
        warmup_seconds=0.2)
    if base.num_dcs < 2:
        base = base.with_changes(num_dcs=2)
    scenario = scenario or dc_partition(start=0.8, heal=1.6, dc=1)
    specs: dict[str, list[RunSpec]] = {
        protocol: [RunSpec(protocol=protocol,
                           config=base.with_changes(clients_per_dc=clients),
                           workload=workload, label="fig-faults",
                           scenario=scenario,
                           check_consistency=check_consistency)]
        for protocol in protocols}
    series = _run_series(specs, max_workers)
    extra_rows: list[dict[str, object]] = []
    for protocol, results in series.items():
        for result in results:
            for phase in result.phases:
                extra_rows.append({"protocol": protocol, **phase.as_row()})
    return FigureResult(
        name="Fault scenario",
        caption=(f"{scenario.name or 'scripted faults'}: per-phase behaviour "
                 "of the three designs under the scenario, with the causal "
                 "checker asserting zero violations throughout.  Expect "
                 "remote-update visibility (not safety) to degrade during "
                 "the partition and recover after the heal."),
        series=series, extra_rows=extra_rows, include_p99=True)


#: Naming-consistent alias (other figures are ``figureN_*``).
figure_faults = fig_faults


# ---------------------------------------------------------------------------
# Single-point helper used by examples and ablation benches
# ---------------------------------------------------------------------------
def single_point(protocol: str, clients: int,
                 config: Optional[ClusterConfig] = None,
                 workload: WorkloadParameters = DEFAULT_WORKLOAD,
                 **config_overrides: object) -> RunResult:
    """Run one protocol at one load point and return the result row."""
    base = config or ClusterConfig()
    if config_overrides:
        base = base.with_changes(**config_overrides)
    base = base.with_changes(clients_per_dc=clients)
    return run_experiment(protocol, base, workload).result


__all__ = [
    "DEFAULT_CLIENT_SWEEP",
    "FAULT_FIGURE_PROTOCOLS",
    "FigureResult",
    "fig_faults",
    "figure_faults",
    "figure4_contrarian_vs_cure",
    "figure5_default_workload",
    "figure6_readers_check_overhead",
    "figure7_write_intensity",
    "figure8_skew",
    "figure9_rot_size",
    "section58_value_size",
    "single_point",
]
