"""Plain-text report formatting for figures and tables.

The benchmarks print the same rows/series the paper plots, as aligned text
tables, so that a run of the benchmark suite doubles as a regeneration of the
paper's evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.metrics.collectors import RunResult


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Format rows as an aligned, pipe-separated text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [" | ".join(header.ljust(width)
                        for header, width in zip(headers, widths))]
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialized:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[RunResult]], *,
                  include_p99: bool = False) -> str:
    """Format throughput-versus-latency series, one block per system."""
    headers = ["system", "clients", "throughput (Kops/s)", "ROT avg (ms)"]
    if include_p99:
        headers.append("ROT p99 (ms)")
    headers.append("PUT avg (ms)")
    rows: list[list[object]] = []
    for name, results in series.items():
        for result in results:
            row: list[object] = [name, result.clients,
                                 f"{result.throughput_kops:.1f}",
                                 f"{result.rot_mean_ms:.3f}"]
            if include_p99:
                row.append(f"{result.rot_p99_ms:.3f}")
            row.append(f"{result.put_mean_ms:.3f}")
            rows.append(row)
    return format_table(headers, rows)


def peak_throughput(results: Sequence[RunResult]) -> float:
    """Maximum throughput (Kops/s) over a load sweep."""
    return max((result.throughput_kops for result in results), default=0.0)


def latency_at_lowest_load(results: Sequence[RunResult]) -> float:
    """Average ROT latency (ms) at the lowest load point of a sweep."""
    if not results:
        return 0.0
    lowest = min(results, key=lambda result: result.clients)
    return lowest.rot_mean_ms


def crossover_load(reference: Sequence[RunResult],
                   challenger: Sequence[RunResult]) -> float | None:
    """Throughput (Kops/s) past which ``challenger`` has lower ROT latency.

    Both sweeps must use the same client counts.  Returns ``None`` when the
    challenger never becomes faster (or the reference never is).
    """
    paired = list(zip(sorted(reference, key=lambda r: r.clients),
                      sorted(challenger, key=lambda r: r.clients)))
    for ref, cha in paired:
        if cha.rot_mean_ms < ref.rot_mean_ms:
            return cha.throughput_kops
    return None


__all__ = [
    "crossover_load",
    "format_series",
    "format_table",
    "latency_at_lowest_load",
    "peak_throughput",
]
