"""Experiment harness: cluster building, runs, load sweeps, figures, tables."""

from repro.harness.builder import BuiltCluster, build_cluster
from repro.harness.runner import ExperimentOutcome, load_sweep, run_experiment
from repro.harness.figures import (
    FigureResult,
    figure4_contrarian_vs_cure,
    figure5_default_workload,
    figure6_readers_check_overhead,
    figure7_write_intensity,
    figure8_skew,
    figure9_rot_size,
    section58_value_size,
)
from repro.harness.tables import table1_workloads, table2_characterization

__all__ = [
    "BuiltCluster",
    "ExperimentOutcome",
    "FigureResult",
    "build_cluster",
    "figure4_contrarian_vs_cure",
    "figure5_default_workload",
    "figure6_readers_check_overhead",
    "figure7_write_intensity",
    "figure8_skew",
    "figure9_rot_size",
    "load_sweep",
    "run_experiment",
    "section58_value_size",
    "table1_workloads",
    "table2_characterization",
]
