"""Experiment harness: cluster building, runs, load sweeps, figures, tables.

Serial entry points
-------------------
:func:`run_experiment` performs one simulated run; :func:`load_sweep` traces
one throughput-versus-latency curve by rerunning the simulation once per
client count.  Both are unchanged and remain the reference implementations.

Parallel experiment runner
--------------------------
Sweep points are independent simulations, so :mod:`repro.harness.parallel`
fans them out over a process pool.  The short version:

>>> from repro.harness import parallel_load_sweep
>>> results = parallel_load_sweep("contrarian", (4, 16, 48), max_workers=4)

* ``parallel_load_sweep(...)`` is a drop-in replacement for
  ``load_sweep(...)``: same arguments, same ordering, and — because every
  run's randomness comes from the explicit per-spec configuration seed —
  bit-identical ``RunResult`` rows for identical seeds, at a fraction of the
  wall-clock on a multi-core machine.
* ``ParallelRunner(max_workers=...).run(specs)`` executes an arbitrary grid
  of picklable :class:`~repro.harness.parallel.RunSpec` objects and collects
  results in spec order; worker failures surface as
  :class:`~repro.harness.parallel.ParallelExecutionError` with the worker's
  traceback attached.
* ``run_grid([...protocols...], client_counts, seeds=...)`` fans a whole
  (protocol x load x seed) grid into one pool;
  :func:`~repro.harness.parallel.derive_seed` derives stable per-cell seeds.
* Worker count: explicit argument > ``REPRO_PARALLEL_WORKERS`` environment
  variable > ``os.cpu_count()``.  One worker means serial in-process
  execution, so the parallel entry points are safe on any machine.

The figure generators (:mod:`repro.harness.figures`) and the measured rows of
Table 2 (:func:`repro.harness.tables.measure_characterization`) route their
grids through this runner; CI's smoke benchmark
(``benchmarks/run_smoke_benchmark.py``) tracks its wall-clock from PR to PR.

Fault scenarios
---------------
Every entry point accepts an optional :class:`~repro.faults.Scenario`
(``run_experiment(..., scenario=...)``, ``RunSpec(scenario=...)``,
``load_sweep(..., scenario=...)``): a deterministic, picklable schedule of
faults (DC partitions, link degradation, slow/paused servers, load spikes,
workload shifts) executed mid-run by a
:class:`~repro.faults.FaultController`.  Results from scenario runs carry
per-phase :class:`~repro.metrics.collectors.PhaseSlice` rows;
:func:`fig_faults` traces all three protocols through a scripted DC
partition with the causal checker asserting zero violations.
"""

from repro.harness.builder import BuiltCluster, build_cluster
from repro.harness.parallel import (
    ParallelExecutionError,
    ParallelRunner,
    RunSpec,
    derive_seed,
    parallel_load_sweep,
    run_grid,
    sweep_specs,
)
from repro.runtime.experiment import RealtimeOutcome, run_realtime_experiment
from repro.harness.runner import ExperimentOutcome, load_sweep, run_experiment
from repro.harness.figures import (
    FigureResult,
    fig_faults,
    figure_faults,
    figure4_contrarian_vs_cure,
    figure5_default_workload,
    figure6_readers_check_overhead,
    figure7_write_intensity,
    figure8_skew,
    figure9_rot_size,
    section58_value_size,
)
from repro.harness.tables import (
    measure_characterization,
    table1_workloads,
    table2_characterization,
)

__all__ = [
    "BuiltCluster",
    "ExperimentOutcome",
    "FigureResult",
    "ParallelExecutionError",
    "ParallelRunner",
    "RunSpec",
    "build_cluster",
    "derive_seed",
    "fig_faults",
    "figure_faults",
    "figure4_contrarian_vs_cure",
    "figure5_default_workload",
    "figure6_readers_check_overhead",
    "figure7_write_intensity",
    "figure8_skew",
    "figure9_rot_size",
    "load_sweep",
    "measure_characterization",
    "parallel_load_sweep",
    "run_experiment",
    "run_grid",
    "RealtimeOutcome",
    "run_realtime_experiment",
    "section58_value_size",
    "sweep_specs",
    "table1_workloads",
    "table2_characterization",
]
