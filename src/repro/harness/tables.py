"""Regeneration of the paper's tables.

* **Table 1** — the workload-parameter grid; rendered from
  :mod:`repro.workload.parameters`.
* **Table 2** — the characterisation of CC systems with ROT support.  The
  static columns (rounds, versions, blocking, metadata) come from the protocol
  registry; when measured runs are supplied the table is extended with the
  overhead actually observed in simulation (messages per PUT, ROT ids per
  readers check), which is the experimental counterpart of the ``O(N)`` /
  ``O(K)`` entries of the paper's table.

:func:`measure_characterization` produces those measured rows by running one
load point per implemented protocol through the process-pool runner of
:mod:`repro.harness.parallel`, so regenerating the full measured table costs
one (parallel) round of simulations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.core.registry import (
    implemented_protocols,
    protocol_properties,
    surveyed_properties,
)
from repro.harness.parallel import ParallelRunner, RunSpec
from repro.harness.report import format_table
from repro.metrics.collectors import RunResult
from repro.workload.parameters import (
    DEFAULT_WORKLOAD,
    ROT_SIZES,
    SKEWS,
    VALUE_SIZES,
    WRITE_RATIOS,
    WorkloadParameters,
)


def table1_workloads() -> str:
    """Render Table 1 (workload parameters; defaults marked with ``*``)."""
    def mark(values: Sequence[object], default: object) -> str:
        return ", ".join(f"{value}*" if value == default else f"{value}"
                         for value in values)

    rows = [
        ["Write/read ratio (w)", "#PUTs/(#PUTs+#reads)",
         mark(WRITE_RATIOS, DEFAULT_WORKLOAD.write_ratio)],
        ["Size of a ROT (p)", "#partitions involved in a ROT",
         mark(ROT_SIZES, DEFAULT_WORKLOAD.rot_size)],
        ["Size of values (b)", "value size in bytes (keys take 8 bytes)",
         mark(VALUE_SIZES, DEFAULT_WORKLOAD.value_size)],
        ["Skew in key popularity (z)", "zipfian parameter",
         mark(SKEWS, DEFAULT_WORKLOAD.skew)],
    ]
    return format_table(["Parameter", "Definition", "Values (default *)"], rows)


def measure_characterization(
        protocols: Optional[Sequence[str]] = None,
        clients: int = 32,
        config: Optional[ClusterConfig] = None,
        workload: Optional[WorkloadParameters] = None, *,
        max_workers: Optional[int] = None) -> dict[str, RunResult]:
    """Measure one load point per protocol for Table 2's measured columns.

    The runs are independent, so they are fanned out over the process-pool
    runner; the mapping is keyed by protocol name in registry order and can
    be passed straight to :func:`table2_characterization`.
    """
    protocols = list(protocols) if protocols is not None else implemented_protocols()
    base = (config or ClusterConfig.bench_scale()).with_changes(
        clients_per_dc=clients)
    specs = [RunSpec(protocol=name, config=base,
                     workload=workload or DEFAULT_WORKLOAD, label="table2")
             for name in protocols]
    results = ParallelRunner(max_workers=max_workers).run(specs)
    return dict(zip(protocols, results))


def table2_characterization(
        measured: Optional[dict[str, RunResult]] = None) -> str:
    """Render Table 2 (characterisation of CC systems with ROT support).

    Parameters
    ----------
    measured:
        Optional mapping from implemented protocol name to a measured
        :class:`RunResult`; when given, measured overhead columns are appended
        for those rows.
    """
    headers = ["System", "Nonblocking", "#Rounds", "#Versions",
               "Write cost c<->s", "Write cost s<->s",
               "Metadata c<->s", "Metadata s<->s", "Clock", "LO"]
    rows: list[list[object]] = []
    for properties in surveyed_properties():
        rows.append(_static_row(properties))
    for name in implemented_protocols():
        rows.append(_static_row(protocol_properties(name)))
    text = format_table(headers, rows)

    if measured:
        measured_headers = ["System", "throughput (Kops/s)", "ROT avg (ms)",
                            "PUT avg (ms)", "msgs sent",
                            "ROT ids / readers check"]
        measured_rows = []
        for name, result in measured.items():
            measured_rows.append([
                protocol_properties(name).name,
                f"{result.throughput_kops:.1f}",
                f"{result.rot_mean_ms:.3f}",
                f"{result.put_mean_ms:.3f}",
                result.overhead.messages_sent,
                f"{result.overhead.average_distinct_ids_per_check():.1f}",
            ])
        text += "\n\nMeasured overhead (bench-scale simulation):\n"
        text += format_table(measured_headers, measured_rows)
    return text


def _static_row(properties) -> list[object]:
    return [
        properties.name,
        "yes" if properties.nonblocking else "no",
        properties.rot_rounds,
        properties.rot_versions,
        properties.write_cost_client_server,
        properties.write_cost_server_server,
        properties.metadata_client_server,
        properties.metadata_server_server,
        properties.clock,
        "yes" if properties.latency_optimal else "no",
    ]


__all__ = ["measure_characterization", "table1_workloads",
           "table2_characterization"]
