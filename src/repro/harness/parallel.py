"""Process-pool experiment runner.

Every figure of the paper is a throughput-versus-latency curve produced by
rerunning the full simulation once per (protocol, workload point, client
count, seed) combination.  The runs are completely independent — each one
builds its own simulator, cluster and RNGs from an explicit seed — which
makes a sweep embarrassingly parallel.  This module fans a grid of runs out
over ``multiprocessing`` workers:

* :class:`RunSpec` — a picklable description of one run (protocol, cluster
  configuration, workload point, label).  Specs carry everything a worker
  needs; nothing is inherited from parent-process state, so a spec executes
  identically in-process, in a forked worker and in a spawned worker.
* :class:`ParallelRunner` — executes a sequence of specs over a process pool
  and collects the resulting :class:`~repro.metrics.collectors.RunResult`
  rows *in spec order*, regardless of which worker finished first.  Worker
  failures are re-raised in the parent as :class:`ParallelExecutionError`
  with the original traceback attached.
* :func:`parallel_load_sweep` — a drop-in replacement for
  :func:`repro.harness.runner.load_sweep`.  It builds exactly the same
  per-point configurations as the serial sweep, so for the same seeds it
  returns bit-identical result rows — only the wall-clock changes.
* :func:`derive_seed` — deterministic per-spec seed derivation for grids
  that want independent randomness per cell (e.g. repeating a sweep over
  several seeds).  The derivation hashes the components with SHA-256, so it
  is stable across processes, platforms and ``PYTHONHASHSEED`` values.

Usage::

    from repro.harness.parallel import parallel_load_sweep

    results = parallel_load_sweep("contrarian", (4, 16, 48), max_workers=4)

Worker-count resolution: an explicit ``max_workers`` wins; otherwise the
``REPRO_PARALLEL_WORKERS`` environment variable; otherwise ``os.cpu_count()``.
A resolved count of one (or a single spec) runs serially in-process, so the
parallel entry points are safe defaults on any machine.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import traceback
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.errors import SimulationError
from repro.faults.scenario import Scenario
from repro.metrics.collectors import RunResult
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters

#: Environment variable consulted when ``max_workers`` is not given.
WORKERS_ENV_VAR = "REPRO_PARALLEL_WORKERS"


class PoolTaskError(SimulationError):
    """A :class:`TaskPool` task failed in its worker process.

    Mirrors :class:`ParallelExecutionError` for free-form tasks: the worker
    traceback travels back as a string (the original exception object may
    not survive pickling) and is raised from :meth:`TaskHandle.result`.
    """

    def __init__(self, worker_traceback: str) -> None:
        self.worker_traceback = worker_traceback
        super().__init__(f"pool task failed:\n{worker_traceback}")


class ParallelExecutionError(SimulationError):
    """A worker process failed while executing a :class:`RunSpec`.

    The stringified worker traceback is preserved on ``worker_traceback``
    (and included in the message) because the original exception object may
    not survive pickling back to the parent.
    """

    def __init__(self, spec: "RunSpec", worker_traceback: str) -> None:
        self.spec = spec
        self.worker_traceback = worker_traceback
        super().__init__(
            f"worker failed while running {spec.describe()}:\n{worker_traceback}")


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one experiment run.

    ``config.seed`` is the run's complete source of randomness, so two
    executions of the same spec — in any process — produce the same
    :class:`RunResult`.
    """

    protocol: str
    config: ClusterConfig = field(default_factory=ClusterConfig)
    workload: WorkloadParameters = field(default_factory=lambda: DEFAULT_WORKLOAD)
    label: str = ""
    scenario: Optional[Scenario] = None
    check_consistency: bool = False

    def describe(self) -> str:
        """Human-readable one-line description (used in error messages)."""
        scenario = ""
        if self.scenario is not None and not self.scenario.is_empty:
            scenario = f", scenario={self.scenario.name or 'anonymous'!r}"
        return (f"RunSpec(protocol={self.protocol!r}, "
                f"clients_per_dc={self.config.clients_per_dc}, "
                f"dcs={self.config.num_dcs}, seed={self.config.seed}, "
                f"label={self.label!r}{scenario})")


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a deterministic 63-bit seed from a base seed and components.

    Independent grid cells (e.g. repetitions of a sweep) need independent
    randomness that does not depend on execution order or process identity.
    Hashing with SHA-256 keeps the derivation reproducible everywhere,
    unlike the built-in ``hash`` which is salted per process.
    """
    text = ":".join([str(base_seed)] + [str(component) for component in components])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec to completion and return its result row.

    This is the function worker processes execute; it is importable at module
    top level so specs survive the ``spawn`` start method as well as ``fork``.
    """
    # Imported lazily so that pickling a RunSpec never drags the whole
    # protocol stack into the parent's pickle payloads.
    from repro.harness.runner import run_experiment

    outcome = run_experiment(spec.protocol, spec.config, spec.workload,
                             scenario=spec.scenario,
                             check_consistency=spec.check_consistency,
                             label=spec.label)
    return outcome.result


def _execute_spec_guarded(spec: RunSpec) -> tuple[bool, object]:
    """Worker wrapper: never raises, returns ``(ok, result_or_traceback)``.

    Exceptions are flattened to a traceback string in the worker because not
    every exception (or exception argument) survives the pickling round-trip
    back to the parent.
    """
    try:
        return True, execute_spec(spec)
    except Exception:
        # Exception only: KeyboardInterrupt/SystemExit must keep behaving as
        # interrupts (the pool tears down) rather than being mislabeled as a
        # failed simulation.
        return False, traceback.format_exc()


def resolve_worker_count(max_workers: Optional[int] = None) -> int:
    """Resolve the worker count: explicit > environment > CPU count."""
    if max_workers is not None:
        return max(1, int(max_workers))
    env_value = os.environ.get(WORKERS_ENV_VAR)
    if env_value:
        try:
            return max(1, int(env_value))
        except ValueError:
            raise SimulationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env_value!r}")
    return max(1, os.cpu_count() or 1)


class ParallelRunner:
    """Fans :class:`RunSpec` grids out over a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent worker processes; resolved via
        :func:`resolve_worker_count` when omitted.  A bound of one executes
        specs serially in-process (no pool, no pickling).
    start_method:
        ``multiprocessing`` start method.  Defaults to the platform default
        (``fork`` on Linux, ``spawn`` on macOS/Windows — ``fork`` is not
        fork-safe there); results are identical either way because specs are
        self-contained.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.max_workers = resolve_worker_count(max_workers)
        if start_method is None:
            start_method = multiprocessing.get_start_method()
        self.start_method = start_method

    def run(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute ``specs`` and return their results in spec order.

        Ordering is guaranteed by collection, not by scheduling: workers may
        finish in any order, but result ``i`` always belongs to ``specs[i]``.
        The first failing spec (in spec order) raises
        :class:`ParallelExecutionError`.
        """
        specs = list(specs)
        workers = min(self.max_workers, len(specs))
        if workers <= 1:
            # Same error contract as the pool path: callers catch one
            # exception type regardless of the resolved worker count.
            results = []
            for spec in specs:
                try:
                    results.append(execute_spec(spec))
                except Exception as exc:
                    raise ParallelExecutionError(spec, traceback.format_exc()) from exc
            return results
        context = multiprocessing.get_context(self.start_method)
        # chunksize=1 keeps long and short runs balanced across workers;
        # Pool.map preserves input order in its result list.
        with context.Pool(processes=workers) as pool:
            payloads = pool.map(_execute_spec_guarded, specs, chunksize=1)
        results: list[RunResult] = []
        for spec, (ok, payload) in zip(specs, payloads):
            if not ok:
                raise ParallelExecutionError(spec, str(payload))
            results.append(payload)  # type: ignore[arg-type]
        return results


def _call_task_guarded(func, args) -> tuple[bool, object]:
    """Worker wrapper for :class:`TaskPool`: never raises, returns
    ``(ok, result_or_traceback)`` (same contract as spec execution)."""
    try:
        return True, func(*args)
    except Exception:
        return False, traceback.format_exc()


class TaskHandle:
    """A pending :class:`TaskPool` task; :meth:`result` blocks and joins it."""

    __slots__ = ("_async_result", "_payload", "_ok")

    def __init__(self, async_result=None, payload: object = None,
                 ok: bool = True) -> None:
        self._async_result = async_result
        self._payload = payload
        self._ok = ok

    def result(self) -> object:
        """The task's return value; raises :class:`PoolTaskError` on failure."""
        if self._async_result is not None:
            self._ok, self._payload = self._async_result.get()
            self._async_result = None
        if not self._ok:
            raise PoolTaskError(str(self._payload))
        return self._payload


class TaskPool:
    """A persistent process pool for free-form function tasks.

    The streaming consistency checker submits sealed verification windows
    here so they check concurrently with ingestion.  Unlike
    :class:`ParallelRunner` (one pool per spec grid, results in spec order),
    a :class:`TaskPool` stays alive across submissions and hands back one
    :class:`TaskHandle` per task; callers join handles in whatever order
    suits them.  A resolved worker count of one runs tasks inline at submit
    time — same :class:`TaskHandle`/:class:`PoolTaskError` contract, no
    processes, no pickling.

    Submitted functions must be importable at module top level (the pool
    uses the ``spawn``-safe guarded-call pattern of :func:`execute_spec`).
    """

    def __init__(self, max_workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.max_workers = resolve_worker_count(max_workers)
        if start_method is None:
            start_method = multiprocessing.get_start_method()
        self.start_method = start_method
        self._pool = None
        if self.max_workers > 1:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.max_workers)

    def submit(self, func, *args) -> TaskHandle:
        """Schedule ``func(*args)`` and return its handle."""
        if self._pool is None:
            ok, payload = _call_task_guarded(func, args)
            return TaskHandle(payload=payload, ok=ok)
        return TaskHandle(
            async_result=self._pool.apply_async(_call_task_guarded,
                                                (func, args)))

    def close(self) -> None:
        """Finish outstanding tasks and release the workers; idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


def sweep_specs(protocol: str, client_counts: Sequence[int],
                config: Optional[ClusterConfig] = None,
                workload: Optional[WorkloadParameters] = None, *,
                scenario: Optional[Scenario] = None,
                check_consistency: bool = False,
                label: str = "") -> list[RunSpec]:
    """The specs of one load sweep — identical points to the serial sweep."""
    config = config or ClusterConfig()
    workload = workload or DEFAULT_WORKLOAD
    return [RunSpec(protocol=protocol,
                    config=config.with_changes(clients_per_dc=clients),
                    workload=workload, label=label, scenario=scenario,
                    check_consistency=check_consistency)
            for clients in client_counts]


def parallel_load_sweep(protocol: str, client_counts: Sequence[int],
                        config: Optional[ClusterConfig] = None,
                        workload: Optional[WorkloadParameters] = None, *,
                        scenario: Optional[Scenario] = None,
                        label: str = "",
                        max_workers: Optional[int] = None,
                        runner: Optional[ParallelRunner] = None) -> list[RunResult]:
    """Drop-in parallel replacement for :func:`repro.harness.runner.load_sweep`.

    Builds the exact per-point configurations the serial sweep builds (same
    seeds, same workload, same fault scenario), so the returned rows are
    bit-identical to the serial ones; only wall-clock time differs.
    """
    runner = runner or ParallelRunner(max_workers=max_workers)
    return runner.run(sweep_specs(protocol, client_counts, config, workload,
                                  scenario=scenario, label=label))


def grid_specs(protocols: Sequence[str], client_counts: Sequence[int],
               seeds: Sequence[int] = (None,),  # type: ignore[assignment]
               config: Optional[ClusterConfig] = None,
               workload: Optional[WorkloadParameters] = None, *,
               scenario: Optional[Scenario] = None,
               check_consistency: bool = False,
               label: str = "") -> list[RunSpec]:
    """Specs for a full (protocol x client count x seed) grid.

    A seed of ``None`` keeps the configuration's own seed (matching the
    serial sweep); integer seeds are mixed into a per-cell seed with
    :func:`derive_seed` so that repetitions are independent but reproducible.
    An optional fault ``scenario`` is attached to every cell.
    """
    config = config or ClusterConfig()
    workload = workload or DEFAULT_WORKLOAD
    specs = []
    for protocol in protocols:
        for seed in seeds:
            for clients in client_counts:
                point = config.with_changes(clients_per_dc=clients)
                if seed is not None:
                    point = point.with_changes(
                        seed=derive_seed(config.seed, protocol, clients, seed))
                specs.append(RunSpec(protocol=protocol, config=point,
                                     workload=workload, label=label,
                                     scenario=scenario,
                                     check_consistency=check_consistency))
    return specs


def run_grid(protocols: Sequence[str], client_counts: Sequence[int],
             seeds: Sequence[int] = (None,),  # type: ignore[assignment]
             config: Optional[ClusterConfig] = None,
             workload: Optional[WorkloadParameters] = None, *,
             scenario: Optional[Scenario] = None,
             check_consistency: bool = False,
             label: str = "",
             max_workers: Optional[int] = None) -> dict[str, list[RunResult]]:
    """Run a full grid in one pool; results grouped by protocol, spec order.

    Fanning the whole grid into a single :meth:`ParallelRunner.run` call (as
    opposed to one pool per sweep) keeps every worker busy until the last
    run finishes, which matters when protocols have very different costs.
    """
    specs = grid_specs(protocols, client_counts, seeds, config, workload,
                       scenario=scenario, check_consistency=check_consistency,
                       label=label)
    results = ParallelRunner(max_workers=max_workers).run(specs)
    grouped: dict[str, list[RunResult]] = {protocol: [] for protocol in protocols}
    for spec, result in zip(specs, results):
        grouped[spec.protocol].append(result)
    return grouped


__all__ = [
    "ParallelExecutionError",
    "ParallelRunner",
    "PoolTaskError",
    "RunSpec",
    "TaskHandle",
    "TaskPool",
    "WORKERS_ENV_VAR",
    "derive_seed",
    "execute_spec",
    "grid_specs",
    "parallel_load_sweep",
    "resolve_worker_count",
    "run_grid",
    "sweep_specs",
]
