"""Running experiments and load sweeps.

``run_experiment`` performs one simulated run of one protocol under one
workload and returns the measured :class:`~repro.metrics.collectors.RunResult`
plus the raw pieces (the built cluster and, when enabled, the consistency
checker report).  ``load_sweep`` varies the number of closed-loop clients to
trace one throughput-versus-latency curve, which is how every figure in the
paper's evaluation is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.causal.checker import CheckerReport
from repro.cluster.config import ClusterConfig
from repro.faults.controller import FaultController
from repro.faults.scenario import Scenario
from repro.harness.builder import BuiltCluster, build_cluster
from repro.metrics.collectors import RunResult
from repro.obs.trace import TraceAssembler
from repro.sim.costs import OverheadCounters
from repro.workload.parameters import DEFAULT_WORKLOAD, WorkloadParameters


@dataclass
class ExperimentOutcome:
    """The full outcome of one run (result row plus inspectable state)."""

    result: RunResult
    cluster: BuiltCluster
    checker_report: Optional[CheckerReport] = None
    faults: Optional[FaultController] = None
    #: Assembled virtual-time timeline (None unless ``trace=True``); feed to
    #: :func:`repro.obs.export.write_chrome_trace` for a Perfetto dump.
    trace: Optional[TraceAssembler] = None


def run_experiment(protocol: str,
                   config: Optional[ClusterConfig] = None,
                   workload: Optional[WorkloadParameters] = None, *,
                   enable_checker: bool = False,
                   check_consistency: bool = False,
                   scenario: Optional[Scenario] = None,
                   trace: bool = False,
                   label: str = "") -> ExperimentOutcome:
    """Run one experiment and return its outcome.

    Parameters
    ----------
    protocol:
        Registered protocol name.
    config:
        Cluster configuration; defaults to the bench-scale configuration.
    workload:
        Workload point; defaults to the paper's default workload.
    enable_checker:
        Record the full history of PUTs and ROTs.
    check_consistency:
        Also run the causal-consistency checker after the run and raise if a
        violation is found (implies ``enable_checker``).
    scenario:
        Optional fault scenario to execute during the run; the result then
        carries one :class:`~repro.metrics.collectors.PhaseSlice` per phase.
        ``None`` (or an empty scenario) takes the unmodified healthy path.
    trace:
        Record the run's repro.obs event stream (virtual-time stamps) and
        attach the assembled timeline to the outcome; the result row then
        carries the per-write remote-visibility lag distribution.  Never
        perturbs the simulation.
    """
    config = config or ClusterConfig()
    workload = workload or DEFAULT_WORKLOAD
    cluster = build_cluster(protocol, config, workload,
                            enable_checker=enable_checker or check_consistency,
                            trace=trace)
    controller: Optional[FaultController] = None
    if scenario is not None and not scenario.is_empty:
        controller = FaultController(cluster.topology, cluster.metrics, scenario)
        controller.install()
    cluster.start()
    cluster.sim.run(until=config.duration_seconds)
    cluster.stop()
    if controller is not None:
        controller.shutdown()

    assembler: Optional[TraceAssembler] = None
    if cluster.trace_bus is not None:
        assembler = TraceAssembler()
        assembler.ingest_bus(cluster.trace_bus)

    overhead = OverheadCounters()
    for server in cluster.topology.all_servers():
        overhead.merge(server.counters)
    result = cluster.metrics.finalize(
        protocol=protocol,
        num_dcs=config.num_dcs,
        clients=config.total_clients,
        measurement_seconds=config.measurement_seconds,
        overhead=overhead,
        cpu_utilization=cluster.topology.average_cpu_utilization(
            config.duration_seconds),
        label=label or workload.describe(),
        visibility_trace=(assembler.visibility_summary()
                          if assembler is not None else None))

    report: Optional[CheckerReport] = None
    if cluster.checker is not None:
        report = cluster.checker.check()
        if check_consistency:
            report.raise_if_violations()
    return ExperimentOutcome(result=result, cluster=cluster,
                             checker_report=report, faults=controller,
                             trace=assembler)


def load_sweep(protocol: str, client_counts: Sequence[int],
               config: Optional[ClusterConfig] = None,
               workload: Optional[WorkloadParameters] = None, *,
               scenario: Optional[Scenario] = None,
               label: str = "") -> list[RunResult]:
    """Trace one throughput-versus-latency curve.

    Each point reruns the full simulation with a different number of
    closed-loop clients per DC, exactly like the paper's methodology of
    spawning more client threads to increase the load.  An optional
    ``scenario`` is executed identically at every load point.
    """
    config = config or ClusterConfig()
    results: list[RunResult] = []
    for clients in client_counts:
        point_config = config.with_changes(clients_per_dc=clients)
        outcome = run_experiment(protocol, point_config, workload,
                                 scenario=scenario, label=label)
        results.append(outcome.result)
    return results


__all__ = ["ExperimentOutcome", "load_sweep", "run_experiment"]
