"""Latency recording and summarisation.

The paper reports average ROT latency for every experiment and the 99th
percentile for the default workload (Figure 5b).  Latencies are recorded in
simulated seconds and reported in milliseconds, matching the paper's axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clocks.units import as_milliseconds


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one latency population (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0,
                              p99_ms=0.0, max_ms=0.0)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sequence."""
    if not sorted_values:
        return 0.0
    if fraction <= 0:
        return sorted_values[0]
    if fraction >= 1:
        return sorted_values[-1]
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * len(sorted_values) + 0.5)) - 1))
    return sorted_values[rank]


class LatencyRecorder:
    """Accumulates individual operation latencies (simulated seconds)."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency_seconds: float) -> None:
        """Record one operation latency."""
        self._samples.append(latency_seconds)

    @property
    def count(self) -> int:
        return len(self._samples)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)

    def extend(self, samples_seconds) -> None:
        """Fold raw samples (seconds) into this recorder (cross-process
        result shipping)."""
        self._samples.extend(samples_seconds)

    def samples(self) -> tuple[float, ...]:
        """All recorded samples in seconds (copy, insertion order)."""
        return tuple(self._samples)

    def samples_ms(self) -> list[float]:
        """All samples converted to milliseconds (copy)."""
        return [as_milliseconds(sample) for sample in self._samples]

    def summary(self) -> LatencySummary:
        """Compute summary statistics over all recorded samples."""
        if not self._samples:
            return LatencySummary.empty()
        ordered = sorted(self._samples)
        total = sum(ordered)
        return LatencySummary(
            count=len(ordered),
            mean_ms=as_milliseconds(total / len(ordered)),
            p50_ms=as_milliseconds(percentile(ordered, 0.50)),
            p95_ms=as_milliseconds(percentile(ordered, 0.95)),
            p99_ms=as_milliseconds(percentile(ordered, 0.99)),
            max_ms=as_milliseconds(ordered[-1]),
        )


__all__ = ["LatencyRecorder", "LatencySummary", "percentile"]
