"""Run-level metric aggregation.

A :class:`MetricsRegistry` is shared by all clients and servers of one run.
Clients record per-operation latencies (split by operation type and excluding
the warmup window), servers contribute their overhead counters, and at the end
of the run the registry condenses everything into a :class:`RunResult` — the
row format used by the figure/table harness.

Runs that execute a fault scenario additionally slice their measurements into
*phases*: the fault controller opens a phase at every scheduled event
(:meth:`MetricsRegistry.begin_phase`) and records fault gauges into it
(:meth:`MetricsRegistry.record_gauge`), and the finalised :class:`RunResult`
carries one :class:`PhaseSlice` per phase.  Scenario-free runs never start a
phase, so their results are unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.overheads import OverheadCounters

#: Version of the ``as_json_dict`` payload layout.  Bump when the layout
#: changes; ``RunResult.from_json_dict`` accepts every version listed in
#: :data:`SUPPORTED_SCHEMA_VERSIONS`.  Version 3 added the optional
#: ``visibility_trace`` summary (absent in earlier payloads).
SCHEMA_VERSION = 3
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)


@dataclass(frozen=True)
class PhaseSlice:
    """The measurements of one scenario phase (e.g. before/during/after a
    partition).

    ``start``/``end`` are simulated seconds; throughput and latencies cover
    operations that *completed* inside the window (and after the warmup, like
    the run-level statistics).  ``gauges`` summarises the fault gauges sampled
    during the phase as ``{"<gauge>_max": ..., "<gauge>_mean": ...}`` — e.g.
    stalled ROTs, remote-visibility lag and CC-LO reader-record growth.
    """

    name: str
    start: float
    end: float
    rots_completed: int
    puts_completed: int
    throughput_kops: float
    rot_latency: LatencySummary
    put_latency: LatencySummary
    gauges: dict[str, float] = field(default_factory=dict)

    def as_json_dict(self) -> dict[str, object]:
        """Serialise into plain JSON-compatible types."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "rots_completed": self.rots_completed,
            "puts_completed": self.puts_completed,
            "throughput_kops": self.throughput_kops,
            "rot_latency": asdict(self.rot_latency),
            "put_latency": asdict(self.put_latency),
            "gauges": dict(self.gauges),
        }

    @staticmethod
    def from_json_dict(payload: dict[str, object]) -> "PhaseSlice":
        """Inverse of :meth:`as_json_dict`."""
        return PhaseSlice(
            name=str(payload["name"]),
            start=float(payload["start"]),  # type: ignore[arg-type]
            end=float(payload["end"]),  # type: ignore[arg-type]
            rots_completed=int(payload["rots_completed"]),  # type: ignore[arg-type]
            puts_completed=int(payload["puts_completed"]),  # type: ignore[arg-type]
            throughput_kops=float(payload["throughput_kops"]),  # type: ignore[arg-type]
            rot_latency=LatencySummary(**payload["rot_latency"]),  # type: ignore[arg-type]
            put_latency=LatencySummary(**payload["put_latency"]),  # type: ignore[arg-type]
            gauges=dict(payload.get("gauges", {})),  # type: ignore[arg-type]
        )

    def as_row(self) -> dict[str, object]:
        """Flatten into a dictionary suitable for tabular reports."""
        row: dict[str, object] = {
            "phase": self.name,
            "window_s": f"{self.start:.2f}-{self.end:.2f}",
            "throughput_kops": round(self.throughput_kops, 2),
            "rot_avg_ms": round(self.rot_latency.mean_ms, 3),
            "rot_p99_ms": round(self.rot_latency.p99_ms, 3),
            "put_avg_ms": round(self.put_latency.mean_ms, 3),
        }
        for gauge in sorted(self.gauges):
            if gauge.endswith("_max"):
                row[gauge] = round(self.gauges[gauge], 3)
        return row


@dataclass(frozen=True)
class RunResult:
    """The measured outcome of one simulated run.

    Throughput follows the paper's definition: completed PUTs plus completed
    ROTs per second of measurement window.  ``phases`` is empty unless the run
    executed a fault scenario.
    """

    protocol: str
    num_dcs: int
    clients: int
    throughput_kops: float
    rot_latency: LatencySummary
    put_latency: LatencySummary
    rots_completed: int
    puts_completed: int
    overhead: OverheadCounters
    cpu_utilization: float
    label: str = ""
    phases: tuple[PhaseSlice, ...] = ()
    #: Per-write issue-to-remote-visibility lag distribution (the paper's
    #: update-visibility metric, Fig. 2), assembled from the repro.obs
    #: timeline; None unless the run traced.
    visibility_trace: Optional[LatencySummary] = None

    @property
    def rot_mean_ms(self) -> float:
        """Average ROT latency in milliseconds (Figure 4/5/7/8/9 y-axis)."""
        return self.rot_latency.mean_ms

    @property
    def rot_p99_ms(self) -> float:
        """99th-percentile ROT latency in milliseconds (Figure 5b)."""
        return self.rot_latency.p99_ms

    @property
    def put_mean_ms(self) -> float:
        """Average PUT latency in milliseconds (Section 5.2 aside)."""
        return self.put_latency.mean_ms

    def phase(self, name: str) -> PhaseSlice:
        """The (last) phase slice called ``name``; raises if absent."""
        for candidate in reversed(self.phases):
            if candidate.name == name:
                return candidate
        raise KeyError(f"run has no phase {name!r}; "
                       f"phases: {[p.name for p in self.phases]}")

    def as_json_dict(self) -> dict[str, object]:
        """Serialise into plain JSON-compatible types.

        Used by the CI benchmarks (``BENCH_smoke.json``, ``BENCH_faults.json``)
        and any other consumer that persists result rows across processes or
        runs.  The bulky per-check sample lists of the overhead counters are
        summarised rather than dumped; :meth:`from_json_dict` is the inverse
        (modulo those dropped sample lists).
        """
        overhead = asdict(self.overhead)
        for samples in ("per_check_distinct", "per_check_cumulative",
                        "per_check_partitions"):
            overhead.pop(samples, None)
        return {
            "schema_version": SCHEMA_VERSION,
            "protocol": self.protocol,
            "num_dcs": self.num_dcs,
            "clients": self.clients,
            "throughput_kops": self.throughput_kops,
            "rot_latency": asdict(self.rot_latency),
            "put_latency": asdict(self.put_latency),
            "rots_completed": self.rots_completed,
            "puts_completed": self.puts_completed,
            "overhead": overhead,
            "cpu_utilization": self.cpu_utilization,
            "label": self.label,
            "phases": [phase.as_json_dict() for phase in self.phases],
            "visibility_trace": (asdict(self.visibility_trace)
                                 if self.visibility_trace is not None
                                 else None),
        }

    @staticmethod
    def from_json_dict(payload: dict[str, object]) -> "RunResult":
        """Reconstruct a result row from :meth:`as_json_dict` output.

        Accepts every schema version in :data:`SUPPORTED_SCHEMA_VERSIONS`
        (version 1 payloads carry no ``phases``).  The per-check sample lists
        of the overhead counters are not serialised, so they come back empty;
        every scalar field round-trips exactly, which is what lets persisted
        ``BENCH_*.json`` artifacts be reloaded and diffed.
        """
        version = payload.get("schema_version", 1)
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported RunResult schema version {version!r}; "
                f"supported: {SUPPORTED_SCHEMA_VERSIONS}")
        return RunResult(
            protocol=str(payload["protocol"]),
            num_dcs=int(payload["num_dcs"]),  # type: ignore[arg-type]
            clients=int(payload["clients"]),  # type: ignore[arg-type]
            throughput_kops=float(payload["throughput_kops"]),  # type: ignore[arg-type]
            rot_latency=LatencySummary(**payload["rot_latency"]),  # type: ignore[arg-type]
            put_latency=LatencySummary(**payload["put_latency"]),  # type: ignore[arg-type]
            rots_completed=int(payload["rots_completed"]),  # type: ignore[arg-type]
            puts_completed=int(payload["puts_completed"]),  # type: ignore[arg-type]
            overhead=OverheadCounters(**payload["overhead"]),  # type: ignore[arg-type]
            cpu_utilization=float(payload["cpu_utilization"]),  # type: ignore[arg-type]
            label=str(payload.get("label", "")),
            phases=tuple(PhaseSlice.from_json_dict(phase)  # type: ignore[arg-type]
                         for phase in payload.get("phases", ())),
            visibility_trace=(
                LatencySummary(**payload["visibility_trace"])  # type: ignore[arg-type]
                if payload.get("visibility_trace") is not None else None),
        )

    def as_row(self) -> dict[str, object]:
        """Flatten into a dictionary suitable for tabular reports."""
        return {
            "protocol": self.protocol,
            "dcs": self.num_dcs,
            "clients": self.clients,
            "throughput_kops": round(self.throughput_kops, 2),
            "rot_avg_ms": round(self.rot_latency.mean_ms, 3),
            "rot_p99_ms": round(self.rot_latency.p99_ms, 3),
            "put_avg_ms": round(self.put_latency.mean_ms, 3),
            "rots": self.rots_completed,
            "puts": self.puts_completed,
            "cpu_util": round(self.cpu_utilization, 3),
            "readers_check_ids_distinct": round(
                self.overhead.average_distinct_ids_per_check(), 1),
            "readers_check_ids_cumulative": round(
                self.overhead.average_cumulative_ids_per_check(), 1),
        }


class _PhaseAccumulator:
    """Mutable per-phase sink the registry fills while a scenario runs."""

    __slots__ = ("name", "start", "rot_latencies", "put_latencies",
                 "rots_completed", "puts_completed", "gauge_samples")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.rot_latencies = LatencyRecorder()
        self.put_latencies = LatencyRecorder()
        self.rots_completed = 0
        self.puts_completed = 0
        self.gauge_samples: dict[str, list[float]] = {}

    def finalize(self, end: float, warmup_seconds: float) -> PhaseSlice:
        # Operations completing during warmup are never recorded, so the
        # effective measurement window of a phase starts no earlier than the
        # warmup boundary.
        effective_start = max(self.start, warmup_seconds)
        window = max(end - effective_start, 0.0)
        operations = self.rots_completed + self.puts_completed
        throughput = operations / window if window > 0 else 0.0
        gauges: dict[str, float] = {}
        for name, samples in sorted(self.gauge_samples.items()):
            if samples:
                gauges[f"{name}_max"] = max(samples)
                gauges[f"{name}_mean"] = sum(samples) / len(samples)
        return PhaseSlice(
            name=self.name, start=self.start, end=end,
            rots_completed=self.rots_completed,
            puts_completed=self.puts_completed,
            throughput_kops=throughput / 1000.0,
            rot_latency=self.rot_latencies.summary(),
            put_latency=self.put_latencies.summary(),
            gauges=gauges)


@dataclass
class MetricsRegistry:
    """Mutable metric sink shared by every node of a run."""

    warmup_seconds: float = 0.0
    rot_latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    put_latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    rots_completed: int = 0
    puts_completed: int = 0
    rots_issued: int = 0
    puts_issued: int = 0
    _phases: list[_PhaseAccumulator] = field(default_factory=list, repr=False)

    def record_rot(self, started_at: float, completed_at: float) -> None:
        """Record a completed ROT (ignored if it completed during warmup)."""
        if completed_at < self.warmup_seconds:
            return
        self.rots_completed += 1
        self.rot_latencies.record(completed_at - started_at)
        if self._phases:
            phase = self._phases[-1]
            phase.rots_completed += 1
            phase.rot_latencies.record(completed_at - started_at)

    def record_put(self, started_at: float, completed_at: float) -> None:
        """Record a completed PUT (ignored if it completed during warmup)."""
        if completed_at < self.warmup_seconds:
            return
        self.puts_completed += 1
        self.put_latencies.record(completed_at - started_at)
        if self._phases:
            phase = self._phases[-1]
            phase.puts_completed += 1
            phase.put_latencies.record(completed_at - started_at)

    def note_issue(self, is_put: bool) -> None:
        """Count an issued operation (diagnostics; includes warmup)."""
        if is_put:
            self.puts_issued += 1
        else:
            self.rots_issued += 1

    def absorb(self, *, rot_samples, put_samples,
               rots_issued: int = 0, puts_issued: int = 0) -> None:
        """Fold a worker process's shipped measurements into this registry.

        The worker already applied its warmup filter, so samples are folded
        in verbatim (completed counts equal sample counts by construction).
        """
        self.rots_completed += len(rot_samples)
        self.puts_completed += len(put_samples)
        self.rot_latencies.extend(rot_samples)
        self.put_latencies.extend(put_samples)
        self.rots_issued += rots_issued
        self.puts_issued += puts_issued

    # ----------------------------------------------------------------- phases
    def begin_phase(self, name: str, now: float) -> None:
        """Open a new metric phase at simulated time ``now``.

        Called by the fault controller; everything recorded from here on is
        attributed to the new phase (the previous one ends at ``now``).
        Consecutive ``begin_phase`` calls at the same instant replace the
        still-empty phase instead of leaving a zero-width slice behind.
        """
        if self._phases and self._phases[-1].start == now:
            self._phases[-1] = _PhaseAccumulator(name, now)
            return
        self._phases.append(_PhaseAccumulator(name, now))

    def record_gauge(self, name: str, value: float) -> None:
        """Record one fault-gauge sample into the current phase (if any)."""
        if self._phases:
            self._phases[-1].gauge_samples.setdefault(name, []).append(value)

    @property
    def phase_tracking_active(self) -> bool:
        """Whether a fault scenario opened at least one phase."""
        return bool(self._phases)

    # ------------------------------------------------------------------ final
    def finalize(self, *, protocol: str, num_dcs: int, clients: int,
                 measurement_seconds: float, overhead: OverheadCounters,
                 cpu_utilization: float, label: str = "",
                 rot_size: Optional[int] = None,
                 visibility_trace: Optional[LatencySummary] = None
                 ) -> RunResult:
        """Produce the immutable result row for this run.

        ``rot_size`` is accepted for interface completeness (the paper counts
        throughput in operations, not individual reads, so it is not used in
        the computation).  ``visibility_trace`` is the assembled per-write
        remote-visibility lag distribution of a traced run (see
        :mod:`repro.obs`).
        """
        del rot_size
        operations = self.rots_completed + self.puts_completed
        throughput = operations / measurement_seconds if measurement_seconds > 0 else 0.0
        end_of_run = self.warmup_seconds + measurement_seconds
        phases = []
        for accumulator, successor in zip(self._phases, self._phases[1:] + [None]):
            end = successor.start if successor is not None else end_of_run
            phases.append(accumulator.finalize(end, self.warmup_seconds))
        return RunResult(
            protocol=protocol,
            num_dcs=num_dcs,
            clients=clients,
            throughput_kops=throughput / 1000.0,
            rot_latency=self.rot_latencies.summary(),
            put_latency=self.put_latencies.summary(),
            rots_completed=self.rots_completed,
            puts_completed=self.puts_completed,
            overhead=overhead,
            cpu_utilization=cpu_utilization,
            label=label,
            phases=tuple(phases),
            visibility_trace=visibility_trace,
        )


__all__ = [
    "MetricsRegistry",
    "PhaseSlice",
    "RunResult",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
]
