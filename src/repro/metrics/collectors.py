"""Run-level metric aggregation.

A :class:`MetricsRegistry` is shared by all clients and servers of one run.
Clients record per-operation latencies (split by operation type and excluding
the warmup window), servers contribute their overhead counters, and at the end
of the run the registry condenses everything into a :class:`RunResult` — the
row format used by the figure/table harness.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.sim.costs import OverheadCounters


@dataclass(frozen=True)
class RunResult:
    """The measured outcome of one simulated run.

    Throughput follows the paper's definition: completed PUTs plus completed
    ROTs per second of measurement window.
    """

    protocol: str
    num_dcs: int
    clients: int
    throughput_kops: float
    rot_latency: LatencySummary
    put_latency: LatencySummary
    rots_completed: int
    puts_completed: int
    overhead: OverheadCounters
    cpu_utilization: float
    label: str = ""

    @property
    def rot_mean_ms(self) -> float:
        """Average ROT latency in milliseconds (Figure 4/5/7/8/9 y-axis)."""
        return self.rot_latency.mean_ms

    @property
    def rot_p99_ms(self) -> float:
        """99th-percentile ROT latency in milliseconds (Figure 5b)."""
        return self.rot_latency.p99_ms

    @property
    def put_mean_ms(self) -> float:
        """Average PUT latency in milliseconds (Section 5.2 aside)."""
        return self.put_latency.mean_ms

    def as_json_dict(self) -> dict[str, object]:
        """Serialise into plain JSON-compatible types.

        Used by the CI smoke benchmark (``BENCH_smoke.json``) and any other
        consumer that persists result rows across processes or runs.  The
        bulky per-check sample lists of the overhead counters are summarised
        rather than dumped.
        """
        overhead = asdict(self.overhead)
        for samples in ("per_check_distinct", "per_check_cumulative",
                        "per_check_partitions"):
            overhead.pop(samples, None)
        return {
            "protocol": self.protocol,
            "num_dcs": self.num_dcs,
            "clients": self.clients,
            "throughput_kops": self.throughput_kops,
            "rot_latency": asdict(self.rot_latency),
            "put_latency": asdict(self.put_latency),
            "rots_completed": self.rots_completed,
            "puts_completed": self.puts_completed,
            "overhead": overhead,
            "cpu_utilization": self.cpu_utilization,
            "label": self.label,
        }

    def as_row(self) -> dict[str, object]:
        """Flatten into a dictionary suitable for tabular reports."""
        return {
            "protocol": self.protocol,
            "dcs": self.num_dcs,
            "clients": self.clients,
            "throughput_kops": round(self.throughput_kops, 2),
            "rot_avg_ms": round(self.rot_latency.mean_ms, 3),
            "rot_p99_ms": round(self.rot_latency.p99_ms, 3),
            "put_avg_ms": round(self.put_latency.mean_ms, 3),
            "rots": self.rots_completed,
            "puts": self.puts_completed,
            "cpu_util": round(self.cpu_utilization, 3),
            "readers_check_ids_distinct": round(
                self.overhead.average_distinct_ids_per_check(), 1),
            "readers_check_ids_cumulative": round(
                self.overhead.average_cumulative_ids_per_check(), 1),
        }


@dataclass
class MetricsRegistry:
    """Mutable metric sink shared by every node of a run."""

    warmup_seconds: float = 0.0
    rot_latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    put_latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    rots_completed: int = 0
    puts_completed: int = 0
    rots_issued: int = 0
    puts_issued: int = 0

    def record_rot(self, started_at: float, completed_at: float) -> None:
        """Record a completed ROT (ignored if it completed during warmup)."""
        if completed_at < self.warmup_seconds:
            return
        self.rots_completed += 1
        self.rot_latencies.record(completed_at - started_at)

    def record_put(self, started_at: float, completed_at: float) -> None:
        """Record a completed PUT (ignored if it completed during warmup)."""
        if completed_at < self.warmup_seconds:
            return
        self.puts_completed += 1
        self.put_latencies.record(completed_at - started_at)

    def note_issue(self, is_put: bool) -> None:
        """Count an issued operation (diagnostics; includes warmup)."""
        if is_put:
            self.puts_issued += 1
        else:
            self.rots_issued += 1

    # ------------------------------------------------------------------ final
    def finalize(self, *, protocol: str, num_dcs: int, clients: int,
                 measurement_seconds: float, overhead: OverheadCounters,
                 cpu_utilization: float, label: str = "",
                 rot_size: Optional[int] = None) -> RunResult:
        """Produce the immutable result row for this run.

        ``rot_size`` is accepted for interface completeness (the paper counts
        throughput in operations, not individual reads, so it is not used in
        the computation).
        """
        del rot_size
        operations = self.rots_completed + self.puts_completed
        throughput = operations / measurement_seconds if measurement_seconds > 0 else 0.0
        return RunResult(
            protocol=protocol,
            num_dcs=num_dcs,
            clients=clients,
            throughput_kops=throughput / 1000.0,
            rot_latency=self.rot_latencies.summary(),
            put_latency=self.put_latencies.summary(),
            rots_completed=self.rots_completed,
            puts_completed=self.puts_completed,
            overhead=overhead,
            cpu_utilization=cpu_utilization,
            label=label,
        )


__all__ = ["MetricsRegistry", "RunResult"]
