"""Protocol-overhead counters.

These counters back Figure 6 (ROT ids exchanged per readers check) and the
message/metadata columns of Table 2.  They are filled in by the sans-I/O
protocol kernels (and by the drivers' send paths), so they live here in the
metrics layer rather than in the simulator: both the simulated and the
real-time backends account overheads through the same object.
``repro.sim.costs`` re-exports the class for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OverheadCounters:
    """Aggregate counters of protocol overhead, filled in by servers."""

    messages_sent: int = 0
    bytes_sent: int = 0
    readers_checks: int = 0
    readers_check_messages: int = 0
    readers_check_partitions: int = 0
    rot_ids_cumulative: int = 0
    rot_ids_distinct: int = 0
    dependency_entries_sent: int = 0
    stabilization_messages: int = 0
    replication_messages: int = 0
    blocked_reads: int = 0
    total_block_time: float = 0.0
    per_check_distinct: list[int] = field(default_factory=list)
    per_check_cumulative: list[int] = field(default_factory=list)
    per_check_partitions: list[int] = field(default_factory=list)

    def record_readers_check(self, distinct_ids: int, cumulative_ids: int,
                             partitions_contacted: int) -> None:
        """Record the outcome of one complete readers check."""
        self.readers_checks += 1
        self.rot_ids_distinct += distinct_ids
        self.rot_ids_cumulative += cumulative_ids
        self.readers_check_partitions += partitions_contacted
        self.per_check_distinct.append(distinct_ids)
        self.per_check_cumulative.append(cumulative_ids)
        self.per_check_partitions.append(partitions_contacted)

    def merge(self, other: "OverheadCounters") -> None:
        """Accumulate another counter set into this one."""
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.readers_checks += other.readers_checks
        self.readers_check_messages += other.readers_check_messages
        self.readers_check_partitions += other.readers_check_partitions
        self.rot_ids_cumulative += other.rot_ids_cumulative
        self.rot_ids_distinct += other.rot_ids_distinct
        self.dependency_entries_sent += other.dependency_entries_sent
        self.stabilization_messages += other.stabilization_messages
        self.replication_messages += other.replication_messages
        self.blocked_reads += other.blocked_reads
        self.total_block_time += other.total_block_time
        self.per_check_distinct.extend(other.per_check_distinct)
        self.per_check_cumulative.extend(other.per_check_cumulative)
        self.per_check_partitions.extend(other.per_check_partitions)

    # Derived statistics -----------------------------------------------------
    def average_distinct_ids_per_check(self) -> float:
        """Average number of distinct ROT ids collected per readers check."""
        if self.readers_checks == 0:
            return 0.0
        return self.rot_ids_distinct / self.readers_checks

    def average_cumulative_ids_per_check(self) -> float:
        """Average cumulative number of ROT ids exchanged per readers check."""
        if self.readers_checks == 0:
            return 0.0
        return self.rot_ids_cumulative / self.readers_checks

    def average_partitions_per_check(self) -> float:
        """Average number of partitions contacted per readers check."""
        if self.readers_checks == 0:
            return 0.0
        return self.readers_check_partitions / self.readers_checks


__all__ = ["OverheadCounters"]
