"""Latency, throughput and overhead measurement."""

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.collectors import (
    SCHEMA_VERSION,
    MetricsRegistry,
    PhaseSlice,
    RunResult,
)

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "MetricsRegistry",
    "PhaseSlice",
    "RunResult",
    "SCHEMA_VERSION",
]
