"""Latency, throughput and overhead measurement."""

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.collectors import MetricsRegistry, RunResult

__all__ = ["LatencyRecorder", "LatencySummary", "MetricsRegistry", "RunResult"]
