"""Pluggable time sources.

Every clock in :mod:`repro.clocks` reads time through a *time source* — any
object exposing a ``now`` attribute/property that returns seconds as a float.
Two implementations exist:

* the discrete-event :class:`repro.sim.engine.Simulator` (its ``now`` property
  is simulated seconds) — used by the simulated backend; and
* :class:`WallClock` below — monotonic wall-clock seconds since construction,
  used by the real-time asyncio backend.

Keeping the contract structural (no base-class import) is what lets the
protocol kernels and the clock stack import cleanly without touching
``repro.sim``.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class TimeSource(Protocol):
    """Anything with a ``now`` attribute returning seconds as a float."""

    @property
    def now(self) -> float:  # pragma: no cover - protocol definition
        ...


class WallClock:
    """Monotonic wall-clock time source (seconds since construction).

    Starting at zero keeps wall-clock runs aligned with the simulated-time
    convention (warmup windows, metric timestamps and HLC physical components
    all measure from the start of the run).
    """

    def __init__(self) -> None:
        self._origin = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._origin

    def reset(self) -> None:
        """Re-zero the clock (e.g. when a cluster actually starts serving).

        Setup work between construction and serving (keyspace preload, task
        spawning) must not consume the warmup window, so builders re-zero
        the epoch at start time.  Only safe before timestamps derived from
        this clock have been handed out.
        """
        self._origin = time.monotonic()

    def sync_to_wall_epoch(self, epoch: float) -> None:
        """Align ``now == 0`` with the ``time.time()`` instant ``epoch``.

        Multi-process clusters distribute one epoch so that every worker's
        wall clock measures from the *same* origin: per-process
        ``time.monotonic()`` origins are arbitrary, but ``time.time()`` is
        the shared system clock, so mapping through it bounds cross-process
        skew to system-clock read jitter (microseconds on one host) instead
        of process start-up stagger (hundreds of milliseconds).  Same safety
        caveat as :meth:`reset`.
        """
        self._origin = time.monotonic() - (time.time() - epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WallClock(now={self.now:.6f})"


class FixedClock:
    """A manually advanced time source (unit tests of kernels and clocks)."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds


__all__ = ["FixedClock", "TimeSource", "WallClock"]
