"""Time-unit conversions shared by clocks, kernels and the simulator.

All run time in this library — simulated or wall-clock — is a float measured
in **seconds**; protocol timestamps are integer microseconds (so they can be
mixed with logical counters in hybrid clocks).  These helpers are the single
place the conversions live: :mod:`repro.sim.engine` re-exports them for
backwards compatibility, and the sans-I/O protocol kernels import them from
here so they carry no dependency on the simulator.
"""

from __future__ import annotations

#: Convenience conversion factors.  Time is expressed in seconds.
MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def as_milliseconds(value: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return value / MILLISECOND


def as_microseconds(value: float) -> float:
    """Convert seconds to microseconds (for reporting)."""
    return value / MICROSECOND


__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "as_microseconds",
    "as_milliseconds",
    "microseconds",
    "milliseconds",
]
