"""Physical clocks with bounded skew.

Each server owns a physical clock that reads the simulated wall-clock time
plus a fixed per-server offset, modelling NTP-synchronised machines whose
clocks agree only within a bound (the paper uses NTP and reports that Cure's
ROT latency is dominated by clock skew).  Physical clocks can only move
forward with the passage of time: a server cannot "jump" its physical clock to
a snapshot timestamp, which is exactly why physical-clock protocols such as
Cure, GentleRain and POCC block ROTs (Section 3).

Timestamps are expressed in integer microseconds so they can be mixed with
logical counters in hybrid clocks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ClockError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clocks.timesource import TimeSource


#: Conversion between seconds and clock microseconds.
_US_PER_SECOND = 1_000_000


@dataclass(frozen=True)
class SkewModel:
    """Describes how server clock offsets are drawn.

    Attributes
    ----------
    max_offset_us:
        Offsets are drawn uniformly in ``[-max_offset_us, +max_offset_us]``.
        The default (1000 us = 1 ms) corresponds to well-behaved NTP over a
        LAN and reproduces Cure's ~1 ms ROT latency penalty at low load.
    drift_ppm:
        Constant drift rate in parts-per-million applied on top of the offset;
        zero by default (NTP continuously corrects drift).
    """

    max_offset_us: float = 1000.0
    drift_ppm: float = 0.0

    def __post_init__(self) -> None:
        if self.max_offset_us < 0:
            raise ClockError("max_offset_us must be non-negative")

    def draw_offset(self, rng: random.Random) -> float:
        """Draw a per-server offset (microseconds)."""
        if self.max_offset_us == 0:
            return 0.0
        return rng.uniform(-self.max_offset_us, self.max_offset_us)


class PhysicalClock:
    """A per-server physical clock: a time source plus a fixed offset.

    The time source is anything with a ``now`` attribute returning seconds —
    the discrete-event simulator on the simulated backend, a
    :class:`~repro.clocks.timesource.WallClock` on the real-time backend.
    ``now_us()`` returns the current reading in integer microseconds.  The
    reading is guaranteed to be monotonically non-decreasing even if the
    offset would make consecutive readings equal.
    """

    def __init__(self, time_source: "TimeSource", offset_us: float = 0.0,
                 drift_ppm: float = 0.0) -> None:
        self._time_source = time_source
        self._offset_us = offset_us
        self._drift = drift_ppm * 1e-6
        self._last_reading = 0

    @property
    def offset_us(self) -> float:
        """The configured offset of this clock, in microseconds."""
        return self._offset_us

    def now_us(self) -> int:
        """Current reading in integer microseconds (monotonic)."""
        elapsed_us = self._time_source.now * _US_PER_SECOND
        reading = elapsed_us * (1.0 + self._drift) + self._offset_us
        value = max(int(reading), 0)
        if value < self._last_reading:
            value = self._last_reading
        self._last_reading = value
        return value

    def time_until_us(self, target_us: int) -> float:
        """Simulated seconds until this clock reaches ``target_us``.

        Returns 0.0 if the clock already reads at or past the target.  This is
        the blocking time a physical-clock protocol must wait before serving a
        snapshot with timestamp ``target_us``.
        """
        current = self.now_us()
        if current >= target_us:
            return 0.0
        remaining_us = target_us - current
        return remaining_us / (_US_PER_SECOND * (1.0 + self._drift))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PhysicalClock(offset_us={self._offset_us:+.1f})"


__all__ = ["PhysicalClock", "SkewModel"]
