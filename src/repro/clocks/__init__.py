"""Clock implementations used by the protocols.

Three clock families appear in the paper (Table 2, Section 4):

* **Logical (Lamport) clocks** — used by COPS, Eiger and CC-LO/COPS-SNOW.
* **Physical clocks with bounded skew** — used by GentleRain, Cure and POCC;
  they make ROTs blocking because a server cannot move a physical clock
  forward to match a snapshot timestamp.
* **Hybrid Logical Physical Clocks (HLC)** — used by Contrarian: they advance
  with the physical clock (fresh snapshots) but can also be pushed forward
  like a logical clock (nonblocking ROTs).
"""

from repro.clocks.hlc import HybridLogicalClock, HLCTimestamp
from repro.clocks.lamport import LamportClock
from repro.clocks.physical import PhysicalClock, SkewModel
from repro.clocks.timesource import FixedClock, TimeSource, WallClock

__all__ = [
    "FixedClock",
    "HLCTimestamp",
    "HybridLogicalClock",
    "LamportClock",
    "PhysicalClock",
    "SkewModel",
    "TimeSource",
    "WallClock",
]
