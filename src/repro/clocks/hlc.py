"""Hybrid Logical Physical Clocks (HLC).

Contrarian (Section 4 of the paper) uses HLCs [Kulkarni et al., OPODIS 2014]
to get the best of both clock families:

* like a *physical* clock, an HLC advances spontaneously with real time, so
  the stabilization protocol identifies fresh snapshots even on idle
  partitions;
* like a *logical* clock, an HLC can be moved forward to match the timestamp
  of an incoming ROT request, which keeps ROTs nonblocking.

An HLC timestamp is a pair ``(physical_component, logical_component)``.  The
physical component is the largest physical-clock reading the node has seen;
the logical component disambiguates events that share the same physical
component.  We encode the pair into a single integer (``physical * 2**16 +
logical``) so protocol code can treat HLC timestamps exactly like scalar
Lamport timestamps; the encoding preserves the HLC ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.physical import PhysicalClock
from repro.errors import ClockError

#: Number of bits reserved for the logical component in the packed encoding.
LOGICAL_BITS = 16
_LOGICAL_MASK = (1 << LOGICAL_BITS) - 1


@dataclass(frozen=True, order=True)
class HLCTimestamp:
    """An HLC timestamp: physical part (microseconds) plus logical counter."""

    physical: int
    logical: int

    def pack(self) -> int:
        """Encode into a single comparable integer."""
        if self.logical > _LOGICAL_MASK:
            # Overflow of the logical component is folded into the physical
            # part; extremely unlikely in practice (needs 65k events at the
            # same microsecond) but must not silently invert ordering.
            return ((self.physical + self.logical // (_LOGICAL_MASK + 1)) << LOGICAL_BITS) \
                | (self.logical & _LOGICAL_MASK)
        return (self.physical << LOGICAL_BITS) | self.logical

    @staticmethod
    def unpack(packed: int) -> "HLCTimestamp":
        """Decode a packed integer back into an :class:`HLCTimestamp`."""
        if packed < 0:
            raise ClockError(f"packed HLC timestamp must be non-negative, got {packed}")
        return HLCTimestamp(physical=packed >> LOGICAL_BITS,
                            logical=packed & _LOGICAL_MASK)


class HybridLogicalClock:
    """An HLC bound to a server's physical clock.

    The public operations mirror :class:`~repro.clocks.lamport.LamportClock`
    so protocol code can swap clock implementations (used by the clock
    ablation benchmark):

    * :meth:`tick` — timestamp a local event (e.g. a PUT).
    * :meth:`update` — merge a timestamp received in a message.
    * :meth:`advance_to` — move the clock forward to serve a snapshot
      (the nonblocking read path).
    * :meth:`value` / :meth:`now` — read without advancing.
    """

    def __init__(self, physical: PhysicalClock) -> None:
        self._physical = physical
        # Start below the physical clock so the first event at a fresh
        # microsecond gets logical component 0.
        self._latest = HLCTimestamp(physical=0, logical=0)

    # ------------------------------------------------------------------ reads
    @property
    def latest(self) -> HLCTimestamp:
        """The latest timestamp generated or observed (no side effect)."""
        return self._latest

    def now(self) -> int:
        """Packed reading reflecting physical time, without recording an event."""
        physical_now = self._physical.now_us()
        if physical_now > self._latest.physical:
            return HLCTimestamp(physical_now, 0).pack()
        return self._latest.pack()

    @property
    def value(self) -> int:
        """Packed value of the latest recorded timestamp."""
        return self._latest.pack()

    # ----------------------------------------------------------------- events
    def tick(self) -> int:
        """Timestamp a local event and return the packed timestamp."""
        physical_now = self._physical.now_us()
        if physical_now > self._latest.physical:
            self._latest = HLCTimestamp(physical_now, 0)
        else:
            self._latest = HLCTimestamp(self._latest.physical,
                                        self._latest.logical + 1)
        return self._latest.pack()

    def update(self, observed_packed: int) -> int:
        """Merge a timestamp observed in a message and timestamp the receipt."""
        observed = HLCTimestamp.unpack(observed_packed)
        physical_now = self._physical.now_us()
        max_physical = max(physical_now, self._latest.physical, observed.physical)
        if max_physical == physical_now and physical_now > self._latest.physical \
                and physical_now > observed.physical:
            logical = 0
        elif max_physical == self._latest.physical and max_physical == observed.physical:
            logical = max(self._latest.logical, observed.logical) + 1
        elif max_physical == self._latest.physical:
            logical = self._latest.logical + 1
        else:
            logical = observed.logical + 1
        self._latest = HLCTimestamp(max_physical, logical)
        return self._latest.pack()

    def advance_to(self, target_packed: int) -> int:
        """Move the clock forward to at least ``target_packed``.

        This is the operation physical clocks cannot perform and the reason
        Contrarian's ROTs never block: a partition that receives a snapshot
        timestamp ahead of its HLC simply adopts it.
        """
        if target_packed > self._latest.pack():
            self._latest = HLCTimestamp.unpack(target_packed)
        return self._latest.pack()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HybridLogicalClock({self._latest.physical}, {self._latest.logical})"


__all__ = ["HLCTimestamp", "HybridLogicalClock", "LOGICAL_BITS"]
