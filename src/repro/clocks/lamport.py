"""Lamport logical clocks.

A Lamport clock produces monotonically increasing integer timestamps.  The two
operations are ``tick()`` (local event: advance by one) and ``update(ts)``
(message receipt: jump to ``max(local, ts)`` and advance by one).  The clock
can also be moved forward explicitly with ``advance_to``, which is what makes
logical-clock based ROTs nonblocking: a partition receiving a snapshot
timestamp ahead of its clock simply adopts it.
"""

from __future__ import annotations

from repro.errors import ClockError


class LamportClock:
    """A classic Lamport logical clock."""

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ClockError(f"initial value must be non-negative, got {initial}")
        self._value = initial

    @property
    def value(self) -> int:
        """Current clock value (does not advance the clock)."""
        return self._value

    def tick(self) -> int:
        """Advance the clock for a local event and return the new value."""
        self._value += 1
        return self._value

    def update(self, observed: int) -> int:
        """Merge an observed timestamp (message receipt) and tick."""
        if observed < 0:
            raise ClockError(f"observed timestamp must be non-negative, got {observed}")
        self._value = max(self._value, observed) + 1
        return self._value

    def advance_to(self, target: int) -> int:
        """Move the clock forward to at least ``target`` (no-op if behind).

        This is the operation that lets logical-clock ROT protocols serve a
        snapshot timestamp that is ahead of the partition's clock without
        blocking (Section 3 of the paper).
        """
        if target > self._value:
            self._value = target
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LamportClock({self._value})"


__all__ = ["LamportClock"]
