"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on older toolchains (and offline machines)
that cannot build PEP-517 editable wheels.
"""

from setuptools import setup

setup()
